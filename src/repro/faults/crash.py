"""Crash (fail-stop) fault injection.

Crash faults are the only faults the paper allows in the private cloud: a
crashed replica stops processing and sending, drops whatever was queued on
its CPU, and may later recover.  These helpers operate on a
:class:`~repro.cluster.deployment.Deployment` so tests and benchmarks can
crash replicas by name or by role.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.deployment import Deployment


def crash_replica(deployment: Deployment, replica_id: str) -> None:
    """Fail-stop one replica and record it as faulty for safety accounting."""
    replica = deployment.replica(replica_id)
    replica.crash()
    deployment.mark_faulty(replica_id)


def recover_replica(deployment: Deployment, replica_id: str) -> None:
    """Bring a crashed replica back online.

    The replica resumes with the state it had when it crashed; it catches up
    through the protocol's normal state-transfer / checkpoint machinery.  It
    stays in the deployment's faulty set for conservative safety accounting.
    """
    deployment.replica(replica_id).recover()


def current_primary_id(deployment: Deployment) -> str:
    """The id of the primary/leader of the deployment's current view.

    Works for every protocol in the repository: the protocol configuration
    is stored in ``deployment.extras['config']`` and replicas expose their
    view; the primary of the *lowest* correct view is reported, which is the
    one clients are still talking to.
    """
    config = deployment.extras["config"]
    correct = deployment.correct_replicas()
    if correct:
        lowest = min(correct, key=lambda replica: replica.view)
        view = lowest.view
        # Prefer the replica's *live* mode: after a dynamic mode switch the
        # deployment's initial mode in ``extras`` is stale.
        mode = getattr(lowest, "mode", deployment.extras.get("mode"))
    else:
        view = 0
        mode = deployment.extras.get("mode")
    if mode is not None:
        return config.primary_of_view(view, mode)
    return config.primary_of_view(view)


def crash_primary(deployment: Deployment, replica_id: Optional[str] = None) -> str:
    """Crash the current primary (or ``replica_id`` if given); returns its id."""
    target = replica_id or current_primary_id(deployment)
    crash_replica(deployment, target)
    return target
