"""Fault plans: scheduled fault injection for timeline experiments.

A :class:`FaultPlan` is an ordered list of ``(time, action)`` pairs in the
shape expected by :func:`repro.cluster.runner.run_timeline`.  It gives the
benchmarks a declarative way to describe scenarios such as "crash the
primary 30 ms into the run" (Figure 4) or "partition the public cloud for
50 ms, then heal".
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

from repro.cluster.deployment import Deployment
from repro.faults.byzantine import make_byzantine
from repro.faults.crash import crash_primary, crash_replica, recover_replica

FaultAction = Callable[[Deployment], None]


class FaultPlan:
    """A schedule of fault-injection actions against one deployment."""

    def __init__(self) -> None:
        self._schedule: List[Tuple[float, FaultAction]] = []

    # -- building the plan -----------------------------------------------------

    def at(self, time: float, action: FaultAction) -> "FaultPlan":
        """Add an arbitrary action at ``time`` (seconds from run start)."""
        if time < 0:
            raise ValueError(f"fault times are relative to run start and must be >= 0: {time}")
        self._schedule.append((time, action))
        return self

    def crash_primary_at(self, time: float) -> "FaultPlan":
        """Crash whichever replica is primary when ``time`` arrives."""
        return self.at(time, lambda deployment: crash_primary(deployment))

    def crash_at(self, time: float, replica_id: str) -> "FaultPlan":
        return self.at(time, lambda deployment: crash_replica(deployment, replica_id))

    def recover_at(self, time: float, replica_id: str) -> "FaultPlan":
        return self.at(time, lambda deployment: recover_replica(deployment, replica_id))

    def byzantine_at(self, time: float, replica_id: str, strategy: str = "silent") -> "FaultPlan":
        return self.at(
            time, lambda deployment: make_byzantine(deployment, replica_id, strategy)
        )

    def partition_at(self, time: float, *groups: Set[str]) -> "FaultPlan":
        frozen_groups = [set(group) for group in groups]
        return self.at(
            time,
            lambda deployment: deployment.network.conditions.partition(*frozen_groups),
        )

    def heal_partition_at(self, time: float) -> "FaultPlan":
        return self.at(time, lambda deployment: deployment.network.conditions.heal_partition())

    # -- consuming the plan --------------------------------------------------------

    @property
    def schedule(self) -> Sequence[Tuple[float, FaultAction]]:
        """The (time, action) pairs sorted by time."""
        return sorted(self._schedule, key=lambda item: item[0])

    def __len__(self) -> int:
        return len(self._schedule)

    def __iter__(self):
        return iter(self.schedule)
