"""Fault injection: crash failures, Byzantine behaviours, and fault plans.

The paper's failure model (Section 3.1) admits two fault classes:

* **crash** faults in the private cloud — replicas fail by stopping and may
  later restart; they never lie;
* **Byzantine** faults in the public cloud — replicas may behave
  arbitrarily (equivocate, stay silent, send corrupt signatures, lie to
  clients), but cannot forge other replicas' signatures.

This package injects both into a running deployment, either immediately or
on a schedule (a :class:`~repro.faults.adversary.FaultPlan`), so the tests
and benchmarks can observe how each protocol behaves under attack -- most
prominently the view-change experiment of Figure 4.
"""

from repro.faults.crash import crash_primary, crash_replica, recover_replica
from repro.faults.byzantine import (
    BYZANTINE_STRATEGIES,
    make_byzantine,
    make_corrupt_signatures,
    make_equivocating,
    make_lying,
    make_silent,
    restore_honest,
)
from repro.faults.adversary import FaultPlan

__all__ = [
    "crash_replica",
    "crash_primary",
    "recover_replica",
    "make_byzantine",
    "make_silent",
    "make_equivocating",
    "make_lying",
    "make_corrupt_signatures",
    "restore_honest",
    "BYZANTINE_STRATEGIES",
    "FaultPlan",
]
