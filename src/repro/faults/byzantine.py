"""Byzantine behaviour injection.

A Byzantine replica in the public cloud may do anything except forge other
replicas' signatures.  Rather than flagging replicas as "bad" and special-
casing them, these helpers rewire a live replica's *outgoing* behaviour so
it actually misbehaves on the wire; correct replicas and clients must then
survive through quorum intersection and signature verification, which is
what the fault-tolerance tests assert.

Available strategies:

* ``silent``   — the replica stops sending anything (Byzantine-crash);
* ``equivocate`` — a Byzantine primary proposes *different* requests to
  different subsets of replicas for the same sequence number;
* ``lie`` — the replica sends clients replies with a fabricated result;
* ``corrupt`` — the replica's signatures are garbage, so every correct
  receiver discards its messages.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict

from repro.cluster.deployment import Deployment
from repro.core import messages as core_msgs
from repro.crypto.signatures import Signature
from repro.smr.messages import Batch, Reply
from repro.smr.replica import ReplicaBase, request_digest
from repro.smr.state_machine import Operation
from repro.wire.codec import decode, wire_slice_of
from repro.wire.primitives import WireDecodeError


def make_silent(replica: ReplicaBase) -> None:
    """The replica stops sending protocol messages entirely."""

    def send_nothing(dst, payload):
        return None

    def multicast_nothing(destinations, payload):
        return None

    replica.send = send_nothing  # type: ignore[assignment]
    replica.multicast = multicast_nothing  # type: ignore[assignment]


def _decoded_twin(message):
    """Re-materialize a message from its own wire frame.

    Twists operate on these decoded forms and re-encode on the next
    ``signing_bytes()`` call, so every attack manipulates exactly what an
    adversary holding the frame could manipulate — the tampering stays
    wire-visible rather than being an artifact of shared in-memory
    objects.  The piggybacked ``request`` and the ``signature`` ride
    *beside* the signed frame, so they are re-attached from the original
    (a twist then replaces whichever of them it targets).  Cold
    JSON-encoded types and payloads without an invertible frame fall back
    to a plain copy.
    """
    try:
        twin = decode(wire_slice_of(message))
    except (TypeError, WireDecodeError):
        return copy.copy(message)
    if getattr(message, "request", None) is not None and hasattr(twin, "request"):
        twin.request = message.request
    if twin.signed != message.signed:
        twin.signed = message.signed
    twin.signature = message.signature
    return twin


def tampered_request(request):
    """Decoded twin of one client request with its operation replaced by garbage."""
    twisted = _decoded_twin(request)
    twisted.operation = Operation(
        kind="put",
        args=("byzantine", "tampered"),
        payload=getattr(request.operation, "payload", ""),
    )
    return twisted


def tampered_payload(payload):
    """A conflicting slot payload: a request or a batch with one request twisted.

    The returned payload always hashes to a *different* digest than the
    original, so an ordering message built around it genuinely conflicts
    with the honest proposal.  For batches the tampering happens *inside* a
    copied batch (the batch digest covers every inner request), matching how
    a real Byzantine primary would equivocate under batching.
    """
    if isinstance(payload, Batch):
        requests = list(payload.requests)
        requests[0] = tampered_request(requests[0])
        return Batch(requests=requests)
    return tampered_request(payload)


#: The digest an equivocating replica's tampered *votes* claim to support.
#: Any fixed value that differs from every honest digest works: the point
#: is that the vote contradicts the slot's established assignment.
_EQUIVOCATED_VOTE_DIGEST = "ab" * 32


def make_equivocating(replica: ReplicaBase) -> None:
    """A Byzantine replica makes conflicting statements to different peers.

    Two faces of the same attack, so it is wire-visible in every mode:

    * *proposal equivocation* (when the replica is an untrusted primary) —
      ordering messages that carry a slot payload (SeeMoRe's ``Prepare``
      and ``PrePrepare``) are forked: half the destinations receive the
      honest proposal, half a *self-consistent* twisted copy whose digest
      is recomputed over the tampered payload and re-signed.  Receivers
      accept whichever proposal arrives first and detect the conflict by
      digest mismatch on the slot, refusing the second assignment; the
      slot stalls and a view change removes the equivocator.
    * *vote equivocation* (when the replica is a backup or proxy) — its
      agreement votes (``Accept`` / ``ProxyPrepare``) are forked the same
      way: half (or, on unicast paths like the Lion accept, every other
      vote) claim a digest that contradicts the assignment the replica
      actually received.  Honest quorums absorb the bad votes by digest
      matching, and receivers that already hold the trusted assignment can
      flag the contradiction as Byzantine evidence.

    Everything else is forwarded unchanged.
    """
    original_multicast = replica.multicast
    original_send = replica.send
    vote_parity = {"flip": False}

    def conflicting_copy(payload):
        twisted = _decoded_twin(payload)
        twisted.request = tampered_payload(payload.request)
        twisted.digest = request_digest(twisted.request)
        twisted.sign(replica.signer)
        return twisted

    def conflicting_vote(payload):
        twisted = _decoded_twin(payload)
        twisted.digest = _EQUIVOCATED_VOTE_DIGEST
        if getattr(twisted, "signed", False):
            twisted.sign(replica.signer)
        return twisted

    def equivocating_multicast(destinations, payload):
        if isinstance(payload, (core_msgs.Prepare, core_msgs.PrePrepare)) and getattr(
            payload, "request", None
        ) is not None:
            targets = [d for d in destinations if d != replica.node_id]
            half = len(targets) // 2
            original_multicast(targets[:half], payload)
            if targets[half:]:
                original_multicast(targets[half:], conflicting_copy(payload))
            return
        if isinstance(payload, (core_msgs.Accept, core_msgs.ProxyPrepare)):
            targets = [d for d in destinations if d != replica.node_id]
            half = len(targets) // 2
            original_multicast(targets[:half], payload)
            if targets[half:]:
                original_multicast(targets[half:], conflicting_vote(payload))
            return
        original_multicast(destinations, payload)

    def equivocating_send(dst, payload):
        if isinstance(payload, (core_msgs.Accept, core_msgs.ProxyPrepare)):
            vote_parity["flip"] = not vote_parity["flip"]
            if vote_parity["flip"]:
                original_send(dst, conflicting_vote(payload))
                return
        original_send(dst, payload)

    replica.multicast = equivocating_multicast  # type: ignore[assignment]
    replica.send = equivocating_send  # type: ignore[assignment]


def make_lying(replica: ReplicaBase) -> None:
    """The replica replies to clients with a fabricated result.

    The signature on the lie is the Byzantine replica's own (it cannot forge
    anyone else's), so clients relying on f+1 / 2m+1 matching replies are
    never fooled as long as the fault bound holds.  Replies are per client
    request even under batching (replicas fan replies out after executing a
    batch), so tampering the ``result`` field covers the batched path too.
    """
    original_send = replica.send

    def lying_send(dst, payload):
        if isinstance(payload, Reply):
            lie = _decoded_twin(payload)
            lie.result = {"ok": False, "value": "forged-by-" + replica.node_id}
            lie.sign(replica.signer)
            original_send(dst, lie)
            return
        original_send(dst, payload)

    replica.send = lying_send  # type: ignore[assignment]


def make_corrupt_signatures(replica: ReplicaBase) -> None:
    """Every signed message the replica sends carries an invalid signature."""
    original_send = replica.send
    original_multicast = replica.multicast

    def corrupt(payload):
        if getattr(payload, "signed", False) and getattr(payload, "signature", None) is not None:
            twisted = _decoded_twin(payload)
            twisted.signature = Signature(
                signer_id=payload.signature.signer_id,
                payload_digest=payload.signature.payload_digest,
                tag="0" * 64,
            )
            return twisted
        return payload

    def corrupt_send(dst, payload):
        original_send(dst, corrupt(payload))

    def corrupt_multicast(dsts, payload):
        original_multicast(dsts, corrupt(payload))

    replica.send = corrupt_send  # type: ignore[assignment]
    replica.multicast = corrupt_multicast  # type: ignore[assignment]


BYZANTINE_STRATEGIES: Dict[str, Callable[[ReplicaBase], None]] = {
    "silent": make_silent,
    "equivocate": make_equivocating,
    "lie": make_lying,
    "corrupt": make_corrupt_signatures,
}


def make_byzantine(deployment: Deployment, replica_id: str, strategy: str = "silent") -> None:
    """Turn one replica Byzantine using a named strategy.

    Raises:
        ValueError: for unknown strategies or when the target replica is in
            the private cloud of a SeeMoRe deployment (the paper's model
            does not allow Byzantine behaviour there).
    """
    if strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(
            f"unknown Byzantine strategy {strategy!r}; choose one of {sorted(BYZANTINE_STRATEGIES)}"
        )
    config = deployment.extras.get("config")
    private = getattr(config, "private_replicas", ())
    if replica_id in private:
        raise ValueError(
            f"replica {replica_id!r} is in the trusted private cloud; "
            "the hybrid model only admits Byzantine faults in the public cloud"
        )
    replica = deployment.replica(replica_id)
    BYZANTINE_STRATEGIES[strategy](replica)
    deployment.mark_faulty(replica_id)


def restore_honest(deployment: Deployment, replica_id: str) -> None:
    """Undo any Byzantine rewiring of one replica -- the attack subsides.

    Every strategy works by shadowing ``send``/``multicast`` with instance
    attributes, so restoring honest behaviour is dropping those shadows and
    falling back to the class implementations.  The replica *stays* in the
    deployment's faulty set for conservative safety accounting (it may have
    sent arbitrary garbage while twisted), exactly like a recovered crash;
    what changes is that it stops producing fresh evidence, which is what
    lets an adaptive controller de-escalate after a quiet period.
    """
    replica = deployment.replica(replica_id)
    replica.__dict__.pop("send", None)
    replica.__dict__.pop("multicast", None)
