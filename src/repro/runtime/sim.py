"""Deterministic runtime backend: the discrete-event simulator adapter.

:class:`SimRuntime` wraps the existing :class:`~repro.sim.simulator.Simulator`
and (optionally) a :class:`~repro.net.network.Network` behind the
:mod:`repro.runtime.api` interface.  The adapter is intentionally thin and
behaviour-preserving: the same event counts, the same committed ledgers,
the same stats as the pre-runtime code — which is what makes the sim the
conformance oracle for the real asyncio backend.

:class:`SimCpu` is where the modeled CPU-cost accounting now lives.  The
cost computations (including the memoized cost-model probes) used to sit
inline in ``repro.net.node``; they moved here verbatim so protocol code
never touches :class:`~repro.net.costs.NodeCostModel` arithmetic, while
the event sequence stays byte-identical.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Optional

from repro.net.costs import NodeCostModel
from repro.runtime.api import Cpu, Runtime
from repro.sim.process import Process
from repro.sim.simulator import Simulator, Timer


class SimCpu(Process, Cpu):
    """A simulated serial CPU that owns its node's cost model.

    Extends :class:`~repro.sim.process.Process` with the cost-aware
    ``submit_send`` / ``submit_receive`` / ``submit_multicast`` entry
    points.  Each replicates the exact inlined fast path the node used to
    run (memo probe, then the idle-CPU direct schedule), so a sim run
    produces the same event heap contents as before the refactor.
    """

    def __init__(
        self, simulator: Simulator, name: str, cost_model: Optional[NodeCostModel] = None
    ) -> None:
        super().__init__(simulator, name=name)
        self.cost_model = cost_model or NodeCostModel()

    def submit_send(
        self, size: int, signed: bool, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        # Inlined cost-memo probe and Process.submit idle fast path: this
        # runs once per sent message, hundreds of thousands of times per
        # benchmark run.
        cost_model = self.cost_model
        cost = cost_model._cost_memo.get((size, signed))
        if cost is None:
            cost = cost_model.send_cost(size, signed)
        if self.crashed:
            return
        if self._busy:
            self._queue.append((cost, handler, args))
            return
        self._busy = True
        self._busy_time += cost
        self._current = handler
        self._current_args = args
        simulator = self._simulator
        queue = simulator._queue
        seq = queue._counter
        queue._counter = seq + 1
        queue._live += 1
        heappush(
            queue._heap, (simulator._clock._now + cost, seq, self._finish_current, ())
        )

    def submit_receive(
        self,
        size: int,
        signed: bool,
        signature_count: int,
        handler: Callable[..., None],
        args: tuple = (),
    ) -> None:
        cost_model = self.cost_model
        key = (size, signed, signature_count)
        cost = cost_model._cost_memo.get(key)
        if cost is None:
            cost = cost_model.receive_cost(size, signed, signature_count)
        if self.crashed:
            return
        if self._busy:
            self._queue.append((cost, handler, args))
            return
        self._busy = True
        self._busy_time += cost
        self._current = handler
        self._current_args = args
        simulator = self._simulator
        queue = simulator._queue
        seq = queue._counter
        queue._counter = seq + 1
        queue._live += 1
        heappush(
            queue._heap, (simulator._clock._now + cost, seq, self._finish_current, ())
        )

    def submit_multicast(
        self, size: int, signed: bool, fanout: int, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        """Content signed once, then per-destination serialization cost."""
        cost_model = self.cost_model
        first_cost = cost_model.send_cost(size, signed)
        rest_cost = cost_model.send_cost(size, False)
        self.submit(first_cost + rest_cost * (fanout - 1), handler, args)


class SimRuntime(Runtime):
    """Runtime facade over a simulator and its modeled network.

    ``network`` may be ``None`` for compute-and-timers-only uses (several
    engine tests build bare nodes on a bare simulator); such nodes can
    still be attached to a network later via ``Network.register``, which
    hands the node its transport directly.
    """

    def __init__(self, simulator: Simulator, network: Any = None) -> None:
        self.simulator = simulator
        self.network = network

    @property
    def now(self) -> float:
        return self.simulator.now

    def timer(self, callback: Callable[[], None], label: str = "") -> Timer:
        return self.simulator.timer(callback, label=label)

    def create_cpu(self, name: str, cost_model: Optional[NodeCostModel] = None) -> SimCpu:
        return SimCpu(self.simulator, name=name, cost_model=cost_model)

    def register(self, node: Any) -> None:
        if self.network is None:
            raise RuntimeError(
                "this SimRuntime wraps a bare simulator with no network; "
                "construct it with SimRuntime(simulator, network) to register nodes"
            )
        self.network.register(node)

    def call_later(self, delay: float, action: Callable[[], None], label: str = "") -> Any:
        return self.simulator.call_later(delay, action, label=label)

    def defer(self, delay: float, action: Callable[..., None], args: tuple = ()) -> None:
        self.simulator.defer(delay, action, args)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> float:
        """Run the simulator loop (delegates to :meth:`Simulator.run`)."""
        return self.simulator.run(until=until, max_events=max_events)
