"""Multi-core runtime backend: one OS process per replica group, real TCP.

The aio backend (:mod:`repro.runtime.aio`) already runs the protocol over
real loopback sockets, but every node shares one event loop — one core,
one GIL.  This backend splits the cluster across OS processes so
throughput can scale with hardware: each worker process runs its own
:class:`ProcWorkerRuntime` (an :class:`~repro.runtime.aio.AioRuntime`
whose destination table spans the whole cluster), hosting one or more
nodes, and messages between processes travel as the same binary wire
envelopes the aio backend uses — the protocol objects in ``repro.core``
and ``repro.smr`` run unmodified.

A :class:`ProcCluster` supervisor in the parent process owns the
lifecycle over per-worker control pipes:

1. **spawn** — each :class:`WorkerSpec` becomes a process; inside it a
   picklable ``build(runtime, **kwargs)`` callable constructs and
   registers its nodes and returns a :class:`WorkerPlan`;
2. **readiness / endpoint exchange** — every worker starts one TCP
   server per local node on an ephemeral port and reports
   ``node_id -> port``; the supervisor merges the maps and broadcasts
   the full table, which unblocks every worker's outbound pumps;
3. **run** — workers invoke their plan's ``kickoff`` (clients start,
   timers arm) and periodically stream per-node stats (``busy_time``,
   ``items_processed``, ``queue_depth``, message counters — the same
   fields the sim and aio backends populate) plus an optional
   ``progress`` value back over the pipe; a worker whose plan declares
   an ``until`` predicate reports ``done`` the moment it holds;
4. **supervision** — the supervisor detects worker death (a dead
   process, or EOF on its pipe) without hanging: a dead worker is
   recorded in ``deaths`` and the run continues, unless the dead worker
   was one the run was *waiting on*, in which case the wait aborts;
5. **shutdown** — a ``stop`` broadcast makes each worker harvest its
   plan's ``harvest()`` payload, send a final stats snapshot, close
   every socket and task, and exit; the supervisor drains results,
   joins with a hard grace deadline, and escalates terminate → kill so
   no orphan process or leaked socket ever outlives a run.

Workers are daemonic, so even a crashed supervisor cannot leak them.
The default start method is ``fork`` where available (workers inherit
the built cluster cheaply); ``spawn`` works too provided every
``build`` callable and its kwargs are picklable (module-level functions
— see :func:`repro.cluster.builders.build_proc_seemore`).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.aio import AioRuntime

#: Control-channel message kinds (worker -> supervisor).
#: ("ready", ports, waits) / ("stats", snapshot) / ("done", snapshot)
#: ("result", snapshot, harvest) / ("error", text)
#: Supervisor -> worker: ("endpoints", ports) / ("stop",)


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, closure-friendly)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class WorkerPlan:
    """What one worker does beyond hosting its registered nodes.

    Returned by the ``build`` callable inside the worker process.  All
    fields are optional:

    * ``kickoff`` — runs inside the event loop once the full endpoint
      table is installed (arm timers, start clients here);
    * ``until`` — local completion predicate; the worker reports
      ``done`` to the supervisor the first time it returns true (the
      worker keeps serving until told to stop, so peers can finish);
    * ``harvest`` — called at shutdown; its picklable return value is
      shipped to the supervisor as the worker's result;
    * ``progress`` — cheap picklable scalar shipped with every stats
      message (e.g. a client's completed count) so the supervisor can
      observe the run mid-flight.
    """

    __slots__ = ("kickoff", "until", "harvest", "progress")

    def __init__(
        self,
        kickoff: Optional[Callable[[], None]] = None,
        until: Optional[Callable[[], bool]] = None,
        harvest: Optional[Callable[[], Any]] = None,
        progress: Optional[Callable[[], Any]] = None,
    ) -> None:
        self.kickoff = kickoff
        self.until = until
        self.harvest = harvest
        self.progress = progress


@dataclass(frozen=True)
class WorkerSpec:
    """One worker process: a name and the build callable that populates it."""

    name: str
    build: Callable[..., Optional[WorkerPlan]]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


class ProcClusterError(RuntimeError):
    """Raised when the cluster cannot be stood up or supervised."""


class ProcWorkerRuntime(AioRuntime):
    """The runtime inside one worker process.

    Identical to :class:`~repro.runtime.aio.AioRuntime` (same envelope
    codec, timers, CPUs, per-connection sender authentication) except the
    destination table spans the whole cluster: outbound pumps block on an
    endpoint gate until the supervisor's broadcast installs every peer's
    port, so a message sent the instant a node wakes up is never dropped
    for targeting a peer in another process.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        super().__init__(host)
        self._endpoint_gate: Optional[Any] = None  # asyncio.Event, created in-loop

    async def _pump(self, src: str, dst: str, channel) -> None:
        if self._endpoint_gate is not None:
            await self._endpoint_gate.wait()
        await super()._pump(src, dst, channel)

    async def _serve(self, node, reader, writer) -> None:
        # Unlike the in-process backend, a peer's writer lives in another
        # process, so serve tasks can still be blocked on a read when this
        # worker's loop tears down; swallow the teardown cancellation so
        # the streams protocol's done-callback has nothing to log.
        import asyncio

        try:
            await super()._serve(node, reader, writer)
        except asyncio.CancelledError:
            pass

    # -- worker lifecycle --------------------------------------------------

    def serve(
        self,
        conn,
        build: Callable[..., Optional[WorkerPlan]],
        kwargs: Mapping[str, Any],
        stats_interval: float = 0.25,
        poll: float = 0.002,
    ) -> None:
        """Build the worker's nodes, then run the supervised lifecycle."""
        import asyncio

        plan = build(self, **dict(kwargs)) or WorkerPlan()
        asyncio.run(self._worker_main(conn, plan, stats_interval, poll))

    async def _worker_main(self, conn, plan: WorkerPlan, stats_interval: float,
                           poll: float) -> None:
        import asyncio
        from functools import partial

        self._loop = asyncio.get_running_loop()
        self._endpoint_gate = asyncio.Event()
        try:
            for node_id, node in sorted(self._nodes.items()):
                server = await asyncio.start_server(
                    partial(self._serve, node), self._host, 0
                )
                self._servers.append(server)
                self._ports[node_id] = server.sockets[0].getsockname()[1]
            conn.send(("ready", dict(self._ports), plan.until is not None))

            running = True
            done_sent = False
            next_stats = time.monotonic() + stats_interval
            while running:
                try:
                    while conn.poll():
                        command = conn.recv()
                        kind = command[0]
                        if kind == "endpoints":
                            self._ports.update(command[1])
                            self._endpoint_gate.set()
                            if plan.kickoff is not None:
                                plan.kickoff()
                        elif kind == "stop":
                            running = False
                except (EOFError, OSError):
                    # The supervisor vanished: there is nobody left to
                    # report to, so wind down rather than serve forever.
                    running = False
                if not running:
                    break
                if plan.until is not None and not done_sent and plan.until():
                    done_sent = True
                    self._send(conn, ("done", self._snapshot(plan)))
                if time.monotonic() >= next_stats:
                    next_stats = time.monotonic() + stats_interval
                    self._send(conn, ("stats", self._snapshot(plan)))
                await asyncio.sleep(poll)

            harvest = plan.harvest() if plan.harvest is not None else None
            self._send(conn, ("result", self._snapshot(plan), harvest))
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
            for server in self._servers:
                server.close()
            if self._servers:
                await asyncio.gather(
                    *(server.wait_closed() for server in self._servers),
                    return_exceptions=True,
                )
            self._servers.clear()
            self._channels.clear()
            self._ports.clear()
            self._loop = None

    @staticmethod
    def _send(conn, message) -> None:
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            pass  # supervisor gone; shutdown path handles the rest

    def _snapshot(self, plan: WorkerPlan) -> Dict[str, Any]:
        """Per-node stats in the same fields the sim and aio backends fill."""
        nodes: Dict[str, Dict[str, Any]] = {}
        for node_id, node in self._nodes.items():
            cpu = node.process
            nodes[node_id] = {
                "busy_time": cpu.busy_time,
                "items_processed": cpu.items_processed,
                "queue_depth": cpu.queue_depth,
                "messages_handled": getattr(node, "messages_handled", 0),
                "messages_sent": getattr(node, "messages_sent", 0),
            }
        return {
            "now": self.now,
            "messages_delivered": self.messages_delivered,
            "bytes_delivered": self.bytes_delivered,
            "message_type_counts": dict(self.transport.message_type_counts),
            "nodes": nodes,
            "progress": plan.progress() if plan.progress is not None else None,
        }


def _worker_entry(name: str, build, kwargs, conn, host: str,
                  stats_interval: float, poll: float) -> None:
    """Process target: run one worker, reporting any failure up the pipe."""
    try:
        runtime = ProcWorkerRuntime(host=host)
        runtime.serve(conn, build, kwargs, stats_interval=stats_interval, poll=poll)
    except BaseException:
        try:
            conn.send(("error", f"worker {name!r} failed:\n{traceback.format_exc()}"))
        except (BrokenPipeError, OSError):
            pass
        raise SystemExit(1)


@dataclass
class ProcResult:
    """What a supervised run produced, per worker and merged."""

    met: bool
    wall_seconds: float
    harvests: Dict[str, Any]
    stats: Dict[str, Dict[str, Any]]
    deaths: List[str]
    exitcodes: Dict[str, Optional[int]]
    errors: List[str]

    def node_stats(self) -> Dict[str, Dict[str, Any]]:
        """``node_id -> {busy_time, items_processed, ...}`` across workers."""
        merged: Dict[str, Dict[str, Any]] = {}
        for snapshot in self.stats.values():
            merged.update(snapshot.get("nodes", {}))
        return merged

    # -- RunReport (see repro.cluster.runner.RunReport) ----------------------

    @property
    def committed(self) -> int:
        """Requests the client worker(s) completed end to end."""
        total = 0
        for harvest in self.harvests.values():
            if isinstance(harvest, dict):
                total += int(harvest.get("completed", 0) or 0)
        return total

    @property
    def metrics_collector(self) -> Optional[Any]:
        """Always ``None``: per-request records die with the worker processes."""
        return None

    @property
    def violation_count(self) -> int:
        return len(self.errors) + len(self.deaths)

    def report_row(self) -> Dict[str, Any]:
        return {
            "protocol": "proc",
            "completed": self.committed,
            "wall_seconds": round(self.wall_seconds, 3),
            "met": self.met,
            "deaths": len(self.deaths),
            "errors": len(self.errors),
        }

    def message_type_counts(self) -> Counter:
        counts: Counter = Counter()
        for snapshot in self.stats.values():
            counts.update(snapshot.get("message_type_counts", {}))
        return counts

    def messages_delivered(self) -> int:
        return sum(s.get("messages_delivered", 0) for s in self.stats.values())

    def bytes_delivered(self) -> int:
        return sum(s.get("bytes_delivered", 0) for s in self.stats.values())


class _Supervised:
    """Supervisor-side state for one worker."""

    __slots__ = ("spec", "process", "conn", "ready", "waits", "done",
                 "stats", "harvest", "has_result", "dead", "progress")

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.process = None
        self.conn = None
        self.ready = False
        self.waits = False
        self.done = False
        self.stats: Dict[str, Any] = {}
        self.harvest: Any = None
        self.has_result = False
        self.dead = False
        self.progress: Any = None


class ProcCluster:
    """Supervisor for a set of worker processes forming one cluster.

    Either call :meth:`run` for the whole lifecycle, or drive it manually
    (``start`` → ``wait`` → ``shutdown``) when the caller needs mid-run
    access — e.g. the worker-crash tests kill a replica process between
    ``start`` and ``wait`` and assert the survivors keep committing.
    """

    def __init__(
        self,
        workers: Sequence[WorkerSpec],
        host: str = "127.0.0.1",
        start_method: Optional[str] = None,
        stats_interval: float = 0.25,
        worker_poll: float = 0.002,
    ) -> None:
        names = [spec.name for spec in workers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate worker names: {names}")
        if not workers:
            raise ValueError("a ProcCluster needs at least one worker")
        self._workers: Dict[str, _Supervised] = {
            spec.name: _Supervised(spec) for spec in workers
        }
        self._host = host
        self._start_method = start_method or default_start_method()
        self._stats_interval = stats_interval
        self._worker_poll = worker_poll
        self._started = False
        self._go_at: Optional[float] = None
        self._met_at: Optional[float] = None
        self.endpoints: Dict[str, int] = {}
        self.errors: List[str] = []
        self.deaths: List[str] = []
        #: Extra metadata a builder may attach (config, replica grouping, ...).
        self.extras: Dict[str, Any] = {}

    # -- introspection -----------------------------------------------------

    @property
    def worker_names(self) -> List[str]:
        return list(self._workers)

    @property
    def processes(self) -> Dict[str, Any]:
        return {
            name: worker.process
            for name, worker in self._workers.items()
            if worker.process is not None
        }

    @property
    def progress(self) -> Dict[str, Any]:
        """Latest per-worker ``progress`` values from the stats stream."""
        return {
            name: worker.progress
            for name, worker in self._workers.items()
            if worker.progress is not None
        }

    @property
    def latest_stats(self) -> Dict[str, Dict[str, Any]]:
        return {name: worker.stats for name, worker in self._workers.items()}

    # -- lifecycle ---------------------------------------------------------

    def start(self, ready_timeout: float = 30.0) -> None:
        """Spawn every worker and complete the readiness/endpoint handshake."""
        if self._started:
            raise RuntimeError("ProcCluster.start() may only be called once")
        self._started = True
        context = multiprocessing.get_context(self._start_method)
        try:
            for worker in self._workers.values():
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_entry,
                    args=(worker.spec.name, worker.spec.build,
                          dict(worker.spec.kwargs), child_conn, self._host,
                          self._stats_interval, self._worker_poll),
                    name=f"proc-{worker.spec.name}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                worker.process = process
                worker.conn = parent_conn

            deadline = time.monotonic() + ready_timeout
            while not all(w.ready for w in self._workers.values()):
                progressed = self._drain_all()
                for name, worker in self._workers.items():
                    if worker.dead and not worker.ready:
                        raise ProcClusterError(
                            f"worker {name!r} died during startup"
                            + (f": {self.errors[-1]}" if self.errors else "")
                        )
                if time.monotonic() > deadline:
                    missing = [n for n, w in self._workers.items() if not w.ready]
                    raise ProcClusterError(f"workers never became ready: {missing}")
                if not progressed:
                    time.sleep(0.002)

            merged: Dict[str, int] = {}
            for name, worker in self._workers.items():
                for node_id, port in worker.stats.get("_ports", {}).items():
                    if node_id in merged:
                        raise ProcClusterError(
                            f"node id {node_id!r} registered by two workers"
                        )
                    merged[node_id] = port
            self.endpoints = merged
            for worker in self._workers.values():
                self._send(worker, ("endpoints", merged))
            self._go_at = time.monotonic()
        except BaseException:
            self._kill_everything()
            raise

    def wait(self, timeout: float) -> bool:
        """Wait until every worker with an ``until`` predicate reported done.

        Returns ``True`` on success; ``False`` when the timeout elapsed or
        a worker the run was waiting on died first.  With no predicate
        workers at all, the call simply lasts ``timeout`` seconds and
        returns ``True`` — mirroring :meth:`AioRuntime.run`.
        """
        if self._go_at is None:
            raise RuntimeError("call start() before wait()")
        deadline = time.monotonic() + timeout
        while True:
            self._drain_all()
            waiting = [w for w in self._workers.values() if w.waits]
            if waiting and all(w.done for w in waiting):
                self._met_at = time.monotonic()
                return True
            if any(w.dead and not w.done for w in waiting):
                return False
            if time.monotonic() > deadline:
                if not waiting:
                    self._met_at = time.monotonic()
                    return True
                return False
            time.sleep(0.002)

    def shutdown(self, grace: float = 10.0) -> ProcResult:
        """Stop every worker, drain results, and reap all processes.

        Never hangs: workers that fail to exit within ``grace`` seconds
        are terminated, then killed.  Returns the merged
        :class:`ProcResult`; ``met`` reflects the last :meth:`wait`.
        """
        for worker in self._workers.values():
            self._send(worker, ("stop",))
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            self._drain_all()
            pending = [
                w for w in self._workers.values()
                if not w.has_result and not w.dead
            ]
            if not pending:
                break
            time.sleep(0.002)

        for worker in self._workers.values():
            process = worker.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=2.0)
        exitcodes = {
            name: (worker.process.exitcode if worker.process is not None else None)
            for name, worker in self._workers.items()
        }
        for worker in self._workers.values():
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None

        end = self._met_at if self._met_at is not None else time.monotonic()
        wall = (end - self._go_at) if self._go_at is not None else 0.0
        stats = {
            name: {k: v for k, v in worker.stats.items() if k != "_ports"}
            for name, worker in self._workers.items()
            if worker.stats
        }
        harvests = {
            name: worker.harvest
            for name, worker in self._workers.items()
            if worker.has_result and worker.harvest is not None
        }
        waiting = [w for w in self._workers.values() if w.waits]
        met = bool(waiting) and all(w.done for w in waiting) or not waiting
        return ProcResult(
            met=met,
            wall_seconds=wall,
            harvests=harvests,
            stats=stats,
            deaths=list(self.deaths),
            exitcodes=exitcodes,
            errors=list(self.errors),
        )

    def run(self, timeout: float = 60.0, ready_timeout: float = 30.0,
            grace: float = 10.0) -> ProcResult:
        """The whole lifecycle: start, wait, shutdown."""
        self.start(ready_timeout=ready_timeout)
        met = self.wait(timeout)
        result = self.shutdown(grace=grace)
        result.met = met and not result.errors
        return result

    def kill_worker(self, name: str, signum: Optional[int] = None) -> None:
        """Hard-kill one worker process (crash injection for tests)."""
        import os
        import signal as signal_module

        process = self._workers[name].process
        if process is None or process.pid is None:
            raise ProcClusterError(f"worker {name!r} is not running")
        os.kill(process.pid, signum if signum is not None else signal_module.SIGKILL)

    # -- plumbing ----------------------------------------------------------

    def poll(self) -> None:
        """Drain pending control messages and liveness-check every worker."""
        self._drain_all()

    def _drain_all(self) -> bool:
        progressed = False
        for name, worker in self._workers.items():
            conn = worker.conn
            if conn is None or worker.dead:
                continue
            try:
                while conn.poll():
                    progressed = True
                    self._dispatch(name, worker, conn.recv())
            except (EOFError, OSError):
                # EOF after the final result is a normal exit; EOF before
                # it means the worker died with work outstanding.
                conn.close()
                worker.conn = None
                if not worker.has_result:
                    self._mark_dead(name, worker)
                progressed = True
                continue
            process = worker.process
            if (process is not None and not process.is_alive()
                    and not worker.has_result):
                # Reap any messages that raced the death before marking it.
                try:
                    while conn.poll():
                        self._dispatch(name, worker, conn.recv())
                except (EOFError, OSError):
                    pass
                if not worker.has_result:
                    self._mark_dead(name, worker)
                    progressed = True
        return progressed

    def _dispatch(self, name: str, worker: _Supervised, message: Tuple) -> None:
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            worker.waits = message[2]
            worker.stats["_ports"] = message[1]
        elif kind in ("stats", "done"):
            snapshot = message[1]
            ports = worker.stats.get("_ports")
            worker.stats = dict(snapshot)
            if ports is not None:
                worker.stats["_ports"] = ports
            worker.progress = snapshot.get("progress")
            if kind == "done":
                worker.done = True
        elif kind == "result":
            snapshot, harvest = message[1], message[2]
            ports = worker.stats.get("_ports")
            worker.stats = dict(snapshot)
            if ports is not None:
                worker.stats["_ports"] = ports
            worker.progress = snapshot.get("progress")
            worker.harvest = harvest
            worker.has_result = True
        elif kind == "error":
            self.errors.append(message[1])
            self._mark_dead(name, worker)

    def _mark_dead(self, name: str, worker: _Supervised) -> None:
        if not worker.dead:
            worker.dead = True
            if name not in self.deaths:
                self.deaths.append(name)

    def _send(self, worker: _Supervised, message: Tuple) -> None:
        if worker.conn is None or worker.dead:
            return
        try:
            worker.conn.send(message)
        except (BrokenPipeError, OSError):
            self._mark_dead(worker.spec.name, worker)

    def _kill_everything(self) -> None:
        for worker in self._workers.values():
            process = worker.process
            if process is not None and process.is_alive():
                process.terminate()
        for worker in self._workers.values():
            process = worker.process
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=2.0)
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None


__all__ = [
    "ProcCluster",
    "ProcClusterError",
    "ProcResult",
    "ProcWorkerRuntime",
    "WorkerPlan",
    "WorkerSpec",
    "default_start_method",
]
