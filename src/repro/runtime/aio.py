"""Real-network runtime backend: asyncio tasks over loopback TCP.

Every registered node gets its own TCP server on ``127.0.0.1`` (ephemeral
port) and a serial CPU worker task.  Messages travel as real bytes: hot
protocol types ship their binary wire frame (:mod:`repro.wire`) inside a
small envelope that also carries the detached signature and any
piggybacked request/batch payload; cold types (view changes and friends,
which have no binary frame yet) fall back to pickle — acceptable on a
loopback cluster where every peer is part of the same trusted build.

Sender identity is authenticated per connection, mirroring the paper's
pairwise authenticated channels: each (src, dst) pair uses a dedicated
connection whose first bytes declare the sender id, and every message
arriving on it is attributed to that id.  Spoofing replica *j* would
require writing on *j*'s connection.

Differences from the sim backend, by design:

* time is the real monotonic clock (seconds since runtime construction);
* timers are ``loop.call_later`` handles with the exact semantics of
  :class:`repro.runtime.api.TimerHandle` (pinned by the shared timer
  tests);
* the CPU ignores *modeled* costs and measures real elapsed time into
  the same ``busy_time`` / ``items_processed`` stats fields;
* delivery order between different sender pairs is whatever TCP and the
  event loop produce — which is exactly why the conformance harness
  (:mod:`repro.runtime.conformance`) checks that committed ledgers agree
  with the simulator anyway.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import time
from collections import Counter, deque
from functools import partial
from typing import Any, Callable, Dict, Optional, Tuple

from repro.crypto.digest import DIGEST_CACHE_ATTR, HAS_CACHE_FLAG, digest_bytes
from repro.crypto.signatures import Signature
from repro.runtime.api import Cpu, Runtime, TimerHandle, Transport
from repro.smr.messages import Batch
from repro.wire.codec import decode as wire_decode

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

#: Envelope kinds (first byte of every message blob).
_KIND_FRAME = 1  # binary codec frame + signature (+ optional piggyback)
_KIND_PICKLE = 2  # cold types with no binary frame

#: Piggyback block kinds (after the message's own frame + signature).
_PAYLOAD_NONE = 0
_PAYLOAD_REQUEST = 1  # one attached request frame + its client signature
_PAYLOAD_BATCH = 2  # attached batch frame + positional client signatures
_PAYLOAD_SELF_BATCH = 3  # the message IS a batch: client signatures only


# -- envelope codec ----------------------------------------------------------


def _pack_str(out: list, value: str) -> None:
    raw = value.encode("utf-8")
    out.append(_U16.pack(len(raw)))
    out.append(raw)


def _pack_signature(out: list, signature: Optional[Signature]) -> None:
    if signature is None:
        out.append(b"\x00")
        return
    out.append(b"\x01")
    _pack_str(out, signature.signer_id)
    _pack_str(out, signature.payload_digest)
    _pack_str(out, signature.tag)


class _Cursor:
    """Tiny sequential reader over an envelope blob."""

    __slots__ = ("buf", "off")

    def __init__(self, buf: bytes, off: int = 0) -> None:
        self.buf = buf
        self.off = off

    def take(self, count: int) -> bytes:
        off = self.off
        end = off + count
        if end > len(self.buf):
            raise ValueError("truncated envelope")
        self.off = end
        return self.buf[off:end]

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def string(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    def signature(self) -> Optional[Signature]:
        if self.u8() == 0:
            return None
        return Signature(
            signer_id=self.string(),
            payload_digest=self.string(),
            tag=self.string(),
        )


def _seed_wire_caches(message: Any, frame: bytes) -> None:
    """Pre-seed a decoded message's frozen wire form from its source frame.

    The receiver's digest (what signature verification compares against)
    must be computed over exactly the bytes the sender signed; seeding the
    caches makes that identity explicit and skips a re-encode.  Writes go
    straight into ``__dict__`` to bypass the mutation guard (these ARE the
    caches the guard protects).
    """
    instance_dict = message.__dict__
    instance_dict["_wire_slice"] = frame
    instance_dict[DIGEST_CACHE_ATTR] = digest_bytes(frame)
    instance_dict[HAS_CACHE_FLAG] = True


def encode_envelope(message: Any) -> bytes:
    """Serialize one protocol message (with signature and piggyback) to bytes."""
    if getattr(message, "signing_bytes", None) is None:
        return bytes((_KIND_PICKLE,)) + pickle.dumps(message)
    frame = message.wire_slice()
    out: list = [bytes((_KIND_FRAME,)), _U32.pack(len(frame)), frame]
    _pack_signature(out, message.signature)
    if type(message) is Batch:
        # The batch frame embeds each request's frame but signatures ride
        # beside frames, never inside: carry the client signatures
        # positionally so receivers can validate inner requests.
        out.append(bytes((_PAYLOAD_SELF_BATCH,)))
        out.append(_U16.pack(len(message.requests)))
        for request in message.requests:
            _pack_signature(out, request.signature)
        return b"".join(out)
    # Votes piggyback the proposed payload (Prepare/PrePrepare always,
    # Commit when relaying to lagging replicas); the codec deliberately
    # decodes votes with request=None, so the payload travels in its own
    # block with its own signature material.
    attachment = message.__dict__.get("request")
    if attachment is None:
        out.append(bytes((_PAYLOAD_NONE,)))
    elif type(attachment) is Batch:
        attachment_frame = attachment.wire_slice()
        out.append(bytes((_PAYLOAD_BATCH,)))
        out.append(_U32.pack(len(attachment_frame)))
        out.append(attachment_frame)
        out.append(_U16.pack(len(attachment.requests)))
        for request in attachment.requests:
            _pack_signature(out, request.signature)
    else:
        attachment_frame = attachment.wire_slice()
        out.append(bytes((_PAYLOAD_REQUEST,)))
        out.append(_U32.pack(len(attachment_frame)))
        out.append(attachment_frame)
        _pack_signature(out, attachment.signature)
    return b"".join(out)


def _attach_batch_signatures(batch: Batch, cursor: _Cursor) -> None:
    count = cursor.u16()
    if count != len(batch.requests):
        raise ValueError(
            f"batch signature count mismatch: {count} != {len(batch.requests)}"
        )
    for request in batch.requests:
        request.__dict__["signature"] = cursor.signature()


def decode_envelope(blob: bytes) -> Any:
    """Rebuild the protocol message a peer sent, signatures reattached."""
    kind = blob[0]
    if kind == _KIND_PICKLE:
        return pickle.loads(blob[1:])
    if kind != _KIND_FRAME:
        raise ValueError(f"unknown envelope kind: {kind}")
    cursor = _Cursor(blob, 1)
    frame = cursor.take(cursor.u32())
    message = wire_decode(frame)
    _seed_wire_caches(message, frame)
    message.__dict__["signature"] = cursor.signature()
    payload_kind = cursor.u8()
    if payload_kind == _PAYLOAD_NONE:
        return message
    if payload_kind == _PAYLOAD_SELF_BATCH:
        _attach_batch_signatures(message, cursor)
        return message
    attachment_frame = cursor.take(cursor.u32())
    attachment = wire_decode(attachment_frame)
    _seed_wire_caches(attachment, attachment_frame)
    if payload_kind == _PAYLOAD_BATCH:
        _attach_batch_signatures(attachment, cursor)
    elif payload_kind == _PAYLOAD_REQUEST:
        attachment.__dict__["signature"] = cursor.signature()
    else:
        raise ValueError(f"unknown piggyback kind: {payload_kind}")
    message.__dict__["request"] = attachment
    return message


# -- timers ------------------------------------------------------------------


class AioTimer(TimerHandle):
    """A restartable timer backed by ``loop.call_later``.

    Arming requires the runtime's event loop to be running (timers are
    created unarmed in node constructors and armed from within ``run()``),
    matching the sim timer's contract exactly otherwise: idempotent stop,
    disarm-before-callback on fire, restart == start.
    """

    __slots__ = ("_runtime", "_callback", "_label", "_handle")

    def __init__(
        self, runtime: "AioRuntime", callback: Callable[[], None], label: str = ""
    ) -> None:
        self._runtime = runtime
        self._callback = callback
        self._label = label
        self._handle: Optional[asyncio.TimerHandle] = None

    @property
    def label(self) -> str:
        return self._label

    @property
    def active(self) -> bool:
        return self._handle is not None

    def start(self, delay: float) -> None:
        handle = self._handle
        if handle is not None:
            self._handle = None
            handle.cancel()
        loop = self._runtime._running_loop()
        self._handle = loop.call_later(delay, self._fire)

    def _fire(self) -> None:
        self._handle = None  # disarm before the callback so it may re-arm
        self._callback()

    def stop(self) -> None:
        handle = self._handle
        if handle is not None:
            self._handle = None
            handle.cancel()


# -- CPU ---------------------------------------------------------------------


class AioCpu(Cpu):
    """A node's serial executor: one drain task, measured (not modeled) time.

    The modeled size/signed/fanout classifications are accepted and
    ignored — on this backend serialization and HMAC work is *real*, so
    the CPU simply measures elapsed wall time per handled item into the
    same stats fields the sim CPU fills with modeled costs.
    """

    __slots__ = (
        "runtime", "name", "crashed", "_queue", "_worker", "_busy_time", "_items_processed"
    )

    def __init__(self, runtime: "AioRuntime", name: str) -> None:
        self.runtime = runtime
        self.name = name
        self.crashed = False
        self._queue: deque = deque()
        self._worker: Optional[asyncio.Task] = None
        self._busy_time = 0.0
        self._items_processed = 0

    def submit(self, cost: float, handler: Callable[..., None], args: tuple = ()) -> None:
        if self.crashed:
            return
        self._queue.append((handler, args))
        worker = self._worker
        if worker is None or worker.done():
            self._worker = self.runtime._spawn(self._drain())

    def submit_send(
        self, size: int, signed: bool, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        self.submit(0.0, handler, args)

    def submit_receive(
        self,
        size: int,
        signed: bool,
        signature_count: int,
        handler: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.submit(0.0, handler, args)

    def submit_multicast(
        self, size: int, signed: bool, fanout: int, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        self.submit(0.0, handler, args)

    async def _drain(self) -> None:
        queue = self._queue
        perf_counter = time.perf_counter
        while queue:
            handler, args = queue.popleft()
            started = perf_counter()
            try:
                handler(*args)
            finally:
                self._busy_time += perf_counter() - started
                self._items_processed += 1
            # Yield per item: the CPU is serial but must not starve the
            # other nodes' tasks (or the socket readers feeding it).
            await asyncio.sleep(0)

    def crash(self) -> None:
        self.crashed = True
        self._queue.clear()

    def recover(self) -> None:
        self.crashed = False

    @property
    def busy_time(self) -> float:
        return self._busy_time

    @property
    def items_processed(self) -> int:
        return self._items_processed

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        if elapsed is None:
            elapsed = self.runtime.now
        if elapsed <= 0:
            return 0.0
        return self._busy_time / elapsed


# -- transport ---------------------------------------------------------------


class AioTransport(Transport):
    """Transport facade handed to nodes; delegates to the runtime's channels."""

    def __init__(self, runtime: "AioRuntime") -> None:
        self._runtime = runtime
        self.messages_offered = 0
        self._type_counts: Counter = Counter()

    def deliver(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        self.messages_offered += 1
        self._type_counts[type(payload)] += 1
        self._runtime._enqueue_send(src, dst, payload)

    @property
    def message_type_counts(self) -> Counter:
        return Counter({cls.__name__: count for cls, count in self._type_counts.items()})


# -- runtime -----------------------------------------------------------------


class AioRuntime(Runtime):
    """Runtime facade over an asyncio loopback-TCP cluster.

    Usage: construct, build nodes against it, ``register`` each one, then
    call :meth:`run` exactly once — it starts one TCP server per node,
    invokes ``kickoff`` inside the loop (this is where clients start and
    timers first arm), and polls ``until`` up to ``timeout`` real seconds
    before shutting every task and socket down.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self._host = host
        self._origin = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._nodes: Dict[str, Any] = {}
        self._ports: Dict[str, int] = {}
        self._servers: list = []
        self._channels: Dict[Tuple[str, str], asyncio.Queue] = {}
        self._tasks: set = set()
        self.transport = AioTransport(self)
        self.messages_delivered = 0
        self.bytes_delivered = 0

    # -- Runtime interface -------------------------------------------------

    @property
    def now(self) -> float:
        return time.monotonic() - self._origin

    def timer(self, callback: Callable[[], None], label: str = "") -> AioTimer:
        return AioTimer(self, callback, label)

    def create_cpu(self, name: str, cost_model: Any = None) -> AioCpu:
        # The modeled cost tables are meaningless on real hardware; the
        # parameter is accepted (same construction path as the sim) and
        # dropped.
        return AioCpu(self, name)

    def register(self, node: Any) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id!r}")
        if self._loop is not None:
            raise RuntimeError("nodes must be registered before run() starts")
        self._nodes[node.node_id] = node
        node.attach(self.transport)

    def call_later(self, delay: float, action: Callable[[], None], label: str = "") -> AioTimer:
        timer = AioTimer(self, action, label)
        timer.start(delay)
        return timer

    def defer(self, delay: float, action: Callable[..., None], args: tuple = ()) -> None:
        self._running_loop().call_later(delay, partial(action, *args))

    # -- loop plumbing -----------------------------------------------------

    def _running_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            raise RuntimeError(
                "the aio runtime's loop is not running; timers, sends, and "
                "deferred calls only work inside run() (arm them from kickoff)"
            )
        return loop

    def _spawn(self, coro) -> asyncio.Task:
        task = self._running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _enqueue_send(self, src: str, dst: str, payload: Any) -> None:
        key = (src, dst)
        channel = self._channels.get(key)
        if channel is None:
            channel = self._channels[key] = asyncio.Queue()
            self._spawn(self._pump(src, dst, channel))
        channel.put_nowait(encode_envelope(payload))

    async def _pump(self, src: str, dst: str, channel: asyncio.Queue) -> None:
        """One (src, dst) ordered channel: lazy connect, then write frames."""
        port = self._ports.get(dst)
        if port is None:
            return  # unknown destination: dropped, mirroring the sim network
        try:
            _, writer = await asyncio.open_connection(self._host, port)
        except OSError:
            return
        try:
            hello = src.encode("utf-8")
            writer.write(_U16.pack(len(hello)) + hello)
            while True:
                blob = await channel.get()
                writer.write(_U32.pack(len(blob)))
                writer.write(blob)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _serve(
        self, node: Any, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection read loop feeding one node's ``deliver`` entry point."""
        try:
            (hello_len,) = _U16.unpack(await reader.readexactly(2))
            sender = (await reader.readexactly(hello_len)).decode("utf-8")
            while True:
                (blob_len,) = _U32.unpack(await reader.readexactly(4))
                blob = await reader.readexactly(blob_len)
                message = decode_envelope(blob)
                self.messages_delivered += 1
                self.bytes_delivered += len(blob)
                node.deliver(sender, message, len(blob))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    # -- lifecycle ---------------------------------------------------------

    def run(
        self,
        kickoff: Optional[Callable[[], None]] = None,
        until: Optional[Callable[[], bool]] = None,
        timeout: float = 10.0,
        poll: float = 0.002,
    ) -> bool:
        """Serve the cluster until ``until()`` holds or ``timeout`` elapses.

        Returns ``True`` when the ``until`` predicate was met (always
        ``True`` with no predicate: the run simply lasted ``timeout``
        seconds).  Always shuts down cleanly: every worker, pump, and
        server task is cancelled and awaited, every socket closed.
        """
        return asyncio.run(self._main(kickoff, until, timeout, poll))

    async def _main(
        self,
        kickoff: Optional[Callable[[], None]],
        until: Optional[Callable[[], bool]],
        timeout: float,
        poll: float,
    ) -> bool:
        self._loop = asyncio.get_running_loop()
        try:
            for node_id, node in sorted(self._nodes.items()):
                server = await asyncio.start_server(
                    partial(self._serve, node), self._host, 0
                )
                self._servers.append(server)
                self._ports[node_id] = server.sockets[0].getsockname()[1]
            if kickoff is not None:
                kickoff()
            deadline = self.now + timeout
            met = until is None
            while self.now < deadline:
                if until is not None and until():
                    met = True
                    break
                await asyncio.sleep(poll)
            return met
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)
            for server in self._servers:
                server.close()
            if self._servers:
                await asyncio.gather(
                    *(server.wait_closed() for server in self._servers),
                    return_exceptions=True,
                )
            self._servers.clear()
            self._channels.clear()
            self._ports.clear()
            self._loop = None


__all__ = [
    "AioCpu",
    "AioRuntime",
    "AioTimer",
    "AioTransport",
    "decode_envelope",
    "encode_envelope",
]
