"""Runtime backends: what the protocol core runs *on*.

The protocol layers (``repro.core``, ``repro.smr``, ``repro.net.node``)
are written against the narrow interfaces in :mod:`repro.runtime.api` —
a clock, timers, a CPU, and a transport — and never import the
discrete-event simulator or the asyncio machinery directly.  Two
backends implement those interfaces:

* :mod:`repro.runtime.sim` — the deterministic discrete-event backend
  (the default for experiments, scenarios, and the perf harness);
* :mod:`repro.runtime.aio` — real asyncio tasks speaking the binary
  wire codec over length-prefixed loopback TCP, with monotonic-clock
  timers and measured (not modeled) CPU time.

:mod:`repro.runtime.conformance` runs the same workload through both
and asserts the committed ledgers agree — the simulator's results are
only trustworthy because this oracle ties them to a real network stack.

Only ``api`` is re-exported here: importing a backend pulls in its
machinery, so callers name the backend they want explicitly.
"""

from repro.runtime.api import (
    ClockSource,
    Cpu,
    Runtime,
    TimerHandle,
    Transport,
    as_runtime,
)

__all__ = [
    "ClockSource",
    "Cpu",
    "Runtime",
    "TimerHandle",
    "Transport",
    "as_runtime",
]
