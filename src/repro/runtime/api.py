"""The narrow runtime interface the protocol core is allowed to see.

Protocol code (``repro.core``, ``repro.smr``, ``repro.net.node``) is
sans-IO: replicas and clients express *what* to do — send this message,
arm this timer, charge this much CPU — and a :class:`Runtime` decides
*how*.  Two interchangeable implementations exist:

* :class:`repro.runtime.sim.SimRuntime` adapts the deterministic
  discrete-event simulator (``repro.sim``) and its modeled network —
  byte-identical behaviour to the pre-runtime code paths, which keeps the
  sim usable as a conformance oracle;
* :class:`repro.runtime.aio.AioRuntime` runs every node as an asyncio
  task speaking the binary wire codec over length-prefixed TCP on
  loopback, with real monotonic-clock timers.

This module is a dependency leaf by design: it must not import
``repro.sim`` or ``repro.net.network`` at module scope, because the
protocol files import it and the import-boundary test
(``tests/test_runtime_boundaries.py``) forbids those modules from ever
reaching protocol code transitively through here.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class ClockSource:
    """Read-only time source: simulated seconds or real monotonic seconds."""

    @property
    def now(self) -> float:
        raise NotImplementedError


class TimerHandle:
    """A cancellable, restartable timer.

    Semantics shared by every backend (and pinned down by
    ``tests/test_runtime_timers.py``):

    * ``start`` arms (or re-arms) the timer ``delay`` seconds from now;
    * ``restart`` is an alias for ``start``;
    * ``stop`` is idempotent, safe on a never-started timer, and safe
      when racing an expiry that already fired;
    * firing disarms the timer before invoking the callback, so the
      callback may immediately re-arm it;
    * timers are owned by the runtime, not by a CPU: a timer still fires
      after its node's CPU crashed (protocol callbacks guard on the crash
      flag themselves, exactly as they did under the simulator).
    """

    @property
    def label(self) -> str:
        raise NotImplementedError

    @property
    def active(self) -> bool:
        raise NotImplementedError

    def start(self, delay: float) -> None:
        raise NotImplementedError

    def restart(self, delay: float) -> None:
        self.start(delay)

    def stop(self) -> None:
        raise NotImplementedError


class Cpu:
    """A node's serial execution resource, with cost accounting behind it.

    All CPU-cost policy lives here — *not* in protocol code.  The sim
    backend charges modeled costs from a :class:`~repro.net.costs.NodeCostModel`
    (send/receive/multicast service times in simulated seconds); the aio
    backend ignores the modeled costs and measures real elapsed time into
    the same stats fields (``busy_time``, ``items_processed``), so
    utilisation numbers stay comparable across backends.

    The crash flag models fail-stop: a crashed CPU drops submitted and
    queued work silently.  ``crashed`` is a plain attribute on every
    implementation because the send/deliver hot paths read it per message.
    """

    crashed: bool

    def submit(self, cost: float, handler: Callable[..., None], args: tuple = ()) -> None:
        """Enqueue a work item with an explicit modeled cost."""
        raise NotImplementedError

    def submit_send(
        self, size: int, signed: bool, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        """Enqueue a send: serialization plus (if ``signed``) signing cost."""
        raise NotImplementedError

    def submit_receive(
        self,
        size: int,
        signed: bool,
        signature_count: int,
        handler: Callable[..., None],
        args: tuple = (),
    ) -> None:
        """Enqueue a receive: deserialization, digest, and verification cost."""
        raise NotImplementedError

    def submit_multicast(
        self, size: int, signed: bool, fanout: int, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        """Enqueue a fanout send: content signed once, serialized per target."""
        raise NotImplementedError

    def crash(self) -> None:
        raise NotImplementedError

    def recover(self) -> None:
        raise NotImplementedError

    @property
    def busy_time(self) -> float:
        raise NotImplementedError

    @property
    def items_processed(self) -> int:
        raise NotImplementedError

    @property
    def queue_depth(self) -> int:
        raise NotImplementedError

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        raise NotImplementedError


class Transport:
    """Message fabric with sender-authenticated identity.

    ``deliver(src, dst, payload, size_bytes)`` routes one message.  The
    ``src`` attribution is trustworthy by construction in both backends:
    the sim network identifies senders by the object doing the sending,
    and the aio transport identifies them by the connection a message
    arrived on (each sender opens its own connection and declares its id
    once in the connection handshake).  Spoofing would require holding the
    victim's connection, which mirrors the paper's pairwise authenticated
    channels.
    """

    def deliver(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        raise NotImplementedError


class Runtime(ClockSource):
    """Facade owning scheduling: clock, timers, CPUs, and the transport.

    A node built against a ``Runtime`` never touches the simulator or the
    modeled network directly; everything it needs funnels through this
    surface.
    """

    @property
    def now(self) -> float:
        raise NotImplementedError

    def timer(self, callback: Callable[[], None], label: str = "") -> TimerHandle:
        """Create an unarmed timer."""
        raise NotImplementedError

    def create_cpu(self, name: str, cost_model: Any = None) -> Cpu:
        """Create the serial CPU for the node named ``name``."""
        raise NotImplementedError

    def register(self, node: Any) -> None:
        """Attach ``node`` to the transport (its id must be unique)."""
        raise NotImplementedError

    def call_later(
        self, delay: float, action: Callable[[], None], label: str = ""
    ) -> Any:
        """Schedule a one-shot callback ``delay`` seconds from now.

        Returns a handle exposing at least an idempotent ``stop()``;
        stopping after the callback fired is a no-op.
        """
        raise NotImplementedError

    def defer(self, delay: float, action: Callable[..., None], args: tuple = ()) -> None:
        """Fire-and-forget variant of :meth:`call_later` (no handle)."""
        raise NotImplementedError


def as_runtime(runtime_or_simulator: Any) -> Runtime:
    """Coerce a runtime-or-simulator into a :class:`Runtime`.

    Nodes historically took a bare ``Simulator``; a large body of tests
    and tools still constructs them that way.  Anything that is already a
    ``Runtime`` passes through; a bare simulator is wrapped in a
    transport-less :class:`~repro.runtime.sim.SimRuntime` (the node can
    compute, arm timers, and be registered with a ``Network`` later).

    The sim adapter is imported lazily: importing it at module scope
    would pull ``repro.sim`` (and, through the network, ``repro.net``)
    into every protocol module that imports this interface.
    """
    if isinstance(runtime_or_simulator, Runtime):
        return runtime_or_simulator
    from repro.runtime.sim import SimRuntime

    return SimRuntime(runtime_or_simulator)
