"""Conformance oracle: the sim and aio backends must commit the same thing.

The discrete-event simulator is only a trustworthy measurement instrument
if the protocol code it runs behaves identically on a real network stack.
This harness runs the *same* workload — same cluster shape, same client,
same request count — through both runtime backends and asserts:

* **safety within each backend**: every correct replica's flattened
  committed-request sequence is a prefix of every other's (batch
  boundaries may differ, so the comparison flattens batches to the inner
  ``(client_id, timestamp)`` pairs and drops view-change noops);
* **exactly-once**: no backend commits a client request twice;
* **ledger conformance across backends**: the two canonical committed
  sequences agree on their common prefix, and both contain every issued
  request;
* **reply conformance**: for every timestamp, the result digest the
  replicas cached (what clients vote on) is identical across backends.

Batch boundaries and cross-slot grouping legitimately differ between
backends — real scheduling jitter changes how many requests share a
batch — which is why the oracle compares flattened per-client sequences
rather than slot-by-slot ledgers.  With a single client the flattened
sequence is total, so this is a complete ordering check.

Run directly for the standard matrix (all three modes, f=1)::

    PYTHONPATH=src python -m repro.runtime.conformance
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core import BatchPolicy, Mode, SeeMoReConfig, SeeMoReReplica, client_config_for_mode
from repro.core.view_change import NOOP_CLIENT
from repro.crypto.keys import KeyStore
from repro.net.latency import UniformLatencyModel
from repro.net.network import Network
from repro.runtime.aio import AioRuntime
from repro.runtime.sim import SimRuntime
from repro.sim.simulator import Simulator
from repro.smr.client import Client
from repro.smr.ledger import find_safety_violations
from repro.smr.messages import _result_digest, requests_of
from repro.workload.generator import Workload

CLIENT_ID = "conformance-client"

#: Conservative real-time knobs for the aio leg: loopback scheduling noise
#: must never masquerade as a fault, so view-change and client-retransmit
#: timers are far above any plausible event-loop stall.
AIO_REQUEST_TIMEOUT = 5.0
AIO_CLIENT_TIMEOUT = 2.0


class RecordingReplica(SeeMoReReplica):
    """A replica that records its flattened commit order.

    ``commit_slot`` is the backend-agnostic choke point every committed
    slot passes through, on every mode and every runtime; appending the
    inner request ids there yields exactly the sequence the oracle
    compares.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.commit_trace: List[Tuple[str, int]] = []

    def commit_slot(self, sequence, request, view, send_reply, mode_id=0):
        for each in requests_of(request):
            if each.client_id != NOOP_CLIENT:
                self.commit_trace.append((each.client_id, each.timestamp))
        return super().commit_slot(sequence, request, view, send_reply, mode_id)


@dataclass
class BackendTrace:
    """What one backend committed, flattened and canonicalized."""

    backend: str
    mode: Mode
    completed: int
    commit_trace: Tuple[Tuple[str, int], ...]
    reply_digests: Dict[int, str]


def _build_cluster(
    runtime,
    mode: Mode,
    num_requests: int,
    window: int,
    request_timeout: float,
    client_timeout: float,
    max_batch: int,
    seed: int,
) -> Tuple[Dict[str, RecordingReplica], Client]:
    """Stand one SeeMoRe cluster plus a closed-loop client on ``runtime``.

    Built by hand (not via the cluster builders) because the builders are
    deliberately sim-only: they own latency models and fault tooling that
    have no aio counterpart.  Everything here goes through the runtime
    interface alone, which is the point of the exercise.
    """
    config = SeeMoReConfig.build(
        1,
        1,
        request_timeout=request_timeout,
        batch_policy=BatchPolicy(max_batch=max_batch),
    )
    workload = Workload.build("0/0")
    keystore = KeyStore(seed=f"conformance-{seed}")
    for replica_id in config.all_replicas:
        keystore.register(replica_id)
    keystore.register(CLIENT_ID)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas: Dict[str, RecordingReplica] = {}
    for replica_id in config.all_replicas:
        replica = RecordingReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            initial_mode=mode,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    client = Client(
        node_id=CLIENT_ID,
        runtime=runtime,
        signer=keystore.signer_for(CLIENT_ID),
        verifier=verifier,
        config=client_config_for_mode(config, mode, request_timeout=client_timeout),
        operation_factory=workload.operation_factory(client_seed=0),
        max_requests=num_requests,
        window=window,
    )
    runtime.register(client)
    return replicas, client


def _canonical_sequence(
    backend: str, traces, num_requests: int
) -> Tuple[Tuple[str, int], ...]:
    """The longest commit trace, after asserting all traces agree on their
    common prefixes and nothing committed twice.

    Works on plain flattened traces so the proc backend can feed it
    harvested data from worker processes.
    """
    ordered = sorted((list(trace) for trace in traces), key=len, reverse=True)
    canonical = tuple(tuple(entry) for entry in ordered[0])
    for trace in ordered[1:]:
        if tuple(tuple(entry) for entry in trace) != canonical[: len(trace)]:
            raise AssertionError(
                f"[{backend}] replicas disagree on flattened commit order"
            )
    seen = set()
    for entry in canonical:
        if entry in seen:
            raise AssertionError(f"[{backend}] request committed twice: {entry}")
        seen.add(entry)
    if len(canonical) < num_requests:
        raise AssertionError(
            f"[{backend}] committed only {len(canonical)}/{num_requests} requests"
        )
    return canonical


def _canonical_trace(
    backend: str, replicas: Dict[str, RecordingReplica], num_requests: int
) -> Tuple[Tuple[str, int], ...]:
    violations = find_safety_violations([replica.ledger for replica in replicas.values()])
    if violations:
        raise AssertionError(f"[{backend}] ledger safety violated: {violations[0]}")
    return _canonical_sequence(
        backend,
        [replica.commit_trace for replica in replicas.values()],
        num_requests,
    )


def _reply_digests(
    replicas: Dict[str, RecordingReplica], num_requests: int
) -> Dict[int, str]:
    executor = max(replicas.values(), key=lambda replica: replica.last_executed).executor
    digests: Dict[int, str] = {}
    for timestamp in range(1, num_requests + 1):
        result = executor.cached_reply(CLIENT_ID, timestamp)
        if result is not None:
            digests[timestamp] = _result_digest(result)
    return digests


def run_sim(
    mode: Mode, num_requests: int, window: int, max_batch: int, seed: int = 0
) -> BackendTrace:
    """One deterministic leg on the discrete-event backend."""
    simulator = Simulator()
    network = Network(
        simulator, latency_model=UniformLatencyModel(base=0.0002, jitter=0.0), seed=seed
    )
    runtime = SimRuntime(simulator, network)
    replicas, client = _build_cluster(
        runtime,
        mode,
        num_requests=num_requests,
        window=window,
        request_timeout=0.02,
        client_timeout=0.2,
        max_batch=max_batch,
        seed=seed,
    )
    client.start()
    simulator.run(until=60.0)
    if client.completed_count < num_requests:
        raise AssertionError(
            f"[sim] client completed {client.completed_count}/{num_requests}"
        )
    return BackendTrace(
        backend="sim",
        mode=mode,
        completed=client.completed_count,
        commit_trace=_canonical_trace("sim", replicas, num_requests),
        reply_digests=_reply_digests(replicas, num_requests),
    )


def run_aio(
    mode: Mode,
    num_requests: int,
    window: int,
    max_batch: int,
    seed: int = 0,
    timeout: float = 60.0,
) -> BackendTrace:
    """One real-network leg: asyncio tasks over loopback TCP."""
    runtime = AioRuntime()
    replicas, client = _build_cluster(
        runtime,
        mode,
        num_requests=num_requests,
        window=window,
        request_timeout=AIO_REQUEST_TIMEOUT,
        client_timeout=AIO_CLIENT_TIMEOUT,
        max_batch=max_batch,
        seed=seed,
    )
    finished = runtime.run(
        kickoff=client.start,
        until=lambda: client.completed_count >= num_requests,
        timeout=timeout,
    )
    if not finished:
        raise AssertionError(
            f"[aio] timed out with {client.completed_count}/{num_requests} completed"
        )
    return BackendTrace(
        backend="aio",
        mode=mode,
        completed=client.completed_count,
        commit_trace=_canonical_trace("aio", replicas, num_requests),
        reply_digests=_reply_digests(replicas, num_requests),
    )


def run_proc(
    mode: Mode,
    num_requests: int,
    window: int,
    max_batch: int,
    seed: int = 0,
    timeout: float = 60.0,
    num_procs: int = 2,
) -> BackendTrace:
    """One multiprocess leg: worker processes over loopback TCP.

    Replica ledgers, flattened commit traces, and cached-reply digests are
    harvested from the worker processes at shutdown and fed through the
    same canonicalization as the in-process backends.
    """
    from repro.cluster.builders import build_proc_seemore

    cluster = build_proc_seemore(
        mode=mode,
        num_procs=num_procs,
        num_requests=num_requests,
        window=window,
        max_batch=max_batch,
        request_timeout=AIO_REQUEST_TIMEOUT,
        client_timeout=AIO_CLIENT_TIMEOUT,
        seed=seed,
        client_id=CLIENT_ID,
    )
    result = cluster.run(timeout=timeout)
    if not result.met:
        completed = result.harvests.get("client", {}).get("completed", "?")
        raise AssertionError(
            f"[proc] timed out with {completed}/{num_requests} completed "
            f"(deaths={result.deaths}, errors={result.errors})"
        )
    harvested: Dict[str, Dict[str, object]] = {}
    for name, harvest in result.harvests.items():
        if name.startswith("replicas-"):
            harvested.update(harvest)
    violations = find_safety_violations([data["ledger"] for data in harvested.values()])
    if violations:
        raise AssertionError(f"[proc] ledger safety violated: {violations[0]}")
    best = max(harvested.values(), key=lambda data: data["last_executed"])
    return BackendTrace(
        backend="proc",
        mode=mode,
        completed=result.harvests["client"]["completed"],
        commit_trace=_canonical_sequence(
            "proc",
            [data["commit_trace"] for data in harvested.values()],
            num_requests,
        ),
        reply_digests=dict(best["reply_digests"]),
    )


_REAL_BACKENDS = {"aio": run_aio, "proc": run_proc}


def check_mode(
    mode: Mode,
    num_requests: int = 120,
    window: int = 8,
    max_batch: int = 8,
    seed: int = 0,
    timeout: float = 60.0,
    backend: str = "aio",
    num_procs: int = 2,
) -> Dict[str, object]:
    """Run the sim oracle plus one real backend for ``mode`` and assert
    they conform.

    ``backend`` picks the real leg: ``"aio"`` (one event loop) or
    ``"proc"`` (``num_procs`` replica processes + a client process).
    Returns a small summary dict (used by the CLI entry point and tests).
    """
    sim = run_sim(mode, num_requests, window, max_batch, seed=seed)
    if backend == "aio":
        real = run_aio(mode, num_requests, window, max_batch, seed=seed, timeout=timeout)
    elif backend == "proc":
        real = run_proc(
            mode, num_requests, window, max_batch,
            seed=seed, timeout=timeout, num_procs=num_procs,
        )
    else:
        raise ValueError(f"unknown real backend {backend!r}; choose aio or proc")

    common = min(len(sim.commit_trace), len(real.commit_trace))
    if sim.commit_trace[:common] != real.commit_trace[:common]:
        for index in range(common):
            if sim.commit_trace[index] != real.commit_trace[index]:
                raise AssertionError(
                    f"[{mode.name}] committed sequences diverge at position {index}: "
                    f"sim={sim.commit_trace[index]} {backend}={real.commit_trace[index]}"
                )
    for timestamp in range(1, num_requests + 1):
        sim_digest = sim.reply_digests.get(timestamp)
        real_digest = real.reply_digests.get(timestamp)
        if sim_digest is None or real_digest is None:
            raise AssertionError(
                f"[{mode.name}] missing cached reply for timestamp {timestamp} "
                f"(sim={sim_digest is not None}, {backend}={real_digest is not None})"
            )
        if sim_digest != real_digest:
            raise AssertionError(
                f"[{mode.name}] reply digests differ at timestamp {timestamp}"
            )
    return {
        "mode": mode.name,
        "backend": backend,
        "requests": num_requests,
        "sim_committed": len(sim.commit_trace),
        "real_committed": len(real.commit_trace),
        "common_prefix": common,
        "replies_compared": num_requests,
    }


def check_all(
    modes: Tuple[Mode, ...] = (Mode.LION, Mode.DOG, Mode.PEACOCK),
    num_requests: int = 120,
    window: int = 8,
    max_batch: int = 8,
    timeout: float = 60.0,
    backend: str = "aio",
    num_procs: int = 2,
) -> List[Dict[str, object]]:
    """The standard conformance matrix: batched Lion/Dog/Peacock at f=1."""
    return [
        check_mode(mode, num_requests=num_requests, window=window,
                   max_batch=max_batch, timeout=timeout,
                   backend=backend, num_procs=num_procs)
        for mode in modes
    ]


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--window", type=int, default=8)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--mode",
        choices=[mode.name.lower() for mode in Mode],
        default=None,
        help="check a single mode instead of the full matrix",
    )
    parser.add_argument(
        "--backend",
        choices=sorted(_REAL_BACKENDS),
        default="aio",
        help="which real backend to check against the sim oracle",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=2,
        help="replica worker processes for --backend proc",
    )
    args = parser.parse_args(argv)
    modes = (Mode[args.mode.upper()],) if args.mode else (Mode.LION, Mode.DOG, Mode.PEACOCK)
    for summary in check_all(
        modes=modes,
        num_requests=args.requests,
        window=args.window,
        max_batch=args.max_batch,
        timeout=args.timeout,
        backend=args.backend,
        num_procs=args.procs,
    ):
        print(
            "conformance OK: mode={mode} backend={backend} requests={requests} "
            "sim_committed={sim_committed} real_committed={real_committed} "
            "common_prefix={common_prefix}".format(**summary)
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
