"""Sizing equations for renting public-cloud servers (Section 4).

The key quantities, in the paper's notation:

* ``S``  — servers owned in the trusted private cloud,
* ``c``  — maximum concurrent crash failures in the private cloud,
* ``P``  — servers rented from the untrusted public cloud,
* ``m``  — maximum concurrent Byzantine failures among the rented servers,
* ``N = S + P`` — total network size, which must satisfy ``N ≥ 3m + 2c + 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


class InfeasiblePlanError(ValueError):
    """Raised when no rental plan can satisfy the protocol constraints."""


def hybrid_network_size(malicious: int, crash: int) -> int:
    """Minimum network size ``3m + 2c + 1`` for the hybrid failure model (Eq. 1)."""
    _validate_fault_counts(malicious, crash)
    return 3 * malicious + 2 * crash + 1


def hybrid_quorum_size(malicious: int, crash: int) -> int:
    """Minimum quorum size ``2m + c + 1`` for the hybrid failure model."""
    _validate_fault_counts(malicious, crash)
    return 2 * malicious + crash + 1


@dataclass(frozen=True)
class CloudPlan:
    """A concrete rental recommendation.

    Attributes:
        private_nodes: servers used from the private cloud (``S``).
        public_nodes: servers to rent from the public cloud (``P``).
        crash_tolerance: crash failures tolerated in the private cloud (``c``).
        byzantine_tolerance: Byzantine failures tolerated in the public cloud (``m``).
        rationale: short human-readable explanation of the recommendation.
    """

    private_nodes: int
    public_nodes: int
    crash_tolerance: int
    byzantine_tolerance: int
    rationale: str = ""

    @property
    def network_size(self) -> int:
        return self.private_nodes + self.public_nodes

    @property
    def quorum_size(self) -> int:
        return hybrid_quorum_size(self.byzantine_tolerance, self.crash_tolerance)

    @property
    def satisfies_constraints(self) -> bool:
        """Whether ``N ≥ 3m + 2c + 1`` holds for this plan."""
        return self.network_size >= hybrid_network_size(
            self.byzantine_tolerance, self.crash_tolerance
        )


def rental_is_beneficial(private_size: int, crash_tolerance: int) -> bool:
    """Whether renting public nodes helps at all.

    Per Section 4: if ``S ≥ 2c + 1`` the private cloud can run Paxos alone;
    if ``S ≤ c`` the private cloud is useless and everything should go to
    the public cloud.  Renting is beneficial only when ``c < S < 2c + 1``.
    """
    _validate_private_cloud(private_size, crash_tolerance)
    return crash_tolerance < private_size < 2 * crash_tolerance + 1


def plan_with_failure_ratio(
    private_size: int,
    crash_tolerance: int,
    malicious_ratio: float,
    crash_ratio: float = 0.0,
) -> CloudPlan:
    """Equations (2) and (3): size the rental from advertised failure ratios.

    Args:
        private_size: ``S``, servers owned in the private cloud.
        crash_tolerance: ``c``, concurrent crash failures to tolerate there.
        malicious_ratio: ``α = m / P``, fraction of rented nodes that may be
            malicious (uniformly distributed).
        crash_ratio: ``β = c_pub / P``, fraction of rented nodes that may
            merely crash, when the provider distinguishes failure types
            (Equation 3).  Defaults to 0, which recovers Equation (2).

    Returns:
        A :class:`CloudPlan` with the minimal number of public nodes to rent.

    Raises:
        InfeasiblePlanError: if the private cloud already suffices, is
            useless, or the provider's failure ratio makes the constraint
            unsatisfiable (``3α + 2β ≥ 1``).

    Example (from the paper): ``S=2, c=1, α=0.3`` requires renting 10 nodes.

    >>> plan_with_failure_ratio(2, 1, 0.3).public_nodes
    10
    """
    _validate_private_cloud(private_size, crash_tolerance)
    _validate_ratio("malicious_ratio", malicious_ratio)
    _validate_ratio("crash_ratio", crash_ratio)

    if private_size >= 2 * crash_tolerance + 1:
        raise InfeasiblePlanError(
            f"private cloud of {private_size} nodes already tolerates c={crash_tolerance} "
            "crashes on its own (S >= 2c+1); run a crash fault-tolerant protocol instead"
        )
    if private_size <= crash_tolerance:
        raise InfeasiblePlanError(
            f"private cloud of {private_size} nodes with c={crash_tolerance} possible crashes "
            "offers no benefit (S <= c); rent everything and run a Byzantine protocol"
        )

    denominator = 3.0 * malicious_ratio + 2.0 * crash_ratio - 1.0
    numerator = float(private_size - (2 * crash_tolerance + 1))
    # Both numerator and denominator are negative in the beneficial regime;
    # a non-negative denominator means alpha/beta are too high to ever satisfy
    # the network size constraint.
    if denominator >= 0:
        raise InfeasiblePlanError(
            f"public cloud with malicious ratio {malicious_ratio} and crash ratio {crash_ratio} "
            "cannot satisfy the network size constraint (3*alpha + 2*beta >= 1)"
        )
    public_nodes = math.ceil(numerator / denominator)
    byzantine = math.floor(malicious_ratio * public_nodes)
    rationale = (
        f"Equation ({'3' if crash_ratio else '2'}): S={private_size}, c={crash_tolerance}, "
        f"alpha={malicious_ratio}" + (f", beta={crash_ratio}" if crash_ratio else "")
    )
    return CloudPlan(
        private_nodes=private_size,
        public_nodes=public_nodes,
        crash_tolerance=crash_tolerance,
        byzantine_tolerance=byzantine,
        rationale=rationale,
    )


def plan_with_explicit_failures(
    private_size: int,
    crash_tolerance: int,
    public_malicious: int,
    public_crash: int = 0,
) -> CloudPlan:
    """Size the rental when the provider states explicit failure counts.

    ``P = (3M + 2C + 2c + 1) - S`` where ``M`` (and optionally ``C``) are the
    maximum concurrent malicious (and crash) failures in the rented cluster.
    """
    _validate_private_cloud(private_size, crash_tolerance)
    if public_malicious < 0 or public_crash < 0:
        raise ValueError("public cloud failure counts cannot be negative")

    required_total = 3 * public_malicious + 2 * public_crash + 2 * crash_tolerance + 1
    public_nodes = max(0, required_total - private_size)
    rationale = (
        f"explicit failures: M={public_malicious}, C={public_crash}, "
        f"S={private_size}, c={crash_tolerance}"
    )
    return CloudPlan(
        private_nodes=private_size,
        public_nodes=public_nodes,
        crash_tolerance=crash_tolerance,
        byzantine_tolerance=public_malicious,
        rationale=rationale,
    )


def recommend_plan(
    private_size: int,
    crash_tolerance: int,
    malicious_ratio: Optional[float] = None,
    public_malicious: Optional[int] = None,
    public_crash: int = 0,
    crash_ratio: float = 0.0,
) -> CloudPlan:
    """One-stop recommendation combining both sizing methods.

    Provide either ``malicious_ratio`` (ratio model) or ``public_malicious``
    (explicit model).  If the private cloud alone suffices, the returned plan
    rents nothing and recommends a crash fault-tolerant protocol.
    """
    _validate_private_cloud(private_size, crash_tolerance)
    if private_size >= 2 * crash_tolerance + 1:
        return CloudPlan(
            private_nodes=private_size,
            public_nodes=0,
            crash_tolerance=crash_tolerance,
            byzantine_tolerance=0,
            rationale="private cloud satisfies S >= 2c+1; run Paxos locally",
        )
    if public_malicious is not None:
        return plan_with_explicit_failures(
            private_size, crash_tolerance, public_malicious, public_crash
        )
    if malicious_ratio is not None:
        return plan_with_failure_ratio(
            private_size, crash_tolerance, malicious_ratio, crash_ratio
        )
    raise ValueError("provide either malicious_ratio or public_malicious")


def _validate_fault_counts(malicious: int, crash: int) -> None:
    if malicious < 0:
        raise ValueError(f"malicious failure count cannot be negative: {malicious}")
    if crash < 0:
        raise ValueError(f"crash failure count cannot be negative: {crash}")


def _validate_private_cloud(private_size: int, crash_tolerance: int) -> None:
    if private_size < 0:
        raise ValueError(f"private cloud size cannot be negative: {private_size}")
    if crash_tolerance < 0:
        raise ValueError(f"crash tolerance cannot be negative: {crash_tolerance}")


def _validate_ratio(name: str, value: float) -> None:
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must be in [0, 1): {value}")
