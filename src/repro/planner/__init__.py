"""Public cloud sizing (Section 4 of the paper).

An enterprise that owns ``S`` trusted servers, of which up to ``c`` may
crash, must rent enough untrusted servers from a public cloud to satisfy
SeeMoRe's minimum network size ``N = 3m + 2c + 1``.  This package computes
how many, under the two information models the paper describes:

* a *ratio* model, where the public cloud advertises the fraction of faulty
  nodes (``α`` malicious, optionally ``β`` crash) -- Equations (2) and (3);
* an *explicit* model, where the cloud states the maximum number of
  concurrent failures in a rented cluster (``M`` malicious, optionally
  ``C`` crash).

It also answers the feasibility questions from the same section: when does
renting help at all (``c < S < 2c+1``), and which providers are even usable
(``α < 1/3``).
"""

from repro.planner.sizing import (
    CloudPlan,
    InfeasiblePlanError,
    hybrid_network_size,
    hybrid_quorum_size,
    plan_with_explicit_failures,
    plan_with_failure_ratio,
    recommend_plan,
    rental_is_beneficial,
)
from repro.planner.multicloud import MultiCloudOption, plan_across_clouds

__all__ = [
    "CloudPlan",
    "InfeasiblePlanError",
    "hybrid_network_size",
    "hybrid_quorum_size",
    "plan_with_failure_ratio",
    "plan_with_explicit_failures",
    "recommend_plan",
    "rental_is_beneficial",
    "MultiCloudOption",
    "plan_across_clouds",
]
