"""Generalisation of the sizing method to multiple public clouds.

Section 4 notes that both sizing methods "can be generalized to multiple
public clouds" and that, because providers differ in failure ratios, the
equation may have multiple solutions.  This module enumerates feasible
splits across providers and picks the cheapest one under a simple per-node
price model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Dict, Optional, Sequence

from repro.planner.sizing import InfeasiblePlanError, _validate_private_cloud


@dataclass(frozen=True)
class MultiCloudOption:
    """One candidate allocation across several public clouds.

    Attributes:
        allocation: provider name -> number of nodes rented there.
        byzantine_tolerance: total malicious failures tolerated (sum of
            per-provider worst cases).
        total_cost: total per-period price of the rented nodes.
    """

    allocation: Dict[str, int]
    byzantine_tolerance: int
    total_cost: float

    @property
    def total_public_nodes(self) -> int:
        return sum(self.allocation.values())


@dataclass(frozen=True)
class PublicCloudOffer:
    """A provider's advertised characteristics."""

    name: str
    malicious_ratio: float
    price_per_node: float = 1.0
    max_nodes: int = 64


def plan_across_clouds(
    private_size: int,
    crash_tolerance: int,
    offers: Sequence[PublicCloudOffer],
    max_nodes_per_cloud: Optional[int] = None,
) -> MultiCloudOption:
    """Find the cheapest feasible allocation across multiple providers.

    The search enumerates per-provider node counts up to each provider's
    ``max_nodes`` (or the override) and keeps allocations whose total size
    satisfies ``S + sum(P_i) >= 3 * sum(m_i) + 2c + 1`` where
    ``m_i = floor(alpha_i * P_i)``.

    Raises:
        InfeasiblePlanError: when no allocation satisfies the constraint.
    """
    _validate_private_cloud(private_size, crash_tolerance)
    if not offers:
        raise ValueError("at least one public cloud offer is required")

    limits = [
        min(offer.max_nodes, max_nodes_per_cloud) if max_nodes_per_cloud else offer.max_nodes
        for offer in offers
    ]
    best: Optional[MultiCloudOption] = None
    for counts in product(*(range(0, limit + 1) for limit in limits)):
        total_public = sum(counts)
        if total_public == 0:
            continue
        malicious = sum(
            math.floor(offer.malicious_ratio * count) for offer, count in zip(offers, counts)
        )
        required = 3 * malicious + 2 * crash_tolerance + 1
        if private_size + total_public < required:
            continue
        cost = sum(offer.price_per_node * count for offer, count in zip(offers, counts))
        candidate = MultiCloudOption(
            allocation={offer.name: count for offer, count in zip(offers, counts) if count},
            byzantine_tolerance=malicious,
            total_cost=cost,
        )
        if best is None or (candidate.total_cost, candidate.total_public_nodes) < (
            best.total_cost,
            best.total_public_nodes,
        ):
            best = candidate
    if best is None:
        raise InfeasiblePlanError(
            "no allocation across the offered public clouds satisfies the network size constraint"
        )
    return best
