"""SeeMoRe: hybrid crash/Byzantine fault-tolerant replication for hybrid clouds.

A faithful Python reproduction of *SeeMoRe: A Fault-Tolerant Protocol for
Hybrid Cloud Environments* (Amiri, Maiyya, Agrawal, El Abbadi — ICDE 2020),
including the protocol in its three modes (Lion, Dog, Peacock), dynamic
mode switching, the public-cloud sizing calculator, the baselines the paper
compares against (Paxos/CFT, PBFT/BFT, S-UpRight), and a deterministic
discrete-event simulation substrate to run and measure them.

Quickstart::

    from repro import Mode, build_seemore, run_deployment

    deployment = build_seemore(crash_tolerance=1, byzantine_tolerance=1,
                               mode=Mode.LION, num_clients=4)
    result = run_deployment(deployment, duration=1.0)
    print(result.throughput_kreqs, "Kreq/s at", result.mean_latency_ms, "ms")
"""

from repro.core import Mode, SeeMoReConfig, SeeMoReReplica, client_config_for_mode
from repro.planner import (
    CloudPlan,
    plan_with_explicit_failures,
    plan_with_failure_ratio,
    recommend_plan,
)
from repro.cluster import (
    Deployment,
    RunResult,
    ShardedRunResult,
    build_paxos,
    build_pbft,
    build_seemore,
    build_sharded_seemore,
    build_upright,
    builder_for,
    run_deployment,
    run_sharded_deployment,
    run_timeline,
    sweep_clients,
)
from repro.shard import ShardedDeployment, ShardRouter, ShardSpec
from repro.workload import (
    MetricsCollector,
    Workload,
    kv_workload,
    microbenchmark,
    sharded_kv_workload,
)
from repro.scenarios import (
    SCENARIOS,
    SHARDED_SCENARIOS,
    Scenario,
    ShardedScenario,
    run_scenario,
    run_scenario_matrix,
    run_sharded_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "Mode",
    "SeeMoReConfig",
    "SeeMoReReplica",
    "client_config_for_mode",
    "CloudPlan",
    "plan_with_failure_ratio",
    "plan_with_explicit_failures",
    "recommend_plan",
    "Deployment",
    "RunResult",
    "build_seemore",
    "build_sharded_seemore",
    "build_paxos",
    "build_pbft",
    "build_upright",
    "builder_for",
    "run_deployment",
    "run_sharded_deployment",
    "ShardedRunResult",
    "ShardedDeployment",
    "ShardRouter",
    "ShardSpec",
    "sharded_kv_workload",
    "SHARDED_SCENARIOS",
    "ShardedScenario",
    "run_sharded_scenario",
    "sweep_clients",
    "run_timeline",
    "Workload",
    "microbenchmark",
    "kv_workload",
    "MetricsCollector",
    "Scenario",
    "SCENARIOS",
    "run_scenario",
    "run_scenario_matrix",
    "__version__",
]
