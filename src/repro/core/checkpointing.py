"""Checkpointing, garbage collection, and state transfer support.

Section 5.1 ("State Transfer"): checkpoints are generated periodically when
a request sequence number is divisible by the checkpoint period.  In the
Lion and Dog modes the *trusted primary's* signed checkpoint message alone
is a checkpoint certificate; in the Peacock mode (as in PBFT) a checkpoint
becomes stable once matching checkpoint messages from a quorum of proxies
are received.  A stable checkpoint lets the replica discard all protocol
messages at or below its sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


@dataclass
class StableCheckpoint:
    """The most recent checkpoint this replica knows to be stable."""

    sequence: int = 0
    state_digest: str = ""


class CheckpointManager:
    """Tracks locally produced and remotely certified checkpoints."""

    def __init__(self, period: int) -> None:
        if period < 1:
            raise ValueError(f"checkpoint period must be >= 1, got {period}")
        self.period = period
        self.stable = StableCheckpoint()
        # Checkpoint votes seen so far: sequence -> digest -> set of replicas.
        self._votes: Dict[int, Dict[str, set]] = {}
        # Local snapshots at checkpoint boundaries, kept for state transfer.
        self._snapshots: Dict[int, Any] = {}
        self.checkpoints_taken = 0
        self.garbage_collections = 0

    # -- local checkpoints ---------------------------------------------------

    def is_checkpoint_sequence(self, sequence: int) -> bool:
        return sequence > 0 and sequence % self.period == 0

    def record_local_checkpoint(self, sequence: int, state_digest: str, snapshot: Any) -> None:
        """Store this replica's own checkpoint at ``sequence``."""
        self._snapshots[sequence] = snapshot
        self.checkpoints_taken += 1
        # Keep only the two most recent local snapshots.
        for old in sorted(self._snapshots)[:-2]:
            del self._snapshots[old]

    def snapshot_at(self, sequence: int) -> Optional[Any]:
        return self._snapshots.get(sequence)

    def latest_snapshot(self) -> Tuple[int, Optional[Any]]:
        if not self._snapshots:
            return 0, None
        sequence = max(self._snapshots)
        return sequence, self._snapshots[sequence]

    # -- certification ---------------------------------------------------------

    def record_vote(self, sequence: int, state_digest: str, replica_id: str) -> int:
        """Record a checkpoint message and return the matching vote count."""
        by_digest = self._votes.setdefault(sequence, {})
        voters = by_digest.setdefault(state_digest, set())
        voters.add(replica_id)
        return len(voters)

    def vote_count(self, sequence: int, state_digest: str) -> int:
        return len(self._votes.get(sequence, {}).get(state_digest, set()))

    def mark_stable(self, sequence: int, state_digest: str) -> bool:
        """Advance the stable checkpoint; returns True if it moved forward."""
        if sequence <= self.stable.sequence:
            return False
        self.stable = StableCheckpoint(sequence=sequence, state_digest=state_digest)
        self.garbage_collections += 1
        stale_votes = [seq for seq in self._votes if seq <= sequence]
        for seq in stale_votes:
            del self._votes[seq]
        return True

    @property
    def stable_sequence(self) -> int:
        return self.stable.sequence

    @property
    def stable_digest(self) -> str:
        return self.stable.state_digest
