"""The three operating modes of SeeMoRe (Section 5).

The paper names the modes after the three animals composing the mythical
Seemorq: the *Lion* (trusted primary, all replicas participate), the *Dog*
(trusted primary, untrusted proxies do the work), and the *Peacock*
(untrusted primary, agreement entirely in the public cloud).
"""

from __future__ import annotations

import enum


class Mode(enum.IntEnum):
    """Operating mode of the protocol (``pi`` in the paper's notation)."""

    LION = 1
    DOG = 2
    PEACOCK = 3

    @property
    def has_trusted_primary(self) -> bool:
        """Whether the primary is a trusted (private cloud) replica."""
        return self in (Mode.LION, Mode.DOG)

    @property
    def uses_proxies(self) -> bool:
        """Whether agreement is delegated to 3m+1 public-cloud proxies."""
        return self in (Mode.DOG, Mode.PEACOCK)

    @property
    def communication_phases(self) -> int:
        """Number of agreement phases in the normal case (Table 1)."""
        return 3 if self is Mode.PEACOCK else 2

    @property
    def message_complexity(self) -> str:
        """Asymptotic message complexity in the normal case (Table 1)."""
        return "O(n)" if self is Mode.LION else "O(n^2)"

    def describe(self) -> str:
        descriptions = {
            Mode.LION: "trusted primary, all replicas participate (2 phases, O(n) messages)",
            Mode.DOG: "trusted primary, public-cloud proxies agree (2 phases, O(n^2) messages)",
            Mode.PEACOCK: "untrusted primary, PBFT among public-cloud proxies (3 phases)",
        }
        return descriptions[self]
