"""The Lion mode: trusted primary, all replicas participate (Section 5.1).

Normal-case flow (Algorithm 1):

1. the client sends its request to the trusted primary;
2. the primary assigns a sequence number and multicasts a signed
   ``PREPARE`` (carrying the request) to every replica;
3. every replica answers the primary with an unsigned ``ACCEPT``;
4. the primary, upon 2m+c accepts from different replicas (2m+c+1 counting
   itself), multicasts a signed ``COMMIT`` carrying the request, executes,
   and replies to the client;
5. replicas execute on receipt of the primary's ``COMMIT``.

Because the primary is trusted, no replica-to-replica phase is needed to
detect equivocation: two phases and a linear number of messages suffice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adaptive.evidence import EvidenceKind
from repro.core import messages as msgs
from repro.core.modes import Mode
from repro.core.strategy_base import ModeStrategy
from repro.smr.replica import request_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica


class LionStrategy(ModeStrategy):
    """Agreement logic of the Lion mode."""

    mode = Mode.LION

    # -- roles ----------------------------------------------------------------

    def replies_to_client(self, replica: "SeeMoReReplica") -> bool:
        return replica.is_primary()

    def is_agreement_participant(self, replica: "SeeMoReReplica") -> bool:
        return True

    # -- request handling --------------------------------------------------------
    # Client requests funnel through the shared ModeStrategy.on_request path:
    # the primary batches them and proposes via the hooks below.

    def ordering_message(self, replica, sequence, digest, payload):
        return msgs.Prepare(
            view=replica.view,
            sequence=sequence,
            digest=digest,
            request=payload,
            mode=int(self.mode),
        )

    def record_proposal_vote(self, replica, slot, digest):
        # The primary's own accept counts toward the quorum of 2m+c+1.
        slot.record_vote("accept", replica.node_id, None, digest)

    # -- prepare / accept / commit --------------------------------------------------

    def on_prepare(self, replica: "SeeMoReReplica", src: str, message: msgs.Prepare) -> None:
        if not replica.accepts_ordering_from(src, message.view, message.mode):
            return
        if not replica.verify_message(src, message):
            return
        if not replica.in_watermark_window(message.sequence):
            return
        if message.digest != request_digest(message.request):
            return

        # The primary is trusted, so its assignment supersedes any stale
        # uncommitted content this slot may hold from an earlier view/mode.
        replica.prepare_slot(message.sequence, message.digest, message.request, message, force=True)
        accept = msgs.Accept(
            view=message.view,
            sequence=message.sequence,
            digest=message.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
            signed=False,
        )
        replica.send(src, accept)
        replica.start_request_timer()

    def on_accept(self, replica: "SeeMoReReplica", src: str, message: msgs.Accept) -> None:
        if not replica.is_primary():
            return
        if not replica.valid_view(message.view):
            return
        slot = replica.slots.existing_slot(message.sequence)
        if slot is None:
            return
        if slot.digest is not None and message.digest != slot.digest:
            # A same-view accept contradicting this trusted primary's own
            # assignment can only come from a faulty replica.
            replica.evidence.record(
                EvidenceKind.CONFLICTING_VOTE,
                suspect=src,
                detail=f"accept seq={message.sequence} view={message.view}",
            )
            return
        if slot.digest is None or slot.committed:
            # No assignment yet (nothing to vote on) or already committed;
            # the mismatch case returned above.
            return

        count = slot.record_vote("accept", src, message, message.digest)
        if count < replica.config.accept_quorum(self.mode):
            return

        commit = msgs.Commit(
            view=replica.view,
            sequence=message.sequence,
            digest=slot.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
            request=slot.request,
        )
        commit.sign(replica.signer)
        replica.multicast(replica.other_replicas(), commit)
        replica.finalize_commit(slot, send_reply=True)

    def on_commit(self, replica: "SeeMoReReplica", src: str, message: msgs.Commit) -> None:
        if not replica.accepts_ordering_from(src, message.view, message.mode):
            return
        if not replica.verify_message(src, message):
            return
        if message.request is None:
            return
        # Even a replica that never saw the prepare can execute: the commit
        # comes from the trusted primary and carries the request.
        slot = replica.prepare_slot(
            message.sequence, message.digest, message.request, ordering_message=None, force=True
        )
        if slot.committed:
            return
        replica.finalize_commit(slot, send_reply=False)
