"""The Peacock mode: untrusted primary, agreement in the public cloud (Section 5.3).

The agreement routine is PBFT among the 3m+1 public-cloud proxies, with the
two changes the paper describes:

* the primary multicasts its signed ``PRE-PREPARE`` (with the request) to
  *all* replicas, not only to the proxies, so every replica can execute once
  it learns the outcome;
* when a proxy commits, it sends a signed ``INFORM`` to every passive
  replica (private cloud nodes and non-proxy public nodes); passive replicas
  execute after m+1 matching informs.

The private cloud does not participate in the agreement at all, which is
exactly what makes the mode attractive when the private cloud is loaded or
far away; its trusted nodes return as *transferers* during view changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adaptive.evidence import EvidenceKind
from repro.core import messages as msgs
from repro.core.modes import Mode
from repro.core.strategy_base import ModeStrategy
from repro.smr.replica import request_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica


class PeacockStrategy(ModeStrategy):
    """Agreement logic of the Peacock mode."""

    mode = Mode.PEACOCK

    # -- roles ----------------------------------------------------------------

    def replies_to_client(self, replica: "SeeMoReReplica") -> bool:
        return replica.is_proxy()

    def is_agreement_participant(self, replica: "SeeMoReReplica") -> bool:
        return replica.is_proxy()

    # -- request handling --------------------------------------------------------
    # Client requests funnel through the shared ModeStrategy.on_request path:
    # the primary batches them and proposes via the hooks below.

    def ordering_message(self, replica, sequence, digest, payload):
        return msgs.PrePrepare(
            view=replica.view,
            sequence=sequence,
            digest=digest,
            request=payload,
            mode=int(self.mode),
        )

    def record_proposal_vote(self, replica, slot, digest):
        # As in PBFT, the primary's pre-prepare doubles as its prepare vote.
        slot.record_vote("prepare", replica.node_id, None, digest)

    # -- pre-prepare / prepare / commit / inform --------------------------------------

    def on_preprepare(self, replica: "SeeMoReReplica", src: str, message: msgs.PrePrepare) -> None:
        if not replica.accepts_ordering_from(src, message.view, message.mode):
            return
        if not replica.verify_message(src, message):
            return
        if not replica.in_watermark_window(message.sequence):
            return
        if message.digest != request_digest(message.request):
            return

        existing = replica.slots.existing_slot(message.sequence)
        if (
            existing is not None
            and existing.digest is not None
            and existing.digest != message.digest
        ):
            # The untrusted primary equivocated; refuse the second assignment
            # and let the timer trigger a view change.  Two conflicting
            # signed assignments for one slot are a hard proof of Byzantine
            # behaviour -- record it for the adaptive controller.
            replica.evidence.record(
                EvidenceKind.EQUIVOCATION,
                suspect=src,
                detail=f"pre-prepare seq={message.sequence} view={message.view}",
            )
            return

        slot = replica.prepare_slot(message.sequence, message.digest, message.request, message)
        # As in PBFT, the primary's pre-prepare counts as its prepare vote:
        # the prepared certificate is the pre-prepare plus 2m matching
        # prepares from other proxies.
        slot.record_vote("prepare", src, message, message.digest)
        replica.start_request_timer()
        if not replica.is_proxy():
            return

        prepare = msgs.ProxyPrepare(
            view=message.view,
            sequence=message.sequence,
            digest=message.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
        )
        prepare.sign(replica.signer)
        slot.record_vote("prepare", replica.node_id, prepare, message.digest)
        replica.multicast(replica.other_proxies(), prepare)
        self._maybe_send_commit(replica, slot)

    def on_proxy_prepare(
        self, replica: "SeeMoReReplica", src: str, message: msgs.ProxyPrepare
    ) -> None:
        if not replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        if slot.digest is not None and message.digest != slot.digest:
            # A same-view vote contradicting the slot's accepted assignment
            # proves Byzantine behaviour, but unlike Lion/Dog the
            # assignment here came from an *untrusted* primary: either the
            # voter lied or the primary equivocated, and this receiver
            # cannot tell which.  Record the event unattributed — it still
            # counts toward escalation, but never names an honest proxy.
            replica.evidence.record(
                EvidenceKind.CONFLICTING_VOTE,
                detail=f"proxy-prepare seq={message.sequence} view={message.view}: "
                f"{src} contradicts the accepted untrusted assignment",
            )
        slot.record_vote("prepare", src, message, message.digest)
        self._maybe_send_commit(replica, slot)

    def _maybe_send_commit(self, replica: "SeeMoReReplica", slot) -> None:
        if slot.digest is None or slot.request is None:
            return
        if slot.has_vote_from("commit", replica.node_id):
            return
        # Prepared: the pre-prepare plus 2m matching prepares from distinct
        # proxies (the proxy's own prepare counts).
        if slot.vote_count("prepare") < 2 * replica.config.byzantine_tolerance + 1:
            return

        commit = msgs.Commit(
            view=replica.view,
            sequence=slot.sequence,
            digest=slot.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
            request=None,
        )
        commit.sign(replica.signer)
        slot.record_vote("commit", replica.node_id, commit, slot.digest)
        replica.multicast(replica.other_proxies(), commit)
        self._maybe_commit(replica, slot)

    def on_commit(self, replica: "SeeMoReReplica", src: str, message: msgs.Commit) -> None:
        if not replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        slot.record_vote("commit", src, message, message.digest)
        self._maybe_commit(replica, slot)

    def _maybe_commit(self, replica: "SeeMoReReplica", slot) -> None:
        if slot.committed or slot.digest is None or slot.request is None:
            return
        if slot.vote_count("commit") < replica.config.commit_quorum(self.mode):
            return
        self._send_informs(replica, slot)
        replica.finalize_commit(slot, send_reply=True)

    def on_inform(self, replica: "SeeMoReReplica", src: str, message: msgs.Inform) -> None:
        if replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        count = slot.record_vote("inform", src, message, message.digest)
        if slot.committed or slot.request is None:
            return
        if slot.digest is not None and slot.digest != message.digest:
            # Unattributed for the same reason as on_proxy_prepare: the
            # contradicted assignment came from an untrusted primary.
            replica.evidence.record(
                EvidenceKind.CONFLICTING_VOTE,
                detail=f"inform seq={message.sequence} view={message.view}: "
                f"{src} contradicts the accepted untrusted assignment",
            )
            return
        if count >= replica.config.inform_quorum(self.mode):
            replica.finalize_commit(slot, send_reply=False)

    def _send_informs(self, replica: "SeeMoReReplica", slot) -> None:
        inform = msgs.Inform(
            view=replica.view,
            sequence=slot.sequence,
            digest=slot.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
        )
        inform.sign(replica.signer)
        targets = replica.inform_targets()
        if targets:
            replica.multicast(targets, inform)
