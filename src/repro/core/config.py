"""Deployment configuration for a SeeMoRe replica group.

The configuration captures the hybrid cloud layout (which replicas are in
the trusted private cloud and which in the untrusted public cloud), the
fault thresholds ``c`` and ``m``, and the role functions of Section 5:

* ``primary_of_view(v)`` — the primary of view ``v`` in each mode;
* ``proxies_of_view(v)`` — the 3m+1 public replicas doing agreement in the
  Dog and Peacock modes;
* ``transferer_of_view(v)`` — the trusted replica that drives Peacock view
  changes;

together with the quorum sizes of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.admission import AdmissionPolicy
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.planner.sizing import hybrid_network_size, hybrid_quorum_size


@dataclass(frozen=True)
class SeeMoReConfig:
    """Static configuration shared by every replica and client.

    Attributes:
        private_replicas: trusted replica ids, in identifier order
            (paper identifiers ``0 .. S-1``).
        public_replicas: untrusted replica ids, in identifier order
            (paper identifiers ``S .. N-1``).
        crash_tolerance: ``c``, maximum crash failures in the private cloud.
        byzantine_tolerance: ``m``, maximum Byzantine failures in the public
            cloud.
        checkpoint_period: a checkpoint is taken every this many executed
            requests.
        request_timeout: view-change timeout ``τ`` (seconds of simulated
            time a backup waits for a commit after seeing a prepare).
        view_change_timeout: how long to wait for a new-view before
            suspecting the *next* primary as well.
        batch_policy: how the primary groups client requests into consensus
            slots (see :class:`repro.core.batching.BatchPolicy`).  The
            default policy proposes one request per slot, exactly like the
            unbatched protocol.  ``checkpoint_period`` counts *slots*, so a
            deployment with large batches checkpoints every
            ``checkpoint_period × batch size`` requests.
    """

    private_replicas: Tuple[str, ...]
    public_replicas: Tuple[str, ...]
    crash_tolerance: int
    byzantine_tolerance: int
    checkpoint_period: int = 128
    request_timeout: float = 0.02
    view_change_timeout: float = 0.04
    batch_policy: BatchPolicy = field(default_factory=BatchPolicy)
    # Primary-side admission control (None = accept everything, the paper's
    # closed-loop setting; see repro.core.admission for the open-loop story).
    admission: Optional[AdmissionPolicy] = None
    # Memo for proxies_of_view, keyed by ``view mod public_size``.  Derived
    # state only: excluded from equality/hash/repr, never serialized.
    _proxy_cache: Dict[int, List[str]] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )
    _proxy_set_cache: Dict[int, frozenset] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )
    # Memo for primary_of_view, keyed by ``(view, mode)``.  Every vote and
    # request handler asks who the primary is, so the modulo-and-index is
    # paid once per (view, mode) instead of per message.
    _primary_cache: Dict[tuple, str] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.crash_tolerance < 0 or self.byzantine_tolerance < 0:
            raise ValueError("fault tolerances cannot be negative")
        if not self.private_replicas:
            raise ValueError("SeeMoRe requires at least one trusted replica for the primary")
        if self.crash_tolerance >= len(self.private_replicas) and self.crash_tolerance > 0:
            raise ValueError(
                f"private cloud of {len(self.private_replicas)} replicas cannot tolerate "
                f"c={self.crash_tolerance} crashes"
            )
        overlap = set(self.private_replicas) & set(self.public_replicas)
        if overlap:
            raise ValueError(f"replicas cannot be in both clouds: {sorted(overlap)}")
        if self.network_size < self.minimum_network_size:
            raise ValueError(
                f"network of {self.network_size} replicas is below the minimum "
                f"3m+2c+1 = {self.minimum_network_size}"
            )
        if len(self.public_replicas) < self.proxy_count and self.byzantine_tolerance > 0:
            raise ValueError(
                f"public cloud of {len(self.public_replicas)} replicas cannot host "
                f"3m+1 = {self.proxy_count} proxies"
            )
        if self.checkpoint_period < 1:
            raise ValueError("checkpoint period must be at least 1")

    # -- factory ------------------------------------------------------------

    @classmethod
    def build(
        cls,
        crash_tolerance: int,
        byzantine_tolerance: int,
        private_size: int = 0,
        public_size: int = 0,
        name_prefix: str = "",
        **overrides,
    ) -> "SeeMoReConfig":
        """Create a config with generated replica names.

        By default uses the paper's evaluation layout: ``2c`` replicas in
        the private cloud and ``3m+1`` in the public cloud, for a total of
        exactly ``3m + 2c + 1``.  ``name_prefix`` namespaces the generated
        replica ids (e.g. ``"s0-"``) so several independently configured
        clusters — the shards of a sharded deployment — can share one
        simulator, network, and keystore without id collisions.
        """
        if private_size <= 0:
            private_size = max(1, 2 * crash_tolerance)
        if public_size <= 0:
            public_size = 3 * byzantine_tolerance + 1
        private = tuple(f"{name_prefix}private-{index}" for index in range(private_size))
        public = tuple(f"{name_prefix}public-{index}" for index in range(public_size))
        return cls(
            private_replicas=private,
            public_replicas=public,
            crash_tolerance=crash_tolerance,
            byzantine_tolerance=byzantine_tolerance,
            **overrides,
        )

    # -- sizes ----------------------------------------------------------------

    @property
    def private_size(self) -> int:
        """``S`` in the paper."""
        return len(self.private_replicas)

    @property
    def public_size(self) -> int:
        """``P`` in the paper."""
        return len(self.public_replicas)

    @property
    def network_size(self) -> int:
        """``N = S + P``."""
        return self.private_size + self.public_size

    @property
    def minimum_network_size(self) -> int:
        """``3m + 2c + 1`` (Equation 1)."""
        return hybrid_network_size(self.byzantine_tolerance, self.crash_tolerance)

    @property
    def proxy_count(self) -> int:
        """``3m + 1`` proxies used by the Dog and Peacock modes."""
        return 3 * self.byzantine_tolerance + 1

    @property
    def all_replicas(self) -> Tuple[str, ...]:
        return self.private_replicas + self.public_replicas

    def is_trusted(self, replica_id: str) -> bool:
        return replica_id in self.private_replicas

    # -- quorums (Table 1) ------------------------------------------------------

    def quorum_size(self, mode: Mode) -> int:
        """Matching votes needed to commit a request in ``mode``."""
        if mode is Mode.LION:
            return hybrid_quorum_size(self.byzantine_tolerance, self.crash_tolerance)
        return 2 * self.byzantine_tolerance + 1

    def accept_quorum(self, mode: Mode) -> int:
        """Votes (including the collector's own) needed in the accept phase."""
        return self.quorum_size(mode)

    def commit_quorum(self, mode: Mode) -> int:
        """Matching commit votes a Peacock proxy needs to commit."""
        return 2 * self.byzantine_tolerance + 1

    def inform_quorum(self, mode: Mode) -> int:
        """Matching inform messages a passive replica waits for before executing."""
        if mode is Mode.DOG:
            return 2 * self.byzantine_tolerance + 1
        return self.byzantine_tolerance + 1

    def view_change_quorum(self, mode: Mode) -> int:
        """View-change messages (including the collector's own) needed for a new view."""
        if mode is Mode.LION:
            return hybrid_quorum_size(self.byzantine_tolerance, self.crash_tolerance)
        return 2 * self.byzantine_tolerance + 1

    def client_reply_quorum(self, mode: Mode) -> int:
        """Matching replies a client needs in the normal case."""
        if mode is Mode.LION:
            return 1
        if mode is Mode.DOG:
            return 2 * self.byzantine_tolerance + 1
        return self.byzantine_tolerance + 1

    def client_retransmit_reply_quorum(self, mode: Mode) -> int:
        """Matching replies needed after a client retransmission."""
        return self.byzantine_tolerance + 1

    # -- roles --------------------------------------------------------------------

    def primary_of_view(self, view: int, mode: Mode) -> str:
        """The primary of ``view`` under ``mode`` (Section 5 role functions)."""
        cached = self._primary_cache.get((view, mode))
        if cached is not None:
            return cached
        if view < 0:
            raise ValueError(f"view numbers are non-negative: {view}")
        if mode.has_trusted_primary:
            primary = self.private_replicas[view % self.private_size]
        elif not self.public_replicas:
            raise ValueError("the Peacock mode requires at least one public-cloud replica")
        else:
            primary = self.public_replicas[view % self.public_size]
        self._primary_cache[(view, mode)] = primary
        return primary

    def transferer_of_view(self, view: int) -> str:
        """The trusted transferer that installs Peacock view ``view``."""
        if view < 0:
            raise ValueError(f"view numbers are non-negative: {view}")
        return self.private_replicas[view % self.private_size]

    def proxies_of_view(self, view: int, mode: Mode) -> List[str]:
        """The 3m+1 public-cloud proxies of ``view`` (Dog and Peacock modes).

        A public replica with public-cloud index ``j`` is a proxy when
        ``(j - (v mod P)) mod P <= 3m``, which rotates the proxy set with
        the view and always makes the Peacock primary a proxy.

        The result only depends on ``view mod P``, so it is memoized — every
        vote-validity check consults the proxy set, making this one of the
        hottest calls in the Dog and Peacock modes.  Callers must treat the
        returned list as read-only.
        """
        if not mode.uses_proxies or not self.public_replicas:
            return []
        offset = view % self.public_size
        cached = self._proxy_cache.get(offset)
        if cached is None:
            proxies = [
                replica_id
                for index, replica_id in enumerate(self.public_replicas)
                if (index - offset) % self.public_size <= 3 * self.byzantine_tolerance
            ]
            cached = proxies[: self.proxy_count]
            self._proxy_cache[offset] = cached
        return cached

    def proxy_set_of_view(self, view: int, mode: Mode) -> frozenset:
        """Frozenset of :meth:`proxies_of_view`, memoized for membership tests."""
        if not mode.uses_proxies or not self.public_replicas:
            return frozenset()
        offset = view % self.public_size
        cached = self._proxy_set_cache.get(offset)
        if cached is None:
            cached = frozenset(self.proxies_of_view(view, mode))
            self._proxy_set_cache[offset] = cached
        return cached

    def is_proxy(self, replica_id: str, view: int, mode: Mode) -> bool:
        return replica_id in self.proxy_set_of_view(view, mode)

    def participants(self, view: int, mode: Mode) -> List[str]:
        """Replicas that actively vote in the agreement of ``view``."""
        if mode is Mode.LION:
            return list(self.all_replicas)
        proxies = self.proxies_of_view(view, mode)
        if mode is Mode.DOG:
            return [self.primary_of_view(view, mode)] + proxies
        return proxies

    def passive_replicas(self, view: int, mode: Mode) -> List[str]:
        """Replicas that only learn results via inform messages in ``view``."""
        participants = set(self.participants(view, mode))
        return [replica for replica in self.all_replicas if replica not in participants]

    def receiving_network_size(self, mode: Mode) -> int:
        """Replicas that receive a client request's ordering messages (Table 1)."""
        if mode is Mode.LION:
            return self.minimum_network_size
        return self.proxy_count
