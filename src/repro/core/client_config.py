"""Client-side configuration for each SeeMoRe mode.

The paper's client behaviour differs per mode:

* **Lion** — send to the trusted primary and accept its single signed
  reply; after a timeout, broadcast to all replicas and accept either one
  reply from the private cloud or m+1 matching replies from the public
  cloud.
* **Dog** — send to the trusted primary; accept 2m+1 matching replies from
  the proxies; after a timeout, retransmit to the proxies and accept m+1
  matching replies.
* **Peacock** — send to the untrusted primary; accept m+1 matching replies
  from the proxies (PBFT's rule); retransmission goes to the proxies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.core.config import SeeMoReConfig
from repro.core.modes import Mode
from repro.smr.client import ClientConfig


def _mode_from_id(mode_id: int, fallback: Mode) -> Mode:
    try:
        return Mode(mode_id)
    except ValueError:
        return fallback


def client_config_for_mode(
    config: SeeMoReConfig,
    mode: Mode,
    request_timeout: float = 0.2,
) -> ClientConfig:
    """Build the :class:`~repro.smr.client.ClientConfig` for ``mode``.

    The returned config is *mode aware*: if the deployment later switches
    modes dynamically, the client follows the mode reported in replies and
    applies that mode's reply quorum and primary selection.
    """
    m = config.byzantine_tolerance

    def request_targets(view: int, mode_id: int) -> List[str]:
        current = _mode_from_id(mode_id, mode)
        return [config.primary_of_view(view, current)]

    def retransmit_targets(view: int, mode_id: int) -> List[str]:
        current = _mode_from_id(mode_id, mode)
        if current is Mode.LION:
            return list(config.all_replicas)
        return config.proxies_of_view(view, current)

    replies_by_mode: Dict[int, int] = {
        int(Mode.LION): config.client_reply_quorum(Mode.LION),
        int(Mode.DOG): config.client_reply_quorum(Mode.DOG),
        int(Mode.PEACOCK): config.client_reply_quorum(Mode.PEACOCK),
    }
    trusted_by_mode: Dict[int, FrozenSet[str]] = {
        int(Mode.LION): frozenset(config.private_replicas),
        int(Mode.DOG): frozenset(),
        int(Mode.PEACOCK): frozenset(),
    }

    return ClientConfig(
        request_targets=request_targets,
        replies_needed=config.client_reply_quorum(mode),
        trusted_replicas=trusted_by_mode[int(mode)],
        retransmit_targets=retransmit_targets,
        retransmit_replies_needed=m + 1,
        untrusted_replies_needed=m + 1,
        request_timeout=request_timeout,
        initial_mode=int(mode),
        replies_by_mode=replies_by_mode,
        trusted_by_mode=trusted_by_mode,
    )
