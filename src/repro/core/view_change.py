"""View changes and dynamic mode switching (Sections 5.1-5.4).

The view-change protocol provides liveness: when the primary of the current
view is suspected (a backup's timer expires before a prepared request
commits), replicas stop accepting ordering messages and send ``VIEW-CHANGE``
messages describing their latest stable checkpoint and the requests they
have prepared or committed above it.  A designated *collector* -- the new
primary in the Lion and Dog modes, the trusted *transferer* in the Peacock
mode -- gathers a quorum of them, reconciles the outcome per the rules of
Section 5.1, and installs the new view with a ``NEW-VIEW`` message.

Dynamic mode switching (Section 5.4) rides on the same machinery: a trusted
replica multicasts ``MODE-CHANGE``, every replica starts a view change with
the new mode pending, and the new view is installed under the new mode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.adaptive.evidence import EvidenceKind
from repro.core import messages as msgs
from repro.core.modes import Mode
from repro.smr.messages import Request
from repro.smr.replica import request_digest
from repro.smr.state_machine import Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica

NOOP_CLIENT = "__noop__"


def noop_request(sequence: int) -> Request:
    """The special no-op command filled into sequence holes (Section 5.1)."""
    return Request(
        operation=Operation("noop"), timestamp=sequence, client_id=NOOP_CLIENT, signed=False
    )


class ViewChangeManager:
    """Per-replica view-change and mode-switch state machine."""

    def __init__(self, replica: "SeeMoReReplica") -> None:
        self.replica = replica
        # (target_view, mode) -> sender -> ViewChange message
        self._store: Dict[Tuple[int, int], Dict[str, msgs.ViewChange]] = {}
        self._new_views_sent: set = set()
        self.active_target: Optional[int] = None
        self.pending_mode: Optional[Mode] = None
        self.view_changes_started = 0
        self.view_changes_completed = 0
        self._new_view_timer = replica.create_timer(self._on_new_view_timeout, "new-view-timeout")

    # -- initiating a view change -------------------------------------------------

    def start(self, new_mode: Optional[Mode] = None, target_view: Optional[int] = None) -> None:
        """Suspect the current primary and move toward a new view."""
        replica = self.replica
        if target_view is None:
            target_view = replica.view + 1
            if self.active_target is not None:
                target_view = max(target_view, self.active_target)
        if new_mode is not None:
            self.pending_mode = new_mode
        mode = self.pending_mode or replica.mode

        if self.active_target == target_view and replica.in_view_change:
            return
        self.active_target = target_view
        replica.in_view_change = True
        replica.stop_request_timer()
        replica.batcher.pause()
        self.view_changes_started += 1

        view_change = self.build_view_change_message(target_view, mode)
        self._record(view_change, replica.node_id)
        replica.multicast(replica.other_replicas(), view_change)
        self._new_view_timer.start(replica.config.view_change_timeout)
        self._maybe_build_new_view(target_view, mode)

    def build_view_change_message(self, target_view: int, mode: Mode) -> msgs.ViewChange:
        """Summarise this replica's state for the collector of ``target_view``."""
        replica = self.replica
        checkpoint_seq = replica.checkpoints.stable_sequence
        prepared: List[msgs.PreparedEntry] = []
        committed: List[msgs.PreparedEntry] = []
        for slot in replica.slots.slots_above(checkpoint_seq):
            if slot.digest is None or slot.request is None:
                continue
            entry = msgs.PreparedEntry(
                sequence=slot.sequence, view=slot.view, digest=slot.digest, request=slot.request
            )
            if slot.committed:
                committed.append(entry)
            elif slot.ordering_message is not None:
                prepared.append(entry)
        view_change = msgs.ViewChange(
            new_view=target_view,
            mode=int(mode),
            replica_id=replica.node_id,
            checkpoint_sequence=checkpoint_seq,
            checkpoint_digest=replica.checkpoints.stable_digest,
            prepared=prepared,
            committed=committed,
        )
        view_change.sign(replica.signer)
        return view_change

    # -- handling mode changes ------------------------------------------------------

    def on_mode_change(self, src: str, message: msgs.ModeChange) -> None:
        """Handle a ``MODE-CHANGE`` from a trusted replica (Section 5.4)."""
        replica = self.replica
        if not replica.config.is_trusted(src):
            return
        if not replica.verify_message(src, message):
            return
        try:
            new_mode = Mode(message.new_mode)
        except ValueError:
            return
        if message.new_view <= replica.view:
            return
        self.start(new_mode=new_mode, target_view=message.new_view)

    # -- handling view-change messages ------------------------------------------------

    def on_view_change(self, src: str, message: msgs.ViewChange) -> None:
        replica = self.replica
        if message.new_view <= replica.view:
            return
        if not replica.verify_message(src, message):
            return
        if message.replica_id != src:
            return
        self._record(message, src)

        mode = Mode(message.mode)
        # Join rule: seeing m+1 distinct replicas already moving to a higher
        # view is proof enough that a view change is underway.
        key = (message.new_view, message.mode)
        if not replica.in_view_change or (self.active_target or 0) < message.new_view:
            distinct = len(self._store.get(key, {}))
            if distinct >= replica.config.byzantine_tolerance + 1:
                self.start(new_mode=mode if mode is not replica.mode else None,
                           target_view=message.new_view)
        self._maybe_build_new_view(message.new_view, mode)

    def _record(self, message: msgs.ViewChange, sender: str) -> None:
        key = (message.new_view, message.mode)
        self._store.setdefault(key, {})[sender] = message

    # -- collector: building the new view ------------------------------------------------

    def collector_for(self, target_view: int, mode: Mode) -> str:
        """Who installs ``target_view``: new primary, or transferer in Peacock."""
        config = self.replica.config
        if mode is Mode.PEACOCK:
            return config.transferer_of_view(target_view)
        return config.primary_of_view(target_view, mode)

    def _eligible_senders(self, mode: Mode) -> set:
        """Whose view-change messages count toward the quorum in ``mode``.

        All replicas in the Lion mode; only public-cloud replicas in the Dog
        and Peacock modes, where the paper has the public cloud drive the
        view change (the trusted collector contributes its own knowledge).
        """
        config = self.replica.config
        if mode is Mode.LION:
            return set(config.all_replicas)
        return set(config.public_replicas)

    def _quorum(self, mode: Mode) -> int:
        return self.replica.config.view_change_quorum(mode)

    def _maybe_build_new_view(self, target_view: int, mode: Mode) -> None:
        replica = self.replica
        if replica.node_id != self.collector_for(target_view, mode):
            return
        if (target_view, int(mode)) in self._new_views_sent:
            return
        if target_view <= replica.view:
            return

        key = (target_view, int(mode))
        received = dict(self._store.get(key, {}))
        # The collector always contributes its own local knowledge, even if
        # its own timer never expired.
        if replica.node_id not in received:
            received[replica.node_id] = self.build_view_change_message(target_view, mode)

        eligible_senders = self._eligible_senders(mode) | {replica.node_id}
        eligible = {s: m for s, m in received.items() if s in eligible_senders}
        if len(eligible) < self._quorum(mode):
            return

        new_view = self._build_new_view_message(target_view, mode, list(eligible.values()))
        self._new_views_sent.add(key)
        replica.multicast(replica.other_replicas(), new_view)
        self.enter_new_view(replica.node_id, new_view)

    def _build_new_view_message(
        self, target_view: int, mode: Mode, view_changes: List[msgs.ViewChange]
    ) -> msgs.NewView:
        replica = self.replica
        config = replica.config
        checkpoint_seq = max(vc.checkpoint_sequence for vc in view_changes)

        committed: Dict[int, msgs.PreparedEntry] = {}
        prepared_counts: Dict[Tuple[int, str], int] = {}
        prepared_entries: Dict[Tuple[int, str], msgs.PreparedEntry] = {}
        prepared_views: Dict[Tuple[int, str], int] = {}
        highest = checkpoint_seq
        for view_change in view_changes:
            for entry in view_change.committed:
                if entry.sequence > checkpoint_seq:
                    committed.setdefault(entry.sequence, entry)
                    highest = max(highest, entry.sequence)
            for entry in view_change.prepared:
                if entry.sequence <= checkpoint_seq:
                    continue
                key = (entry.sequence, entry.digest)
                prepared_counts[key] = prepared_counts.get(key, 0) + 1
                prepared_entries.setdefault(key, entry)
                prepared_views[key] = max(prepared_views.get(key, -1), entry.view)
                highest = max(highest, entry.sequence)

        commits: List[msgs.PreparedEntry] = []
        prepares: List[msgs.PreparedEntry] = []
        for sequence in range(checkpoint_seq + 1, highest + 1):
            if sequence in committed:
                commits.append(self._rewrap(committed[sequence], target_view))
                continue
            # Reconciliation rule (Section 5.1): among conflicting prepared
            # entries for a sequence, the one prepared in the *highest* view
            # wins — a later view's assignment supersedes whatever an older
            # (possibly deposed or equivocating) primary handed out.  Vote
            # count breaks ties within a view; the digest keeps the final
            # fallback deterministic across collectors.
            candidates = [
                (prepared_views[key], count, key)
                for key, count in prepared_counts.items()
                if key[0] == sequence
            ]
            if candidates:
                _view, count, key = max(candidates)
                entry = prepared_entries[key]
                if mode is Mode.LION and count >= config.accept_quorum(Mode.LION):
                    commits.append(self._rewrap(entry, target_view))
                else:
                    prepares.append(self._rewrap(entry, target_view))
            else:
                filler = noop_request(sequence)
                prepares.append(
                    msgs.PreparedEntry(
                        sequence=sequence,
                        view=target_view,
                        digest=request_digest(filler),
                        request=filler,
                    )
                )

        new_view = msgs.NewView(
            new_view=target_view,
            mode=int(mode),
            replica_id=replica.node_id,
            checkpoint_sequence=checkpoint_seq,
            prepares=prepares,
            commits=commits,
        )
        new_view.sign(replica.signer)
        return new_view

    @staticmethod
    def _rewrap(entry: msgs.PreparedEntry, target_view: int) -> msgs.PreparedEntry:
        return msgs.PreparedEntry(
            sequence=entry.sequence,
            view=target_view,
            digest=entry.digest,
            request=entry.request,
        )

    # -- installing the new view -----------------------------------------------------------

    def on_new_view(self, src: str, message: msgs.NewView) -> None:
        replica = self.replica
        if message.new_view <= replica.view:
            return
        mode = Mode(message.mode)
        if src != self.collector_for(message.new_view, mode):
            return
        if not replica.verify_message(src, message):
            return
        self.enter_new_view(src, message)

    def enter_new_view(self, src: str, message: msgs.NewView) -> None:
        replica = self.replica
        mode = Mode(message.mode)

        # Evidence for the adaptive controller: a deliberate mode switch is
        # marked as such so the controller's own actions never read as
        # churn; a same-mode view change implicates the deposed primary.
        old_view, old_mode = replica.view, replica.mode
        if mode is not old_mode:
            replica.evidence.record(
                EvidenceKind.VIEW_CHANGE,
                detail="mode-switch",
            )
        else:
            replica.evidence.record(
                EvidenceKind.VIEW_CHANGE,
                suspect=replica.config.primary_of_view(old_view, old_mode),
                detail="suspected-primary",
            )

        # No proposals while the new view is installed: the commits replayed
        # below pump the batcher, and sequence numbers are only safe to hand
        # out again once bump_sequence_counter has run.  on_view_installed
        # (called last) resumes the batcher.
        replica.batcher.pause()
        replica.view = message.new_view
        replica.set_mode(mode)
        replica.in_view_change = False
        self.pending_mode = None
        self.active_target = None
        self._prune_below(message.new_view)
        self._new_view_timer.stop()
        replica.stop_request_timer()
        replica.clear_assignments()
        self.view_changes_completed += 1

        # Catch up if the new view starts from a checkpoint we have not reached.
        if message.checkpoint_sequence > replica.last_executed and src != replica.node_id:
            replica.request_state_transfer(src, message.checkpoint_sequence)

        highest = message.checkpoint_sequence
        for entry in message.commits:
            highest = max(highest, entry.sequence)
            if entry.request is None:
                continue
            slot = replica.prepare_slot(
                entry.sequence, entry.digest, entry.request, None, force=True
            )
            if not slot.committed:
                send_reply = (
                    replica.strategy.replies_to_client(replica)
                    and entry.request.client_id != NOOP_CLIENT
                )
                replica.finalize_commit(slot, send_reply=send_reply)

        for entry in message.prepares:
            highest = max(highest, entry.sequence)
            if entry.request is None:
                continue
            replica.reprocess_prepare_entry(entry)

        replica.bump_sequence_counter(highest + 1)
        replica.on_view_installed()

    def _prune_below(self, installed_view: int) -> None:
        """Garbage-collect view-change state for views ≤ the installed view.

        Both ``_store`` and ``_new_views_sent`` are keyed by
        ``(target_view, mode)``; entries for views at or below the one just
        installed can never produce a new view again (``on_view_change`` and
        ``_maybe_build_new_view`` both refuse ``new_view <= replica.view``),
        so keeping them only leaks memory across the unbounded stream of
        view changes a long-running deployment performs.
        """
        self._store = {
            key: messages for key, messages in self._store.items() if key[0] > installed_view
        }
        self._new_views_sent = {key for key in self._new_views_sent if key[0] > installed_view}

    # -- timeouts ---------------------------------------------------------------------------

    def _on_new_view_timeout(self) -> None:
        """The collector of the target view never produced a new view; escalate."""
        replica = self.replica
        if not replica.in_view_change or self.active_target is None:
            return
        self.start(target_view=self.active_target + 1)

    # -- introspection -------------------------------------------------------------------------

    def pending_view_change_count(self, target_view: int, mode: Mode) -> int:
        return len(self._store.get((target_view, int(mode)), {}))
