"""The Dog mode: trusted primary, untrusted proxies (Section 5.2).

Normal-case flow (Algorithm 2):

1. the client sends its request to the trusted primary;
2. the primary assigns a sequence number and multicasts a signed
   ``PREPARE`` (carrying the request) to *all* replicas -- this is its only
   involvement, which is what off-loads the private cloud;
3. each of the 3m+1 public-cloud *proxies* multicasts a signed ``ACCEPT``
   to the other proxies;
4. a proxy with 2m+1 matching accepts (counting its own) multicasts a
   ``COMMIT`` to the other proxies, sends a signed ``INFORM`` to every
   passive replica (private cloud nodes and non-proxy public nodes),
   executes, and replies to the client;
5. a proxy that instead first gathers m+1 matching commits also commits;
6. passive replicas execute once they hold the primary's prepare plus 2m+1
   matching informs from different proxies.

Sequence numbers still come from the trusted primary, so the Dog mode keeps
the two-phase structure of the Lion mode while moving the quadratic message
exchange into the public cloud.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adaptive.evidence import EvidenceKind
from repro.core import messages as msgs
from repro.core.modes import Mode
from repro.core.strategy_base import ModeStrategy
from repro.smr.replica import request_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica


class DogStrategy(ModeStrategy):
    """Agreement logic of the Dog mode."""

    mode = Mode.DOG

    # -- roles ----------------------------------------------------------------

    def replies_to_client(self, replica: "SeeMoReReplica") -> bool:
        return replica.is_proxy()

    def is_agreement_participant(self, replica: "SeeMoReReplica") -> bool:
        return replica.is_primary() or replica.is_proxy()

    # -- request handling --------------------------------------------------------
    # Client requests funnel through the shared ModeStrategy.on_request path:
    # the primary batches them and proposes via the hook below.  The trusted
    # primary casts no vote of its own — the 3m+1 proxies form the quorum.

    def ordering_message(self, replica, sequence, digest, payload):
        return msgs.Prepare(
            view=replica.view,
            sequence=sequence,
            digest=digest,
            request=payload,
            mode=int(self.mode),
        )

    # -- prepare / accept / commit / inform ----------------------------------------

    def on_prepare(self, replica: "SeeMoReReplica", src: str, message: msgs.Prepare) -> None:
        if not replica.accepts_ordering_from(src, message.view, message.mode):
            return
        if not replica.verify_message(src, message):
            return
        if not replica.in_watermark_window(message.sequence):
            return
        if message.digest != request_digest(message.request):
            return

        # Trusted primary: adopt its assignment even over stale slot content.
        slot = replica.prepare_slot(
            message.sequence, message.digest, message.request, message, force=True
        )
        replica.start_request_timer()
        if not replica.is_proxy():
            # Passive replicas only log the request and wait for informs.
            return

        accept = msgs.Accept(
            view=message.view,
            sequence=message.sequence,
            digest=message.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
            signed=True,
        )
        accept.sign(replica.signer)
        slot.record_vote("accept", replica.node_id, accept, message.digest)
        replica.multicast(replica.other_proxies(), accept)
        self._maybe_commit_from_accepts(replica, slot)

    def on_accept(self, replica: "SeeMoReReplica", src: str, message: msgs.Accept) -> None:
        if not replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        if slot.digest is not None and message.digest != slot.digest:
            # A same-view vote contradicting the trusted primary's prepare
            # can only come from a faulty proxy.
            replica.evidence.record(
                EvidenceKind.CONFLICTING_VOTE,
                suspect=src,
                detail=f"accept seq={message.sequence} view={message.view}",
            )
        slot.record_vote("accept", src, message, message.digest)
        if slot.digest is None or slot.request is None:
            # Still waiting for the primary's prepare; the vote is banked.
            return
        self._maybe_commit_from_accepts(replica, slot)

    def _maybe_commit_from_accepts(self, replica: "SeeMoReReplica", slot) -> None:
        if slot.committed or slot.digest is None or slot.request is None:
            return
        if slot.vote_count("accept") < replica.config.accept_quorum(self.mode):
            return

        commit = msgs.Commit(
            view=replica.view,
            sequence=slot.sequence,
            digest=slot.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
            request=None,
        )
        commit.sign(replica.signer)
        replica.multicast(replica.other_proxies(), commit)
        self._send_informs(replica, slot)
        replica.finalize_commit(slot, send_reply=True)

    def on_commit(self, replica: "SeeMoReReplica", src: str, message: msgs.Commit) -> None:
        if not replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        count = slot.record_vote("commit", src, message, message.digest)
        if slot.committed or slot.request is None or slot.digest != message.digest:
            return
        # A slow proxy catches up from m+1 matching commits by other proxies.
        if count >= replica.config.byzantine_tolerance + 1:
            self._send_informs(replica, slot)
            replica.finalize_commit(slot, send_reply=True)

    def on_inform(self, replica: "SeeMoReReplica", src: str, message: msgs.Inform) -> None:
        if replica.is_proxy():
            return
        if not replica.valid_view(message.view):
            return
        if not replica.is_current_proxy(src):
            return
        if not replica.verify_message(src, message):
            return

        slot = replica.slots.slot(message.sequence)
        count = slot.record_vote("inform", src, message, message.digest)
        if slot.committed or slot.request is None:
            return
        if slot.digest is not None and slot.digest != message.digest:
            replica.evidence.record(
                EvidenceKind.CONFLICTING_VOTE,
                suspect=src,
                detail=f"inform seq={message.sequence} view={message.view}",
            )
            return
        if count >= replica.config.inform_quorum(self.mode):
            replica.finalize_commit(slot, send_reply=False)

    def _send_informs(self, replica: "SeeMoReReplica", slot) -> None:
        inform = msgs.Inform(
            view=replica.view,
            sequence=slot.sequence,
            digest=slot.digest,
            replica_id=replica.node_id,
            mode=int(self.mode),
        )
        inform.sign(replica.signer)
        targets = replica.inform_targets()
        if targets:
            replica.multicast(targets, inform)
