"""Interface implemented by each SeeMoRe operating mode.

A strategy encodes the *agreement* flow of one mode: who orders requests,
who votes, what the quorums are, and who replies to the client.  The
replica (:class:`repro.core.replica.SeeMoReReplica`) owns all state and
delegates message handling to its current strategy; switching modes swaps
the strategy during a view change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.modes import Mode
from repro.core import messages as msgs
from repro.smr.messages import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica


class ModeStrategy:
    """Agreement-phase behaviour of one SeeMoRe mode."""

    mode: Mode

    # -- normal case ---------------------------------------------------------

    def on_request(self, replica: "SeeMoReReplica", src: str, request: Request) -> None:
        """Handle a client request (either direct or a retransmission)."""
        raise NotImplementedError

    def on_prepare(self, replica: "SeeMoReReplica", src: str, message: msgs.Prepare) -> None:
        """Handle the trusted primary's prepare (Lion and Dog modes)."""

    def on_accept(self, replica: "SeeMoReReplica", src: str, message: msgs.Accept) -> None:
        """Handle an accept vote."""

    def on_commit(self, replica: "SeeMoReReplica", src: str, message: msgs.Commit) -> None:
        """Handle a commit message."""

    def on_preprepare(self, replica: "SeeMoReReplica", src: str, message: msgs.PrePrepare) -> None:
        """Handle the untrusted primary's pre-prepare (Peacock mode only)."""

    def on_proxy_prepare(
        self, replica: "SeeMoReReplica", src: str, message: msgs.ProxyPrepare
    ) -> None:
        """Handle a PBFT-style prepare vote among proxies (Peacock mode only)."""

    def on_inform(self, replica: "SeeMoReReplica", src: str, message: msgs.Inform) -> None:
        """Handle an inform message addressed to passive replicas."""

    # -- roles ----------------------------------------------------------------

    def replies_to_client(self, replica: "SeeMoReReplica") -> bool:
        """Whether this replica sends replies to clients when it executes."""
        raise NotImplementedError

    def is_agreement_participant(self, replica: "SeeMoReReplica") -> bool:
        """Whether this replica votes in the agreement phase of the current view."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------

    def handle_retransmission_or_forward(
        self, replica: "SeeMoReReplica", src: str, request: Request
    ) -> bool:
        """Common handling for requests arriving at a non-primary replica.

        A replica that already executed the request re-sends the cached
        reply; otherwise it forwards the request to the primary it believes
        is current and starts its view-change timer so a dead primary is
        eventually suspected (Section 5.1, client behaviour on timeout).

        Returns ``True`` if the request was fully dealt with here.
        """
        if replica.resend_cached_reply(request, mode_id=int(replica.mode)):
            return True
        if not replica.request_is_valid(request):
            return True
        replica.remember_request(request)
        primary = replica.current_primary()
        if primary != replica.node_id:
            replica.send(primary, request)
        replica.start_request_timer()
        return True
