"""Interface implemented by each SeeMoRe operating mode.

A strategy encodes the *agreement* flow of one mode: who orders requests,
who votes, what the quorums are, and who replies to the client.  The
replica (:class:`repro.core.replica.SeeMoReReplica`) owns all state and
delegates message handling to its current strategy; switching modes swaps
the strategy during a view change.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.core.modes import Mode
from repro.core import messages as msgs
from repro.smr.messages import Request
from repro.smr.replica import request_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.replica import SeeMoReReplica
    from repro.smr.slots import Slot


class ModeStrategy:
    """Agreement-phase behaviour of one SeeMoRe mode."""

    mode: Mode

    # -- normal case ---------------------------------------------------------

    def on_request(self, replica: "SeeMoReReplica", src: str, request: Request) -> None:
        """Handle a client request (either direct or a retransmission).

        The primary-side path is shared by all three modes: validate, then
        hand the request to the replica's batcher, which proposes one slot
        per batch through :meth:`propose_payload`.
        """
        if not replica.is_primary():
            self.handle_retransmission_or_forward(replica, src, request)
            return
        if replica.resend_cached_reply(request, mode_id=int(self.mode)):
            return
        if not replica.request_is_valid(request):
            return
        if replica.already_assigned(request):
            return
        if replica.shed_if_overloaded(request):
            return
        replica.batcher.enqueue(request)

    def propose_payload(self, replica: "SeeMoReReplica", payload: Any) -> Optional[int]:
        """Order one slot payload (a request or a batch) as the primary.

        Returns the assigned sequence number, or ``None`` when this replica
        may not propose right now (not the primary — e.g. a demoted primary
        whose batcher pump fires after a view change — view change in
        progress, or watermark window full); the batcher keeps the payload
        queued in that case.
        """
        if not replica.is_primary():
            return None
        sequence = replica.allocate_sequence()
        if sequence is None:
            return None
        digest = request_digest(payload)
        message = self.ordering_message(replica, sequence, digest, payload)
        message.sign(replica.signer)
        slot = replica.prepare_slot(sequence, digest, payload, message)
        self.record_proposal_vote(replica, slot, digest)
        replica.multicast(replica.other_replicas(), message)
        return sequence

    def ordering_message(
        self, replica: "SeeMoReReplica", sequence: int, digest: str, payload: Any
    ) -> msgs.ProtocolMessage:
        """Build the mode's ordering message (``PREPARE`` / ``PRE-PREPARE``)."""
        raise NotImplementedError

    def record_proposal_vote(self, replica: "SeeMoReReplica", slot: "Slot", digest: str) -> None:
        """Count the primary's own proposal toward the slot's first quorum."""

    def on_prepare(self, replica: "SeeMoReReplica", src: str, message: msgs.Prepare) -> None:
        """Handle the trusted primary's prepare (Lion and Dog modes)."""

    def on_accept(self, replica: "SeeMoReReplica", src: str, message: msgs.Accept) -> None:
        """Handle an accept vote."""

    def on_commit(self, replica: "SeeMoReReplica", src: str, message: msgs.Commit) -> None:
        """Handle a commit message."""

    def on_preprepare(self, replica: "SeeMoReReplica", src: str, message: msgs.PrePrepare) -> None:
        """Handle the untrusted primary's pre-prepare (Peacock mode only)."""

    def on_proxy_prepare(
        self, replica: "SeeMoReReplica", src: str, message: msgs.ProxyPrepare
    ) -> None:
        """Handle a PBFT-style prepare vote among proxies (Peacock mode only)."""

    def on_inform(self, replica: "SeeMoReReplica", src: str, message: msgs.Inform) -> None:
        """Handle an inform message addressed to passive replicas."""

    # -- roles ----------------------------------------------------------------

    def replies_to_client(self, replica: "SeeMoReReplica") -> bool:
        """Whether this replica sends replies to clients when it executes."""
        raise NotImplementedError

    def is_agreement_participant(self, replica: "SeeMoReReplica") -> bool:
        """Whether this replica votes in the agreement phase of the current view."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------------

    def handle_retransmission_or_forward(
        self, replica: "SeeMoReReplica", src: str, request: Request
    ) -> bool:
        """Common handling for requests arriving at a non-primary replica.

        A replica that already executed the request re-sends the cached
        reply; otherwise it forwards the request to the primary it believes
        is current and starts its view-change timer so a dead primary is
        eventually suspected (Section 5.1, client behaviour on timeout).

        Returns ``True`` if the request was fully dealt with here.
        """
        if replica.resend_cached_reply(request, mode_id=int(replica.mode)):
            return True
        if not replica.request_is_valid(request):
            return True
        replica.remember_request(request)
        primary = replica.current_primary()
        if primary != replica.node_id:
            replica.send(primary, request)
        replica.start_request_timer()
        return True
