"""SeeMoRe: the paper's primary contribution.

This package implements the hybrid crash/Byzantine state machine
replication protocol of Section 5 in its three modes:

* **Lion** — trusted primary in the private cloud; two communication
  phases, O(n) messages, network 3m+2c+1, quorum 2m+c+1.
* **Dog** — trusted primary, but agreement delegated to 3m+1 *proxies* in
  the public cloud; two phases, O(n²) messages among proxies, quorum 2m+1.
* **Peacock** — untrusted primary; PBFT-style three-phase agreement among
  3m+1 public-cloud proxies, with view changes driven by a trusted
  *transferer* in the private cloud.

plus the checkpointing/state-transfer machinery, per-mode view changes, and
the dynamic mode-switching technique of Section 5.4.
"""

from repro.core.modes import Mode
from repro.core.admission import AdmissionPolicy
from repro.core.batching import Batcher, BatchPolicy
from repro.core.config import SeeMoReConfig
from repro.core.replica import SeeMoReReplica
from repro.core.client_config import client_config_for_mode
from repro.core import messages

__all__ = [
    "Mode",
    "AdmissionPolicy",
    "BatchPolicy",
    "Batcher",
    "SeeMoReConfig",
    "SeeMoReReplica",
    "client_config_for_mode",
    "messages",
]
