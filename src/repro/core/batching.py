"""Request batching and pipelining for the SeeMoRe primary.

The paper's throughput results rely on the primary amortizing the cost of
one agreement round over many client requests.  This module implements that
lever for all three modes:

* :class:`BatchPolicy` — the knobs: how large a batch may grow
  (``max_batch``), how long the primary may wait for a batch to fill
  (``linger``, driven by a simulator timer), how many proposals may be in
  flight at once (``pipeline_depth``), and whether the fill target adapts
  to the observed arrival rate (``adaptive``).
* :class:`Batcher` — the per-primary engine: it buffers validated client
  requests, cuts them into :class:`~repro.smr.messages.Batch` payloads
  according to the policy, and hands each payload to the mode strategy for
  proposal.  A batch of one is proposed as the bare request, so a
  deployment with the default policy behaves exactly like the unbatched
  protocol.

The batcher is deliberately decoupled from the replica: it only needs a
timer factory and a ``propose`` callback, which keeps it unit-testable
(including under Hypothesis) without standing up a replica group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.smr.messages import Batch, Request

ProposeFn = Callable[[Any], Optional[int]]
TimerFactory = Callable[[Callable[[], None]], Any]


@dataclass(frozen=True)
class BatchPolicy:
    """How a primary groups client requests into consensus slots.

    Attributes:
        max_batch: maximum requests per batch.  ``1`` (the default)
            reproduces the unbatched protocol exactly.
        linger: how long (simulated seconds) the primary may hold an
            under-full batch waiting for more requests.  ``0`` proposes
            immediately on arrival.
        pipeline_depth: maximum number of proposed-but-uncommitted slots
            the primary keeps in flight.  ``None`` (the default) leaves
            pipelining bounded only by the watermark window, as in the
            unbatched protocol.  A small bound makes arrival bursts
            accumulate into fuller batches while earlier slots commit.
        adaptive: when true, the effective fill target tracks an
            exponentially weighted moving average of recent batch sizes, so
            a lightly loaded primary stops waiting out the full linger for
            batches that will never fill.
    """

    max_batch: int = 1
    linger: float = 0.0
    pipeline_depth: Optional[int] = None
    adaptive: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {self.max_batch}")
        if self.linger < 0:
            raise ValueError(f"linger cannot be negative: {self.linger}")
        if self.pipeline_depth is not None and self.pipeline_depth < 1:
            raise ValueError(f"pipeline_depth must be at least 1, got {self.pipeline_depth}")

    @property
    def batching_enabled(self) -> bool:
        return self.max_batch > 1 or self.linger > 0 or self.pipeline_depth is not None


class Batcher:
    """Buffers validated requests at the primary and proposes batches.

    The owning replica enqueues every request it would previously have
    proposed directly.  The batcher flushes according to its policy:

    * a batch is cut as soon as the effective fill target is reached;
    * an under-full batch is cut when the linger timer fires;
    * with ``linger == 0`` every arrival flushes immediately;
    * no batch is cut while ``pipeline_depth`` proposals are uncommitted —
      arrivals accumulate until a slot commits.

    Requests stay queued (and are retried) when a proposal is refused, e.g.
    during a view change or when the watermark window is full.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        timer_factory: TimerFactory,
        propose: ProposeFn,
    ) -> None:
        self.policy = policy
        self._propose = propose
        self._queue: List[Request] = []
        self._queued_keys: set = set()
        self._in_flight: set = set()
        self._paused = False
        self._linger_timer = timer_factory(self._on_linger)
        self._ewma_fill: float = float(policy.max_batch)
        # Telemetry consumed by benchmarks and the metrics collector.
        self.batches_proposed = 0
        self.requests_enqueued = 0
        self.proposed_batch_sizes: List[int] = []

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        """Requests buffered but not yet proposed."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Proposals awaiting commit."""
        return len(self._in_flight)

    def queued_requests(self) -> List[Request]:
        return list(self._queue)

    def mean_batch_size(self) -> float:
        if not self.proposed_batch_sizes:
            return 0.0
        return sum(self.proposed_batch_sizes) / len(self.proposed_batch_sizes)

    # -- intake --------------------------------------------------------------

    def enqueue(self, request: Request) -> bool:
        """Buffer one validated request; returns False for duplicates.

        A duplicate (a client retransmission of something still queued)
        also pumps: after a refused flush it is the retry trigger that
        keeps the queue moving.
        """
        key = (request.client_id, request.timestamp)
        if key in self._queued_keys:
            self._pump()
            return False
        self._queue.append(request)
        self._queued_keys.add(key)
        self.requests_enqueued += 1
        self._pump()
        return True

    # -- lifecycle hooks from the replica -----------------------------------

    def pump(self) -> None:
        """Retry flushing; the replica calls this whenever proposal room may
        have opened up (commits, checkpoint stabilization, new view)."""
        self._pump()

    def pause(self) -> None:
        """Suspend flushing while a new view is being installed.

        Commits replayed from a NEW-VIEW message fire :meth:`on_slot_committed`
        mid-installation; proposing then would race the re-proposal loop
        (and, on a demoted primary, sign ordering messages it has no right
        to send).  Enqueues still buffer; :meth:`resume` pumps them.
        """
        self._paused = True
        self._linger_timer.stop()

    def resume(self) -> None:
        """Lift :meth:`pause` and flush whatever accumulated."""
        self._paused = False
        self._pump()

    def on_slot_committed(self, sequence: int) -> None:
        """A slot committed: free its pipeline slot (if ours) and retry —
        any commit can unblock a proposal that was refused earlier."""
        self._in_flight.discard(sequence)
        self._pump()

    def forget_in_flight_below(self, sequence: int) -> None:
        """Drop in-flight tracking for slots at or below ``sequence``.

        Used after a state-transfer snapshot adoption: those slots committed
        (elsewhere) without this batcher ever seeing the commit, and leaking
        them would permanently shrink a bounded pipeline.
        """
        self._in_flight = {seq for seq in self._in_flight if seq > sequence}
        self._pump()

    def reset_in_flight(self) -> None:
        """Forget proposals from an abandoned view (new-view re-proposes them)."""
        self._in_flight.clear()

    def adopt_in_flight(self, sequences) -> None:
        """Count already-proposed uncommitted slots against the pipeline bound.

        A new primary inherits the slots the NEW-VIEW message re-proposed
        (they bypassed this batcher); without adopting them, ``pipeline_depth``
        would be exceeded by fresh proposals on top of the inherited ones.
        """
        self._in_flight.update(sequences)

    def drain(self) -> List[Request]:
        """Remove and return everything buffered (view/mode change hand-off)."""
        self._linger_timer.stop()
        drained = self._queue
        self._queue = []
        self._queued_keys.clear()
        return drained

    # -- flushing ------------------------------------------------------------

    def _effective_target(self) -> int:
        if not self.policy.adaptive:
            return self.policy.max_batch
        return max(1, min(self.policy.max_batch, round(self._ewma_fill)))

    def _pipeline_open(self) -> bool:
        depth = self.policy.pipeline_depth
        return depth is None or len(self._in_flight) < depth

    def _pump(self) -> None:
        """Flush as many batches as the policy currently allows."""
        if self._paused:
            return
        while self._queue and self._pipeline_open():
            ready = len(self._queue) >= self._effective_target() or self.policy.linger == 0
            if not ready:
                if not self._linger_timer.active:
                    self._linger_timer.start(self.policy.linger)
                return
            if not self._flush_one():
                return
        if not self._queue:
            self._linger_timer.stop()

    def _on_linger(self) -> None:
        """The linger window closed: propose whatever has accumulated."""
        if self._paused:
            return
        while self._queue and self._pipeline_open():
            if not self._flush_one():
                return

    def _flush_one(self) -> bool:
        count = min(len(self._queue), self.policy.max_batch)
        requests = self._queue[:count]
        payload: Any = requests[0] if count == 1 else Batch(requests=list(requests))
        sequence = self._propose(payload)
        if sequence is None:
            # Proposal refused (view change / watermark); keep everything
            # queued and let a later pump or the client's retransmission
            # drive progress.
            return False
        del self._queue[:count]
        for request in requests:
            self._queued_keys.discard((request.client_id, request.timestamp))
        self._in_flight.add(sequence)
        self.batches_proposed += 1
        self.proposed_batch_sizes.append(count)
        if self.policy.adaptive:
            self._ewma_fill = 0.75 * self._ewma_fill + 0.25 * count
        return True


__all__ = ["BatchPolicy", "Batcher"]
