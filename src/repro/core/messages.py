"""SeeMoRe protocol messages (Section 5, Algorithms 1 and 2).

Message flavours and who signs what follow the paper:

* ``PREPARE`` / ``COMMIT`` in the Lion and Dog modes are signed by the
  trusted primary (they may later serve as proofs during view changes) and
  carry the client request so lagging replicas can still execute.
* ``ACCEPT`` is unsigned in the Lion mode (it only flows back to the
  trusted primary) but signed in the Dog mode (proxies use it as evidence).
* the Peacock mode reuses PBFT's ``PRE-PREPARE`` / ``PREPARE`` / ``COMMIT``
  phases among proxies, all signed.
* ``INFORM`` messages notify passive replicas of committed requests.
* ``CHECKPOINT``, ``VIEW-CHANGE``, ``NEW-VIEW``, and ``MODE-CHANGE`` drive
  state transfer, liveness, and dynamic mode switching.

Ordering messages carry one slot *payload*: either a bare client
:class:`~repro.smr.messages.Request` or a :class:`~repro.smr.messages.Batch`
of them (PBFT-style batching; see :mod:`repro.core.batching`).  The digest
in every ordering/vote message covers the whole payload, so agreement,
view changes, and safety checks treat a batch exactly like one request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.smr.messages import (
    Batch,
    ProtocolMessage,
    Request,
    requests_of,
    _DIGEST_BYTES,
    _HEADER_BYTES,
    _SIGNATURE_BYTES,
)
from repro.wire.primitives import (
    TAG_ACCEPT,
    TAG_CHECKPOINT,
    TAG_COMMIT,
    TAG_INFORM,
    TAG_PREPARE,
    TAG_PREPREPARE,
    TAG_PROXY_PREPARE,
    encode_attributed_vote,
    encode_checkpoint,
    encode_vote,
)


@dataclass(init=False)
class Prepare(ProtocolMessage):
    """``<<PREPARE, v, n, d>_p, µ>`` from the trusted primary (Lion/Dog)."""

    view: int
    sequence: int
    digest: str
    request: Any  # the slot payload: a Request or a Batch
    mode: int
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        request: Any,
        mode: int,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        # Hot constructor: bulk-populating the instance dict skips the
        # per-field ``__setattr__`` cache guard (no caches can exist yet).
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "request": request,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PREPARE",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_vote(TAG_PREPARE, self.view, self.sequence, self.mode, self.digest)

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES + self.request.cached_wire_size()


@dataclass(init=False)
class Accept(ProtocolMessage):
    """``<ACCEPT, v, n, d, r>`` — unsigned to a trusted primary, signed among proxies."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    mode: int
    signed: bool = False
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        replica_id: str,
        mode: int,
        signed: bool = False,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "replica_id": replica_id,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "ACCEPT",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_attributed_vote(
            TAG_ACCEPT, self.view, self.sequence, self.mode, self.digest, self.replica_id
        )

    def wire_size(self) -> int:
        size = _HEADER_BYTES + _DIGEST_BYTES
        return size + (_SIGNATURE_BYTES if self.signed else 0)


@dataclass(init=False)
class Commit(ProtocolMessage):
    """``<<COMMIT, v, n, d>, µ>`` — primary's commit (Lion) or proxy commit (Dog)."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    mode: int
    request: Optional[Any] = None  # payload carried to lagging replicas (Lion)
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        replica_id: str,
        mode: int,
        request: Optional[Any] = None,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "replica_id": replica_id,
            "mode": mode,
            "request": request,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "COMMIT",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_attributed_vote(
            TAG_COMMIT, self.view, self.sequence, self.mode, self.digest, self.replica_id
        )

    def wire_size(self) -> int:
        size = _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES
        if self.request is not None:
            size += self.request.cached_wire_size()
        return size


@dataclass(init=False)
class PrePrepare(ProtocolMessage):
    """``<<PRE-PREPARE, v, n, d>_p, µ>`` from the untrusted Peacock primary."""

    view: int
    sequence: int
    digest: str
    request: Any  # the slot payload: a Request or a Batch
    mode: int
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        request: Any,
        mode: int,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "request": request,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PRE-PREPARE",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_vote(TAG_PREPREPARE, self.view, self.sequence, self.mode, self.digest)

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES + self.request.cached_wire_size()


@dataclass(init=False)
class ProxyPrepare(ProtocolMessage):
    """PBFT-style ``PREPARE`` vote exchanged among Peacock proxies."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    mode: int
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        replica_id: str,
        mode: int,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "replica_id": replica_id,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PROXY-PREPARE",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_attributed_vote(
            TAG_PROXY_PREPARE, self.view, self.sequence, self.mode, self.digest, self.replica_id
        )

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


@dataclass(init=False)
class Inform(ProtocolMessage):
    """``<INFORM, v, n, d, r>_r`` — proxies notify passive replicas of a commit."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    mode: int
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        view: int,
        sequence: int,
        digest: str,
        replica_id: str,
        mode: int,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "view": view,
            "sequence": sequence,
            "digest": digest,
            "replica_id": replica_id,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "INFORM",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_attributed_vote(
            TAG_INFORM, self.view, self.sequence, self.mode, self.digest, self.replica_id
        )

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


@dataclass(init=False)
class Checkpoint(ProtocolMessage):
    """``<CHECKPOINT, n, d>_r`` — periodic state digest for garbage collection."""

    sequence: int
    state_digest: str
    replica_id: str
    mode: int
    signed: bool = True
    signature: Optional[Any] = None

    def __init__(
        self,
        sequence: int,
        state_digest: str,
        replica_id: str,
        mode: int,
        signed: bool = True,
        signature: Optional[Any] = None,
    ) -> None:
        self.__dict__.update({
            "sequence": sequence,
            "state_digest": state_digest,
            "replica_id": replica_id,
            "mode": mode,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "CHECKPOINT",
            "sequence": self.sequence,
            "state_digest": self.state_digest,
            "replica": self.replica_id,
            "mode": self.mode,
        }

    def signing_bytes(self) -> bytes:
        return encode_checkpoint(self.sequence, self.mode, self.state_digest, self.replica_id)

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


@dataclass
class PreparedEntry:
    """A per-sequence entry carried inside view-change and new-view messages.

    The ``request`` field holds the slot's whole payload — a bare request or
    a batch — so a new view re-proposes uncommitted batches intact.
    """

    sequence: int
    view: int
    digest: str
    request: Optional[Any] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"sequence": self.sequence, "view": self.view, "digest": self.digest}

    def wire_size(self) -> int:
        size = 24 + _DIGEST_BYTES
        if self.request is not None:
            size += self.request.cached_wire_size()
        return size


@dataclass
class ViewChange(ProtocolMessage):
    """``<VIEW-CHANGE, v+1, n, ξ, P, C>`` sent when the primary is suspected."""

    new_view: int
    mode: int
    replica_id: str
    checkpoint_sequence: int
    checkpoint_digest: str
    prepared: List[PreparedEntry] = field(default_factory=list)
    committed: List[PreparedEntry] = field(default_factory=list)
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "VIEW-CHANGE",
            "new_view": self.new_view,
            "mode": self.mode,
            "replica": self.replica_id,
            "checkpoint_sequence": self.checkpoint_sequence,
            "checkpoint_digest": self.checkpoint_digest,
            "prepared": [entry.to_wire() for entry in self.prepared],
            "committed": [entry.to_wire() for entry in self.committed],
        }

    def wire_size(self) -> int:
        entries = self.prepared + self.committed
        return (
            _HEADER_BYTES
            + _SIGNATURE_BYTES
            + _DIGEST_BYTES
            + sum(entry.wire_size() for entry in entries)
        )


@dataclass
class NewView(ProtocolMessage):
    """``<NEW-VIEW, v+1, P', C'>`` from the new primary (or the transferer)."""

    new_view: int
    mode: int
    replica_id: str
    checkpoint_sequence: int
    prepares: List[PreparedEntry] = field(default_factory=list)
    commits: List[PreparedEntry] = field(default_factory=list)
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "NEW-VIEW",
            "new_view": self.new_view,
            "mode": self.mode,
            "replica": self.replica_id,
            "checkpoint_sequence": self.checkpoint_sequence,
            "prepares": [entry.to_wire() for entry in self.prepares],
            "commits": [entry.to_wire() for entry in self.commits],
        }

    def wire_size(self) -> int:
        entries = self.prepares + self.commits
        return (
            _HEADER_BYTES
            + _SIGNATURE_BYTES
            + sum(entry.wire_size() for entry in entries)
        )


@dataclass
class ModeChange(ProtocolMessage):
    """``<MODE-CHANGE, v+1, pi'>_s`` from a trusted replica (Section 5.4)."""

    new_view: int
    new_mode: int
    replica_id: str
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "MODE-CHANGE",
            "new_view": self.new_view,
            "new_mode": self.new_mode,
            "replica": self.replica_id,
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES


@dataclass
class StateTransferRequest(ProtocolMessage):
    """A lagging replica asks a peer for the state at its stable checkpoint."""

    replica_id: str
    known_sequence: int
    signed: bool = False
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "STATE-TRANSFER-REQUEST",
            "replica": self.replica_id,
            "known_sequence": self.known_sequence,
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES


@dataclass
class StateTransferResponse(ProtocolMessage):
    """Checkpointed application state shipped to a lagging replica."""

    replica_id: str
    checkpoint_sequence: int
    state_digest: str
    snapshot: Dict[str, Any] = field(default_factory=dict)
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "STATE-TRANSFER-RESPONSE",
            "replica": self.replica_id,
            "checkpoint_sequence": self.checkpoint_sequence,
            "state_digest": self.state_digest,
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES + 1024


__all__ = [
    "Batch",
    "requests_of",
    "Prepare",
    "Accept",
    "Commit",
    "PrePrepare",
    "ProxyPrepare",
    "Inform",
    "Checkpoint",
    "PreparedEntry",
    "ViewChange",
    "NewView",
    "ModeChange",
    "StateTransferRequest",
    "StateTransferResponse",
]
