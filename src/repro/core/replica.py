"""The SeeMoRe replica engine.

A :class:`SeeMoReReplica` glues together:

* the shared SMR machinery (:class:`repro.smr.replica.ReplicaBase`):
  ordered execution, ledger, slots, client replies;
* the per-mode agreement strategies (Lion / Dog / Peacock);
* checkpointing and garbage collection;
* the view-change / mode-switch manager.

The replica itself is sans-IO with respect to time: all waiting is expressed
through the runtime's timers, and all communication goes through the node's
transport interface, so the same code runs under any latency/fault scenario
the experiment harness sets up — and under either runtime backend (the
deterministic simulator or the asyncio-TCP runtime).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.adaptive.evidence import EvidenceKind
from repro.core import messages as msgs
from repro.core.batching import Batcher
from repro.core.checkpointing import CheckpointManager
from repro.core.config import SeeMoReConfig
from repro.core.dog import DogStrategy
from repro.core.lion import LionStrategy
from repro.core.modes import Mode
from repro.core.peacock import PeacockStrategy
from repro.core.strategy_base import ModeStrategy
from repro.core.view_change import NOOP_CLIENT, ViewChangeManager
from repro.crypto.digest import digest
from repro.crypto.signatures import Signer, Verifier
from repro.net.costs import NodeCostModel
from repro.smr.executor import ExecutionResult
from repro.smr.messages import Busy, Request, requests_of
from repro.smr.replica import ReplicaBase
from repro.smr.slots import Slot
from repro.smr.state_machine import StateMachine

_STRATEGIES: Dict[Mode, ModeStrategy] = {
    Mode.LION: LionStrategy(),
    Mode.DOG: DogStrategy(),
    Mode.PEACOCK: PeacockStrategy(),
}


class SeeMoReReplica(ReplicaBase):
    """One replica of a SeeMoRe replica group."""

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        config: SeeMoReConfig,
        signer: Signer,
        verifier: Verifier,
        state_machine: StateMachine,
        initial_mode: Mode = Mode.LION,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        if node_id not in config.all_replicas:
            raise ValueError(f"replica {node_id!r} is not part of the configuration")
        super().__init__(node_id, runtime, signer, verifier, state_machine, cost_model)
        self.config = config
        self.mode = initial_mode
        self.strategy = _STRATEGIES[initial_mode]
        self.in_view_change = False
        self.next_sequence = 1
        self.watermark_window = 4 * config.checkpoint_period

        self.checkpoints = CheckpointManager(config.checkpoint_period)
        # The hook fires mid-drain, so the digest covers exactly the state at
        # the boundary even when one commit fills a gap and several buffered
        # sequences execute at once (routine under pipelining); digesting at
        # the drain frontier instead would diverge across replicas and keep
        # Peacock checkpoints from ever reaching a matching quorum.
        self.executor.set_checkpoint_hook(config.checkpoint_period, self._take_checkpoint)
        self.view_changes = ViewChangeManager(self)
        self.batcher = Batcher(
            config.batch_policy,
            timer_factory=lambda callback: self.create_timer(callback, "batch-linger"),
            propose=self._propose_payload,
        )
        self._assigned_sequences: Dict[tuple, int] = {}
        self._assignment_generation = 0
        self.busy_rejects_sent = 0
        self._request_timer = self.create_timer(self._on_request_timeout, "request-timeout")

        # Catch-up (state transfer) bookkeeping: a replica that falls far
        # behind the commit frontier fetches a checkpointed snapshot from its
        # peers instead of waiting for messages it will never receive again.
        self._catchup_target = 0
        self._catchup_requested_at = -1.0
        self._catchup_votes: Dict[tuple, set] = {}
        self.state_transfers_completed = 0

        # Multicast target lists, rebuilt lazily per (view, mode): the
        # membership is fixed for a run, so the per-message list/set
        # comprehensions are pure overhead on the commit path.
        self._other_replicas: Optional[List[str]] = None
        self._other_proxies_cache: Dict[tuple, List[str]] = {}
        self._inform_targets_cache: Dict[tuple, List[str]] = {}

        self._register_handlers()

    def _register_handlers(self) -> None:
        self.register_handler(Request, lambda src, m: self.strategy.on_request(self, src, m))
        self.register_handler(msgs.Prepare, lambda src, m: self.strategy.on_prepare(self, src, m))
        self.register_handler(msgs.Accept, lambda src, m: self.strategy.on_accept(self, src, m))
        self.register_handler(msgs.Commit, lambda src, m: self.strategy.on_commit(self, src, m))
        self.register_handler(
            msgs.PrePrepare, lambda src, m: self.strategy.on_preprepare(self, src, m)
        )
        self.register_handler(
            msgs.ProxyPrepare, lambda src, m: self.strategy.on_proxy_prepare(self, src, m)
        )
        self.register_handler(msgs.Inform, lambda src, m: self.strategy.on_inform(self, src, m))
        self.register_handler(msgs.Checkpoint, self._on_checkpoint)
        self.register_handler(msgs.ViewChange, self.view_changes.on_view_change)
        self.register_handler(msgs.NewView, self.view_changes.on_new_view)
        self.register_handler(msgs.ModeChange, self.view_changes.on_mode_change)
        self.register_handler(msgs.StateTransferRequest, self._on_state_transfer_request)
        self.register_handler(msgs.StateTransferResponse, self._on_state_transfer_response)

    # -- roles ------------------------------------------------------------------

    def current_primary(self) -> str:
        return self.config.primary_of_view(self.view, self.mode)

    def is_primary(self) -> bool:
        return not self.in_view_change and self.current_primary() == self.node_id

    def current_proxies(self) -> List[str]:
        return self.config.proxies_of_view(self.view, self.mode)

    def is_current_proxy(self, node_id: str) -> bool:
        """Membership test against the current proxy set (memoized frozenset)."""
        return node_id in self.config.proxy_set_of_view(self.view, self.mode)

    def is_proxy(self) -> bool:
        if self.mode is Mode.LION:
            return False
        return self.is_current_proxy(self.node_id)

    def other_replicas(self) -> List[str]:
        # Static per node (membership never changes mid-run); every
        # protocol multicast asks for this list, so build it once.
        # Callers treat the returned list as read-only.
        cached = self._other_replicas
        if cached is None:
            cached = self._other_replicas = [
                replica for replica in self.config.all_replicas if replica != self.node_id
            ]
        return cached

    def other_proxies(self) -> List[str]:
        key = (self.view, self.mode)
        cached = self._other_proxies_cache.get(key)
        if cached is None:
            cached = self._other_proxies_cache[key] = [
                proxy for proxy in self.current_proxies() if proxy != self.node_id
            ]
        return cached

    def passive_replicas(self) -> List[str]:
        passive = self.config.passive_replicas(self.view, self.mode)
        return [replica for replica in passive if replica != self.node_id]

    def inform_targets(self) -> List[str]:
        """Recipients of inform messages: the private cloud plus non-proxy
        public replicas (Section 5.2/5.3), excluding the sender itself.

        Cached per ``(view, mode)`` — a Dog/Peacock proxy recomputes this
        set once per committed batch otherwise.  Callers treat the returned
        list as read-only.
        """
        key = (self.view, self.mode)
        cached = self._inform_targets_cache.get(key)
        if cached is None:
            proxies = set(self.current_proxies())
            cached = self._inform_targets_cache[key] = [
                replica
                for replica in self.config.all_replicas
                if replica not in proxies and replica != self.node_id
            ]
        return cached

    def set_mode(self, mode: Mode) -> None:
        """Adopt ``mode`` (called when a new view is installed)."""
        self.mode = mode
        self.strategy = _STRATEGIES[mode]

    # -- validation helpers ------------------------------------------------------

    def valid_view(self, view: int) -> bool:
        return view == self.view and not self.in_view_change

    def accepts_ordering_from(self, src: str, view: int, mode: int) -> bool:
        """Whether an ordering message (prepare / pre-prepare / primary commit)
        from ``src`` for ``view`` should be processed right now."""
        if not self.valid_view(view):
            return False
        if mode != int(self.mode):
            return False
        return src == self.config.primary_of_view(view, self.mode)

    def in_watermark_window(self, sequence: int) -> bool:
        low = self.slots.low_watermark
        return low < sequence <= low + self.watermark_window

    # -- sequence assignment (primary only) -----------------------------------------

    def allocate_sequence(self) -> Optional[int]:
        if self.in_view_change:
            return None
        candidate = self.next_sequence
        if candidate > self.slots.low_watermark + self.watermark_window:
            return None
        self.next_sequence += 1
        return candidate

    def bump_sequence_counter(self, value: int) -> None:
        self.next_sequence = max(self.next_sequence, value, self.last_executed + 1)

    def already_assigned(self, request: Request) -> bool:
        return (request.client_id, request.timestamp) in self._assigned_sequences

    def shed_if_overloaded(self, request: Request) -> bool:
        """Admission control at the primary: reject ``request`` if saturated.

        Returns ``True`` when the request was shed (a signed ``Busy`` went
        back to the client) and must not be enqueued.  With no admission
        policy configured — the paper's closed-loop setting — this is a
        single ``None`` check on the hot path.
        """
        policy = self.config.admission
        if policy is None:
            return False
        queued = self.batcher.queued
        in_flight = self.batcher.in_flight
        if not policy.should_shed(queued, in_flight):
            return False
        busy = Busy(
            mode=int(self.mode),
            view=self.view,
            timestamp=request.timestamp,
            client_id=request.client_id,
            replica_id=self.node_id,
            queue_depth=queued + in_flight,
        )
        busy.sign(self.signer)
        self.send(request.client_id, busy)
        self.busy_rejects_sent += 1
        return True

    def mark_assigned(self, payload: Any, sequence: int) -> None:
        """Record the sequence assignment of every request in ``payload``."""
        for request in requests_of(payload):
            self._assigned_sequences[(request.client_id, request.timestamp)] = sequence

    def clear_assignments(self) -> None:
        self._assigned_sequences.clear()
        # Invalidate every slot's "already bookkept" stamp: re-proposed
        # payloads must re-record their assignments in the new view.
        self._assignment_generation += 1

    def prune_assignments(self, watermark: int) -> None:
        """Drop assignment records for garbage-collected slots.

        Every replica records assignments when it fills a slot, so checkpoint
        GC must prune them or they grow without bound; retransmissions of
        pruned requests are answered from the executor's reply cache.
        """
        self._assigned_sequences = {
            key: sequence
            for key, sequence in self._assigned_sequences.items()
            if sequence > watermark
        }

    def _propose_payload(self, payload: Any) -> Optional[int]:
        """Batcher callback: propose one slot payload in the current mode."""
        return self.strategy.propose_payload(self, payload)

    # -- slots and commits -------------------------------------------------------------

    def prepare_slot(
        self,
        sequence: int,
        digest_value: str,
        request: Request,
        ordering_message: Any,
        force: bool = False,
    ) -> Slot:
        """Fill in a slot's request/digest and remember the request.

        With ``force=True`` an *uncommitted* slot is overwritten even if it
        already holds a different request -- used when installing a new view,
        whose certified entries supersede whatever this replica tentatively
        accepted from a (possibly equivocating) primary in the old view.
        """
        slot = self.slots.slot(sequence)
        stale = slot.digest is not None and slot.digest != digest_value
        if force and not slot.committed and stale:
            slot.digest = None
            slot.request = None
            slot.ordering_message = None
            slot.votes.clear()
            # The superseding payload must be re-walked below even within
            # the same assignment generation — the old payload's entries
            # are stale now.
            slot.bookkept_generation = -1
        if slot.digest is None:
            slot.digest = digest_value
        if slot.request is None:
            slot.request = request
        if ordering_message is not None and slot.ordering_message is None:
            slot.ordering_message = ordering_message
        slot.view = self.view
        # One pass over the payload records both the known-request entry and
        # the sequence assignment (same key).  Assignments must be recorded
        # on every path that fills a slot — including new-view re-proposals,
        # which run *after* clear_assignments().  Without this, a client
        # retransmission arriving at the new primary while its re-proposed
        # slot is still uncommitted would be assigned a second sequence
        # number.  A slot whose payload object was already walked in the
        # current assignment generation (e.g. the commit that follows the
        # prepare carries the same batch) skips the walk — the writes would
        # be byte-identical.
        generation = self._assignment_generation
        if slot.request is not request or slot.bookkept_generation != generation:
            known = self._known_requests
            assigned = self._assigned_sequences
            for inner in requests_of(request):
                key = (inner.client_id, inner.timestamp)
                known[key] = inner
                assigned[key] = sequence
            slot.bookkept_generation = generation
        return slot

    def finalize_commit(self, slot: Slot, send_reply: bool) -> List[ExecutionResult]:
        """Commit a slot, execute what became ready, checkpoint, manage timers."""
        if slot.request is None or slot.committed:
            return []
        reply = send_reply and slot.request.client_id != NOOP_CLIENT
        executions = self.commit_slot(
            slot.sequence, slot.request, self.view, send_reply=reply, mode_id=int(self.mode)
        )
        self.batcher.on_slot_committed(slot.sequence)
        self._update_request_timer()
        self._maybe_request_catchup(slot.sequence)
        return executions

    # -- checkpointing -------------------------------------------------------------------

    def _state_digest(self) -> str:
        return digest(
            {
                "next_sequence": self.executor.next_sequence,
                "state": self.executor.state_machine.snapshot(),
            }
        )

    def _take_checkpoint(self, sequence: int) -> None:
        """Executor hook: execution just crossed checkpoint boundary ``sequence``."""
        state_digest = self._state_digest()
        self.checkpoints.record_local_checkpoint(
            sequence, state_digest, self.executor.snapshot()
        )
        checkpoint = msgs.Checkpoint(
            sequence=sequence,
            state_digest=state_digest,
            replica_id=self.node_id,
            mode=int(self.mode),
        )
        checkpoint.sign(self.signer)
        if self.mode.has_trusted_primary:
            # The trusted primary's signed checkpoint alone is a certificate.
            if self.is_primary():
                self.multicast(self.other_replicas(), checkpoint)
                self._stabilise_checkpoint(sequence, state_digest)
        else:
            # Peacock: PBFT-style quorum of proxy checkpoints.
            if self.is_proxy():
                self.checkpoints.record_vote(sequence, state_digest, self.node_id)
                self.multicast(self.other_replicas(), checkpoint)
                self._maybe_stabilise_by_votes(sequence, state_digest)

    def _on_checkpoint(self, src: str, message: msgs.Checkpoint) -> None:
        if not self.verify_message(src, message):
            return
        if message.replica_id != src:
            return
        if self.mode.has_trusted_primary or Mode(message.mode).has_trusted_primary:
            if self.config.is_trusted(src):
                self._stabilise_checkpoint(message.sequence, message.state_digest)
            return
        if src in self.config.public_replicas:
            self.checkpoints.record_vote(message.sequence, message.state_digest, src)
            self._maybe_stabilise_by_votes(message.sequence, message.state_digest)

    def _maybe_stabilise_by_votes(self, sequence: int, state_digest: str) -> None:
        votes = self.checkpoints.vote_count(sequence, state_digest)
        if votes >= 2 * self.config.byzantine_tolerance + 1:
            self._stabilise_checkpoint(sequence, state_digest)

    def _stabilise_checkpoint(self, sequence: int, state_digest: str) -> None:
        if not self.checkpoints.mark_stable(sequence, state_digest):
            return
        self.slots.collect_below(sequence)
        self.executor.discard_below(sequence)
        self.prune_assignments(sequence)
        # The advanced low watermark may re-open the sequence window for
        # proposals the batcher had to refuse earlier.
        self.batcher.pump()

    # -- request timer and view changes ------------------------------------------------------

    def start_request_timer(self) -> None:
        if not self._request_timer.active:
            self._request_timer.start(self.config.request_timeout)

    def stop_request_timer(self) -> None:
        self._request_timer.stop()

    def _update_request_timer(self) -> None:
        """Stop the timer when nothing is in flight, else re-arm it."""
        if self.slots.has_pending_proposal():
            self._request_timer.restart(self.config.request_timeout)
        else:
            self._request_timer.stop()

    def _on_request_timeout(self) -> None:
        if self.crashed or self.in_view_change:
            return
        self.evidence.record(
            EvidenceKind.TIMEOUT, suspect=self.current_primary(), detail=f"view={self.view}"
        )
        self.view_changes.start()

    def on_view_installed(self) -> None:
        """Re-home requests the batcher buffered across the view/mode change.

        Proposals from the old view are forgotten (the new-view message
        already re-proposed every uncommitted batch).  Requests that were
        still waiting in the batch buffer either re-enter the new primary's
        batcher or are forwarded to it, so a mode switch mid-batch loses
        nothing; the executor's reply cache keeps re-proposals exactly-once.
        """
        batcher = self.batcher
        batcher.reset_in_flight()
        if self.is_primary():
            batcher.adopt_in_flight(
                slot.sequence
                for slot in self.slots.uncommitted_slots()
                if slot.request is not None
            )
        pending = batcher.drain()
        forward_to = None if self.is_primary() else self.current_primary()
        for request in pending:
            if self.resend_cached_reply(request, mode_id=int(self.mode)):
                continue
            if forward_to is None:
                if not self.already_assigned(request):
                    batcher.enqueue(request)
            else:
                self.send(forward_to, request)
        if forward_to is not None and pending:
            self.start_request_timer()
        batcher.resume()

    # -- view-change helpers used by the manager -------------------------------------------------

    def reprocess_prepare_entry(self, entry: msgs.PreparedEntry) -> None:
        """Re-run agreement for a prepared-but-uncommitted slot in the new view."""
        slot = self.prepare_slot(entry.sequence, entry.digest, entry.request, entry, force=True)
        if slot.committed:
            return
        if self.mode is Mode.LION:
            if self.is_primary():
                slot.record_vote("accept", self.node_id, None, entry.digest)
            else:
                accept = msgs.Accept(
                    view=self.view,
                    sequence=entry.sequence,
                    digest=entry.digest,
                    replica_id=self.node_id,
                    mode=int(self.mode),
                    signed=False,
                )
                self.send(self.current_primary(), accept)
        elif self.mode is Mode.DOG:
            if self.is_proxy():
                accept = msgs.Accept(
                    view=self.view,
                    sequence=entry.sequence,
                    digest=entry.digest,
                    replica_id=self.node_id,
                    mode=int(self.mode),
                    signed=True,
                )
                accept.sign(self.signer)
                slot.record_vote("accept", self.node_id, accept, entry.digest)
                self.multicast(self.other_proxies(), accept)
        else:  # Peacock
            if self.is_proxy():
                prepare = msgs.ProxyPrepare(
                    view=self.view,
                    sequence=entry.sequence,
                    digest=entry.digest,
                    replica_id=self.node_id,
                    mode=int(self.mode),
                )
                prepare.sign(self.signer)
                slot.record_vote("prepare", self.node_id, prepare, entry.digest)
                self.multicast(self.other_proxies(), prepare)
        self.start_request_timer()

    # -- mode switching (public API) --------------------------------------------

    def request_mode_switch(self, new_mode: Mode) -> None:
        """Initiate a dynamic mode switch (Section 5.4).

        Only trusted replicas may initiate a switch; the paper has the
        primary (or transferer) of the next view send ``MODE-CHANGE``.
        """
        if not self.config.is_trusted(self.node_id):
            raise PermissionError(
                f"replica {self.node_id!r} is untrusted and may not initiate a mode switch"
            )
        if not isinstance(new_mode, Mode):
            new_mode = Mode(new_mode)
        mode_change = msgs.ModeChange(
            new_view=self.view + 1, new_mode=int(new_mode), replica_id=self.node_id
        )
        mode_change.sign(self.signer)
        self.multicast(self.other_replicas(), mode_change)
        self.view_changes.on_mode_change(self.node_id, mode_change)

    # -- state transfer (catch-up for lagging replicas) --------------------------

    def _maybe_request_catchup(self, committed_sequence: int) -> None:
        """Fetch a snapshot from peers when the commit frontier runs far ahead.

        A replica that missed informs/commits around a view or mode change
        keeps committing new sequence numbers while its executor is stuck at
        a gap; once that backlog exceeds a checkpoint period, waiting longer
        will not help (the missing messages are gone), so it asks its peers
        for a checkpointed snapshot.
        """
        backlog = committed_sequence - self.last_executed
        if backlog <= self.config.checkpoint_period:
            return
        recently_asked = (
            self._catchup_requested_at >= 0
            and self.now - self._catchup_requested_at < 10 * self.config.request_timeout
            and self.last_executed < self._catchup_target
        )
        if recently_asked:
            return
        self._catchup_target = committed_sequence
        self._catchup_requested_at = self.now
        self._catchup_votes.clear()
        self.request_state_transfer(None, committed_sequence)

    def request_state_transfer(self, target: Optional[str], up_to_sequence: int) -> None:
        """Ask ``target`` (or every other replica) for a checkpointed snapshot."""
        request = msgs.StateTransferRequest(
            replica_id=self.node_id, known_sequence=self.last_executed
        )
        if target is None:
            self.multicast(self.other_replicas(), request)
        else:
            self.send(target, request)

    def _on_state_transfer_request(self, src: str, message: msgs.StateTransferRequest) -> None:
        if message.known_sequence >= self.last_executed:
            return
        # Prefer the latest local checkpoint snapshot: it sits on a period
        # boundary, so caught-up replicas produce byte-identical snapshots
        # and the requester can cross-check untrusted responses.
        checkpoint_sequence, snapshot = self.checkpoints.latest_snapshot()
        if snapshot is None or checkpoint_sequence <= message.known_sequence:
            checkpoint_sequence, snapshot = self.last_executed, self.executor.snapshot()
        state_digest = digest(
            {"next_sequence": snapshot["next_sequence"], "state": snapshot["state"]}
        )
        response = msgs.StateTransferResponse(
            replica_id=self.node_id,
            checkpoint_sequence=checkpoint_sequence,
            state_digest=state_digest,
            snapshot=snapshot,
        )
        response.sign(self.signer)
        self.send(src, response)

    def _on_state_transfer_response(self, src: str, message: msgs.StateTransferResponse) -> None:
        if not self.verify_message(src, message):
            return
        snapshot = message.snapshot
        if not snapshot or snapshot.get("next_sequence", 0) - 1 <= self.last_executed:
            return
        trusted = self.config.is_trusted(src)
        matches_stable = (
            message.state_digest
            and message.checkpoint_sequence == self.checkpoints.stable_sequence
            and message.state_digest == self.checkpoints.stable_digest
        )
        if not (trusted or matches_stable):
            # Untrusted responses are only adopted once m+1 of them agree on
            # the same checkpointed state.
            key = (message.checkpoint_sequence, message.state_digest)
            voters = self._catchup_votes.setdefault(key, set())
            voters.add(src)
            if len(voters) < self.config.byzantine_tolerance + 1:
                return
        self._adopt_snapshot(snapshot)

    def _adopt_snapshot(self, snapshot: Dict[str, Any]) -> None:
        self.executor.restore(snapshot)
        self.slots.collect_below(self.executor.last_executed)
        self.bump_sequence_counter(self.executor.next_sequence)
        self._catchup_votes.clear()
        self.state_transfers_completed += 1
        # Slots the snapshot jumped over committed without this replica ever
        # running finalize_commit on them; release their pipeline slots.
        self.batcher.forget_in_flight_below(self.executor.last_executed)
        self._update_request_timer()

    # -- introspection -----------------------------------------------------------

    def state_summary(self) -> Dict[str, Any]:
        summary = super().state_summary()
        summary.update(
            {
                "mode": self.mode.name,
                "is_primary": self.is_primary() if not self.crashed else False,
                "is_proxy": self.is_proxy() if not self.crashed else False,
                "stable_checkpoint": self.checkpoints.stable_sequence,
                "view_changes": self.view_changes.view_changes_completed,
                "batches_proposed": self.batcher.batches_proposed,
                "mean_batch_size": round(self.batcher.mean_batch_size(), 2),
                "busy_rejects_sent": self.busy_rejects_sent,
            }
        )
        return summary
