"""Primary-side admission control: shed load instead of queueing it forever.

An open-loop population keeps sending whether or not the primary keeps up,
so an overload surge would otherwise grow the batcher's queue without
bound — every admitted request then pays the whole backlog's drain time and
tail latency collapses for the rest of the run (bufferbloat).  The paper's
"heavy traffic" regime needs the standard production answer: a watermark on
the primary's outstanding work; past it, new requests are rejected with a
signed ``Busy`` so clients back off (capped exponential) and the queue —
and therefore the latency of every request the primary *does* accept —
stays bounded.

The watermark covers both sides of the batcher: ``queued`` (requests not
yet proposed) and ``in_flight`` (slots proposed but not yet committed),
because a pipelining primary can hold a small queue while the commit
pipeline is what's actually saturated.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AdmissionPolicy:
    """Watermark configuration for primary-side load shedding.

    Attributes:
        max_outstanding: reject new client requests while the batcher's
            outstanding work — queued requests plus proposed-but-uncommitted
            slots — is at or above this value.  The bound is what keeps
            accepted-request latency bounded during overload: at service
            rate ``μ`` the worst queueing delay an admitted request sees is
            roughly ``max_outstanding / μ``.
    """

    max_outstanding: int = 256

    def __post_init__(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError(
                f"admission watermark must be at least 1: {self.max_outstanding}"
            )

    def should_shed(self, queued: int, in_flight: int) -> bool:
        """Whether a newly arrived request must be rejected right now.

        ``queued`` counts requests awaiting proposal; ``in_flight`` counts
        slots proposed but not yet committed.
        """
        return queued + in_flight >= self.max_outstanding


__all__ = ["AdmissionPolicy"]
