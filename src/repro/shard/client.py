"""Shard-aware closed-loop clients.

A :class:`ShardedClient` behaves exactly like the single-cluster
:class:`~repro.smr.client.Client` — same closed loop, same reply-quorum
acceptance, same retransmission discipline — except that every request is
first routed: the :class:`~repro.shard.router.ShardRouter` maps the
operation's key(s) to the owning shard, and the request is sent to (and
its replies judged against) *that shard's* configuration.  Each shard may
run a different SeeMoRe mode with different fault thresholds, so the
client keeps one session per shard: the shard's client config, its known
view, and its known mode all advance independently.

Cross-shard transactions occupy one slot of the client's window like any
other operation, but fan out through the client's
:class:`~repro.shard.coordinator.CrossShardCoordinator`: the prepare and
decide records are ordinary sub-requests (with their own timestamps, so
per-shard exactly-once semantics apply unchanged), and the transaction
completes — freeing the window slot and recording one aggregate
completion — only when every participant acknowledged the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.crypto.keys import KeyStore
from repro.crypto.signatures import Signer, Verifier
from repro.net.costs import NodeCostModel
from repro.net.topology import Cloud, Placement
from repro.runtime.api import Runtime, as_runtime
from repro.shard.coordinator import CrossShardCoordinator, TransactionRecord
from repro.shard.router import ShardRouter
from repro.smr.client import Client, ClientConfig, CompletedRequest, _PendingRequest
from repro.smr.messages import Reply, Request
from repro.smr.state_machine import Operation
from repro.workload.generator import Workload
from repro.workload.metrics import MetricsCollector


@dataclass
class ShardSession:
    """One client's view of one shard: config plus tracked view/mode."""

    shard_id: int
    config: ClientConfig
    members: FrozenSet[str]
    known_view: int = 0
    known_mode: int = field(init=False)

    def __post_init__(self) -> None:
        self.known_mode = self.config.initial_mode


@dataclass
class _RequestMeta:
    """Routing metadata for one in-flight request.

    ``on_result`` is set for coordinator sub-requests (prepare/decide) and
    ``None`` for logical single-shard operations, which complete directly.
    """

    shard_id: int
    on_result: Optional[Callable[[Any], None]] = None


class ShardedClient(Client):
    """A closed-loop client of a sharded deployment."""

    def __init__(
        self,
        node_id: str,
        runtime: Runtime,
        signer: Signer,
        verifier: Verifier,
        sessions: Dict[int, ShardSession],
        router: ShardRouter,
        operation_factory: Callable[[int], Operation],
        recorder: Optional[Any] = None,
        shard_recorders: Optional[Dict[int, Any]] = None,
        max_requests: Optional[int] = None,
        cost_model: Optional[NodeCostModel] = None,
        window: int = 1,
        txn_timeout: Optional[float] = None,
    ) -> None:
        if not sessions:
            raise ValueError("a sharded client needs at least one shard session")
        super().__init__(
            node_id=node_id,
            runtime=runtime,
            signer=signer,
            verifier=verifier,
            # The base class keeps a single config; sharded routing consults
            # the per-shard sessions instead, but the uniform client-side
            # request timeout still comes from here.
            config=sessions[min(sessions)].config,
            operation_factory=operation_factory,
            recorder=recorder,
            max_requests=max_requests,
            cost_model=cost_model,
            window=window,
        )
        self.sessions = sessions
        self.router = router
        self.shard_recorders = shard_recorders or {}
        self._meta: Dict[int, _RequestMeta] = {}
        self._logical_issued = 0
        self._logical_outstanding = 0
        self._txn_parent: Dict[str, int] = {}
        self.coordinator = CrossShardCoordinator(
            submit=self._submit_subrequest,
            schedule=lambda delay, action: self.runtime.call_later(
                delay, action, label=f"{node_id}:txn-timeout"
            ),
            now=lambda: self.now,
            on_complete=self._on_transaction_complete,
            txn_timeout=txn_timeout,
        )

    # -- issuing ------------------------------------------------------------

    def _issue_next(self) -> bool:
        if self._stopped or self.crashed:
            return False
        if self._logical_outstanding >= self.window:
            return False
        if self.max_requests is not None and self._logical_issued >= self.max_requests:
            return False
        self._logical_issued += 1
        operation = self.operation_factory(self._logical_issued)
        shards = self.router.shards_of_operation(operation)
        self._logical_outstanding += 1
        if len(shards) > 1:
            parent_timestamp = self._next_timestamp + 1  # the first prepare's timestamp
            txn_id = f"{self.node_id}:{parent_timestamp}"
            self._txn_parent[txn_id] = parent_timestamp
            self.coordinator.begin(txn_id, self.router.split_writes(operation))
        else:
            self._submit(shards[0], operation, meta=_RequestMeta(shard_id=shards[0]))
        return True

    def _submit(self, shard_id: int, operation: Operation, meta: _RequestMeta) -> int:
        session = self.sessions[shard_id]
        self._next_timestamp += 1
        request = Request(
            operation=operation, timestamp=self._next_timestamp, client_id=self.node_id
        )
        request.sign(self.signer)
        self._pending[request.timestamp] = _PendingRequest(
            request=request, sent_at=self.now, last_sent_at=self.now
        )
        self._meta[request.timestamp] = meta
        targets = session.config.request_targets(session.known_view, session.known_mode)
        self._send_request(targets, request)
        if not self._timer.active:
            self._schedule_timer()
        return request.timestamp

    def _submit_subrequest(
        self, shard_id: int, operation: Operation, on_result: Callable[[Any], None]
    ) -> None:
        self._submit(shard_id, operation, meta=_RequestMeta(shard_id=shard_id, on_result=on_result))

    # -- retransmission -----------------------------------------------------

    def _on_timeout(self) -> None:
        self._armed_deadline = None  # the armed event just fired
        if not self._pending or self._stopped:
            return
        overdue = [
            (timestamp, pending)
            for timestamp, pending in self._pending.items()
            if self.now - pending.last_sent_at >= self.config.request_timeout - 1e-12
        ]
        if overdue:
            self.timeouts += 1
            for timestamp, pending in overdue:
                session = self.sessions[self._meta[timestamp].shard_id]
                pending.retransmitted = True
                pending.last_sent_at = self.now
                targets = session.config.targets_for_retransmit(
                    session.known_view, session.known_mode
                )
                self._send_request(targets, pending.request)
        self._schedule_timer()

    # -- replies ------------------------------------------------------------

    def _on_reply(self, src: str, reply: Reply) -> None:
        meta = self._meta.get(reply.timestamp)
        if meta is not None and src not in self.sessions[meta.shard_id].members:
            # A replica of another shard has no say over this request: its
            # vote must not count toward the owning shard's reply quorum.
            return
        super()._on_reply(src, reply)

    def _is_acceptable(self, reply: Reply, voters: set, pending: _PendingRequest) -> bool:
        config = self.sessions[self._meta[pending.request.timestamp].shard_id].config
        if reply.replica_id in config.trusted_for_mode(reply.mode):
            return True
        return len(voters) >= self._untrusted_reply_quorum(config, reply, pending)

    def _complete(self, reply: Reply, pending: _PendingRequest) -> None:
        self._flag_minority_replies(reply, pending)
        timestamp = pending.request.timestamp
        meta = self._meta.pop(timestamp)
        session = self.sessions[meta.shard_id]
        session.known_view = max(session.known_view, reply.view)
        session.known_mode = reply.mode
        del self._pending[timestamp]
        self._schedule_timer()
        if meta.on_result is not None:
            # Coordinator sub-request: hand the result over; the logical
            # transaction completes via _on_transaction_complete.
            meta.on_result(reply.result)
            return
        record = CompletedRequest(
            timestamp=timestamp,
            sent_at=pending.sent_at,
            completed_at=self.now,
            retransmitted=pending.retransmitted,
        )
        self._finish_logical(record, shard_id=meta.shard_id)

    def _on_transaction_complete(self, transaction: TransactionRecord) -> None:
        record = CompletedRequest(
            timestamp=self._txn_parent.pop(transaction.txn_id),
            sent_at=transaction.started_at,
            completed_at=self.now,
            retransmitted=False,
        )
        self._finish_logical(record, shard_id=None)

    def _finish_logical(self, record: CompletedRequest, shard_id: Optional[int]) -> None:
        self.completed.append(record)
        if self.recorder is not None:
            self.recorder.record_completion(
                client_id=self.node_id,
                timestamp=record.timestamp,
                sent_at=record.sent_at,
                completed_at=record.completed_at,
            )
        if shard_id is not None:
            shard_recorder = self.shard_recorders.get(shard_id)
            if shard_recorder is not None:
                shard_recorder.record_completion(
                    client_id=self.node_id,
                    timestamp=record.timestamp,
                    sent_at=record.sent_at,
                    completed_at=record.completed_at,
                )
        self._logical_outstanding -= 1
        self._fill_window()


class ShardedClientPool:
    """Creates and manages N sharded closed-loop clients.

    Mirrors :class:`~repro.workload.client_pool.ClientPool` (same duck-typed
    surface: ``spawn`` / ``start_all`` / ``stop_all`` / totals) so runners
    and scenario engines drive sharded and single-cluster deployments alike.
    """

    def __init__(
        self,
        runtime: Runtime,
        keystore: KeyStore,
        placement: Placement,
        session_factory: Callable[[], Dict[int, ShardSession]],
        router: ShardRouter,
        workload: Workload,
        metrics: Optional[MetricsCollector] = None,
        shard_recorders: Optional[Dict[int, MetricsCollector]] = None,
        txn_timeout: Optional[float] = None,
        name_prefix: str = "client",
    ) -> None:
        self.runtime = as_runtime(runtime)
        self.keystore = keystore
        self.placement = placement
        self.session_factory = session_factory
        self.router = router
        self.workload = workload
        self.metrics = metrics or MetricsCollector()
        self.shard_recorders = shard_recorders or {}
        self.txn_timeout = txn_timeout
        self.name_prefix = name_prefix
        self.clients: List[ShardedClient] = []

    def spawn(
        self,
        count: int,
        max_requests_each: Optional[int] = None,
        window: Optional[int] = None,
    ) -> List[ShardedClient]:
        if count < 1:
            raise ValueError(f"client count must be positive: {count}")
        if window is None:
            window = getattr(self.workload, "client_window", 1)
        verifier = self.keystore.verifier()
        created: List[ShardedClient] = []
        for index in range(count):
            client_id = f"{self.name_prefix}-{len(self.clients) + index}"
            self.keystore.register(client_id)
            self.placement.assign(client_id, Cloud.CLIENT)
            client = ShardedClient(
                node_id=client_id,
                runtime=self.runtime,
                signer=self.keystore.signer_for(client_id),
                verifier=verifier,
                sessions=self.session_factory(),
                router=self.router,
                operation_factory=self.workload.operation_factory(client_seed=index),
                recorder=self.metrics,
                shard_recorders=self.shard_recorders,
                max_requests=max_requests_each,
                window=window,
                txn_timeout=self.txn_timeout,
            )
            self.runtime.register(client)
            created.append(client)
        self.clients.extend(created)
        return created

    def start_all(self) -> None:
        for client in self.clients:
            client.start()

    def stop_all(self) -> None:
        for client in self.clients:
            client.stop()

    @property
    def total_completed(self) -> int:
        return sum(client.completed_count for client in self.clients)

    @property
    def total_timeouts(self) -> int:
        return sum(client.timeouts for client in self.clients)
