"""Client-side shard routing.

The router is the only component that knows which cluster owns which key.
It inspects an :class:`~repro.smr.state_machine.Operation`, extracts the
key(s) it touches, and maps them through the deployment's partitioner:

* single-key operations (``put`` / ``get`` / ``delete``) route to the one
  shard owning the key;
* multi-write transactions (``kind == "txn"``, args are ``(kind, key[,
  value])`` write tuples) route to every shard owning one of the written
  keys — one shard means the single-shard fast path (an atomic local
  multi-write), several mean the cross-shard two-phase protocol;
* keyless operations (``noop``, ``scan``, the micro-benchmark payloads)
  have no owner and route to shard 0 by convention — sharded experiments
  are expected to drive keyed workloads.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.shard.partition import Partitioner
from repro.smr.state_machine import Operation

#: Operation kinds whose first argument is the key they touch.
_SINGLE_KEY_KINDS = frozenset({"put", "get", "delete"})

#: The shard that receives operations touching no key at all.
DEFAULT_SHARD = 0


class ShardRouter:
    """Deterministic ``Operation -> shard(s)`` mapping for one deployment."""

    def __init__(self, partitioner: Partitioner) -> None:
        self.partitioner = partitioner

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_shards

    def shard_of_key(self, key: str) -> int:
        return self.partitioner.shard_of_key(key)

    def keys_of_operation(self, operation: Operation) -> Tuple[str, ...]:
        """The key(s) an operation touches (empty for keyless operations)."""
        if operation.kind in _SINGLE_KEY_KINDS:
            return (operation.args[0],)
        if operation.kind == "txn":
            return tuple(write[1] for write in operation.args)
        return ()

    def shards_of_operation(self, operation: Operation) -> Tuple[int, ...]:
        """Owning shards, sorted and deduplicated; ``(DEFAULT_SHARD,)`` if keyless."""
        keys = self.keys_of_operation(operation)
        if not keys:
            return (DEFAULT_SHARD,)
        return tuple(sorted({self.partitioner.shard_of_key(key) for key in keys}))

    def is_cross_shard(self, operation: Operation) -> bool:
        return len(self.shards_of_operation(operation)) > 1

    def split_writes(self, operation: Operation) -> Dict[int, Tuple[Tuple[Any, ...], ...]]:
        """Group a ``txn`` operation's writes by owning shard.

        Write order within each shard is preserved, so every participant
        applies its slice of the transaction in the order the client issued.
        """
        if operation.kind != "txn":
            raise ValueError(f"only 'txn' operations split into writes: {operation.kind!r}")
        grouped: Dict[int, list] = {}
        for write in operation.args:
            grouped.setdefault(self.partitioner.shard_of_key(write[1]), []).append(tuple(write))
        return {shard: tuple(writes) for shard, writes in grouped.items()}
