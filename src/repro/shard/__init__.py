"""Keyspace sharding across independently configured SeeMoRe clusters.

A single 3m+2c+1 cluster bounds throughput no matter how cheap its mode
is; the sharding subsystem scales *out* instead: the replicated key-value
state is partitioned across N SeeMoRe clusters, each free to run the mode
(Lion / Dog / Peacock) and fault thresholds its own trust mix calls for.

* :mod:`~repro.shard.partition` — deterministic keyspace partitioners
  (hash and range policies);
* :mod:`~repro.shard.router` — client-side mapping of operations to the
  owning shard(s);
* :mod:`~repro.shard.coordinator` — the deterministic two-phase protocol
  committing multi-key operations that span shards, with every prepare and
  decide record ordered through the participating shard's own consensus;
* :mod:`~repro.shard.client` — shard-aware closed-loop clients and pools;
* :mod:`~repro.shard.deployment` — :class:`ShardedDeployment`, composing N
  per-shard :class:`~repro.cluster.deployment.Deployment` objects on one
  simulator with aggregate safety and atomicity checks.

Deployments are built by
:func:`repro.cluster.builders.build_sharded_seemore`.
"""

from repro.shard.client import ShardedClient, ShardedClientPool, ShardSession
from repro.shard.coordinator import (
    CoordinatorStats,
    CrossShardCoordinator,
    TransactionRecord,
)
from repro.shard.deployment import ShardedDeployment, ShardSpec
from repro.shard.partition import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
    make_partitioner,
)
from repro.shard.router import DEFAULT_SHARD, ShardRouter

__all__ = [
    "Partitioner",
    "HashPartitioner",
    "RangePartitioner",
    "make_partitioner",
    "ShardRouter",
    "DEFAULT_SHARD",
    "CrossShardCoordinator",
    "CoordinatorStats",
    "TransactionRecord",
    "ShardedClient",
    "ShardedClientPool",
    "ShardSession",
    "ShardedDeployment",
    "ShardSpec",
]
