"""A sharded deployment: N independently configured SeeMoRe clusters.

Each shard is a complete single-cluster
:class:`~repro.cluster.deployment.Deployment` — its own
:class:`~repro.core.config.SeeMoReConfig` (mode, ``c``, ``m``, trust
layout), replicas, commit ledgers, and metrics collector — and all shards
share one simulator, one network fabric, one placement, and one keystore.
Clients route keyed operations through the
:class:`~repro.shard.router.ShardRouter` and coordinate cross-shard
transactions with the deterministic two-phase protocol.

The aggregate safety story is layered:

* *per-shard safety* — every shard must uphold the single-cluster
  guarantees (no forked commits among its correct replicas), checked by
  delegating to each shard's own ledger comparison;
* *cross-shard atomicity* — no shard may commit a transaction that another
  shard aborted: the decisions recorded by correct replicas' transactional
  state machines must agree per transaction across every shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.deployment import Deployment
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.crypto.keys import KeyStore
from repro.net.network import Network
from repro.net.topology import Placement
from repro.shard.client import ShardedClientPool
from repro.shard.partition import Partitioner
from repro.shard.router import ShardRouter
from repro.sim.simulator import Simulator
from repro.smr.replica import ReplicaBase
from repro.workload.metrics import MetricsCollector


@dataclass(frozen=True)
class ShardSpec:
    """Per-shard protocol configuration.

    Every shard sizes and runs its own agreement: a shard whose replicas
    sit behind a hardened private cloud can run Lion while a shard placed
    on rented public machines runs Dog or Peacock, exactly as the paper's
    planner would size each cluster for its own trust mix.
    """

    mode: Mode = Mode.LION
    crash_tolerance: int = 1
    byzantine_tolerance: int = 1
    checkpoint_period: int = 128
    request_timeout: float = 0.02
    batch_policy: Optional[BatchPolicy] = None


@dataclass
class ShardedDeployment:
    """Everything needed to run one sharded experiment.

    Duck-types the :class:`~repro.cluster.deployment.Deployment` surface
    the runners rely on (``protocol`` / ``simulator`` / ``metrics`` /
    ``client_pool`` / ``start_clients`` / ``safety_violations`` / ``run``),
    so :func:`~repro.cluster.runner.run_deployment` drives sharded and
    single-cluster deployments identically.
    """

    protocol: str
    simulator: Simulator
    network: Network
    placement: Placement
    keystore: KeyStore
    shards: List[Deployment]
    specs: Tuple[ShardSpec, ...]
    partitioner: Partitioner
    router: ShardRouter
    client_pool: ShardedClientPool
    metrics: MetricsCollector
    extras: Dict[str, Any] = field(default_factory=dict)

    # -- composition accessors ---------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> Deployment:
        return self.shards[index]

    @property
    def clients(self) -> List:
        return self.client_pool.clients

    def replicas_of_shard(self, index: int) -> Dict[str, ReplicaBase]:
        return self.shards[index].replicas

    def all_node_ids(self) -> List[str]:
        """Every registered node id: replicas of every shard plus clients."""
        node_ids = []
        for shard in self.shards:
            node_ids.extend(sorted(shard.replicas))
        node_ids.extend(client.node_id for client in self.clients)
        return node_ids

    def correct_replicas(self) -> List[ReplicaBase]:
        return [replica for shard in self.shards for replica in shard.correct_replicas()]

    # -- invariants ---------------------------------------------------------

    def safety_violations(self) -> List:
        """Per-shard ledger conflicts, tagged with the shard index."""
        violations = []
        for index, shard in enumerate(self.shards):
            violations.extend((index,) + tuple(v) for v in shard.safety_violations())
        return violations

    def atomicity_violations(self) -> List[str]:
        """Cross-shard transactions decided differently on different shards.

        Scans the transaction decisions recorded by every correct replica's
        state machine; a transaction id carrying both a commit and an abort
        anywhere among correct replicas is the violation the two-phase
        protocol must never produce.
        """
        outcomes: Dict[str, Dict[str, Tuple[int, str]]] = {}
        for index, shard in enumerate(self.shards):
            for replica in shard.correct_replicas():
                decisions = getattr(replica.executor.state_machine, "txn_decisions", None)
                if not decisions:
                    continue
                for txn_id, outcome in decisions.items():
                    outcomes.setdefault(txn_id, {}).setdefault(
                        outcome, (index, replica.node_id)
                    )
        violations = []
        for txn_id, seen in sorted(outcomes.items()):
            if "commit" in seen and "abort" in seen:
                commit_shard, commit_replica = seen["commit"]
                abort_shard, abort_replica = seen["abort"]
                violations.append(
                    f"transaction {txn_id}: shard {commit_shard} ({commit_replica}) "
                    f"committed but shard {abort_shard} ({abort_replica}) aborted"
                )
        return violations

    def assert_safe(self) -> None:
        violations = self.safety_violations()
        if violations:
            raise AssertionError(
                f"{self.protocol}: per-shard safety violated in {len(violations)} "
                f"slot(s); first conflict: {violations[0]}"
            )
        atomicity = self.atomicity_violations()
        if atomicity:
            raise AssertionError(
                f"{self.protocol}: cross-shard atomicity violated for "
                f"{len(atomicity)} transaction(s); first: {atomicity[0]}"
            )

    # -- telemetry ----------------------------------------------------------

    def total_completed(self) -> int:
        return self.metrics.completed

    def per_shard_completed(self) -> List[int]:
        return [shard.metrics.completed for shard in self.shards]

    def adaptive_controllers(self) -> Tuple[Any, ...]:
        """The per-shard adaptive mode controllers (empty when not wired)."""
        return tuple(self.extras.get("adaptive", ()))

    def transaction_stats(self) -> Dict[str, int]:
        """Aggregate coordinator counters over every client."""
        totals = {"started": 0, "committed": 0, "aborted": 0}
        for client in self.clients:
            for key, value in client.coordinator.stats.as_dict().items():
                totals[key] += value
        return totals

    def collect_batch_sizes(self) -> None:
        for shard in self.shards:
            shard.collect_batch_sizes()

    # -- fault helpers -------------------------------------------------------

    def mark_faulty(self, shard_index: int, replica_id: str) -> None:
        self.shards[shard_index].mark_faulty(replica_id)

    # -- lifecycle -----------------------------------------------------------

    def add_clients(self, count: int, window: Optional[int] = None, start: bool = True) -> List:
        """Spawn ``count`` extra sharded closed-loop clients, optionally mid-run.

        The sharded counterpart of ``Deployment.add_clients``: new clients
        route through the deployment's partitioner like the originals, so
        surged load respects the keyspace partition.  (The per-shard pools
        refuse to spawn for exactly this reason.)
        """
        created = self.client_pool.spawn(count, window=window)
        if start:
            for client in created:
                client.start()
        return created

    def start_clients(self) -> None:
        self.client_pool.start_all()

    def stop_clients(self) -> None:
        self.client_pool.stop_all()

    def run(self, duration: float) -> float:
        """Advance simulated time by ``duration`` seconds."""
        return self.simulator.run(until=self.simulator.now + duration)
