"""Deterministic keyspace partitioning policies.

A partitioner maps every application key to exactly one shard.  Both
policies are pure functions of ``(key, configuration)`` — no process state,
no Python ``hash()`` (which is salted per interpreter run) — so every
client, test, and replay of a simulation routes a key identically.

* :class:`HashPartitioner` — uniform spreading via a keyed BLAKE2b digest;
  the right default for point-access workloads because hot keys land on
  unrelated shards.
* :class:`RangePartitioner` — ordered split points; keys keep their sort
  order within a shard, the classic choice when scans matter or when an
  operator wants explicit control over which keys co-locate.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple


class Partitioner:
    """Interface: a total, deterministic ``key -> shard index`` map."""

    num_shards: int

    def shard_of_key(self, key: str) -> int:
        raise NotImplementedError

    def validate(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"a keyspace needs at least one shard: {self.num_shards}")


@dataclass(frozen=True)
class HashPartitioner(Partitioner):
    """``shard = BLAKE2b(key) mod num_shards`` — stable across runs and hosts."""

    num_shards: int

    def __post_init__(self) -> None:
        self.validate()

    def shard_of_key(self, key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.num_shards


@dataclass(frozen=True)
class RangePartitioner(Partitioner):
    """Split the (lexicographically ordered) keyspace at explicit boundaries.

    ``boundaries`` holds ``num_shards - 1`` strictly increasing split keys;
    shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])`` with the
    first and last ranges open-ended.  A key equal to a boundary belongs to
    the shard *after* it.
    """

    boundaries: Tuple[str, ...]

    def __post_init__(self) -> None:
        ordered = list(self.boundaries)
        if ordered != sorted(set(ordered)):
            raise ValueError(f"range boundaries must be strictly increasing: {self.boundaries}")
        self.validate()

    @property
    def num_shards(self) -> int:  # type: ignore[override]
        return len(self.boundaries) + 1

    def shard_of_key(self, key: str) -> int:
        return bisect_right(self.boundaries, key)


def make_partitioner(
    policy: str,
    num_shards: int,
    boundaries: Optional[Sequence[str]] = None,
) -> Partitioner:
    """Build a partitioner from deployment knobs.

    ``policy`` is ``"hash"`` or ``"range"``; a range policy needs exactly
    ``num_shards - 1`` boundaries.
    """
    if policy == "hash":
        return HashPartitioner(num_shards=num_shards)
    if policy == "range":
        if boundaries is None or len(boundaries) != num_shards - 1:
            raise ValueError(
                f"a range policy over {num_shards} shards needs {num_shards - 1} "
                f"boundaries, got {boundaries!r}"
            )
        return RangePartitioner(boundaries=tuple(boundaries))
    raise ValueError(f"unknown partition policy {policy!r}; choose 'hash' or 'range'")
