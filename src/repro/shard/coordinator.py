"""Client-side cross-shard transaction coordination.

The coordinator drives a deterministic two-phase protocol in which every
record is an ordinary client operation *ordered by the participating
shard's own SeeMoRe instance* — cross-shard atomicity therefore inherits
each shard's agreement guarantees instead of trusting any single machine:

1. **Prepare** — ``txn_prepare(txn_id, writes)`` goes to every participant.
   Each shard orders the prepare, stages the writes, and replies with a
   vote through the normal reply-quorum path (so the coordinator believes
   a vote only with the same confidence it believes any result).
2. **Decide** — once every vote is in (all yes → ``commit``; any no, or
   the optional coordinator timeout → ``abort``) the same
   ``txn_decide(txn_id, outcome)`` record goes to every participant.  The
   decision is made exactly once and never changes, which is the whole
   atomicity argument: a shard can only apply the one outcome the
   coordinator distributed.

A participant that already ordered an abort tombstone votes *no* on a late
prepare (see ``TransactionalKeyValueStore``), closing the classic race
where a timed-out coordinator aborts while a retransmitted prepare is
still working its way through a slow shard.

The coordinator is transport-agnostic: it submits operations through a
``submit(shard, operation, on_result)`` callable and schedules its
timeout through ``schedule(delay, action)``, so it is unit-testable
without a network and reusable by any client implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Set, Tuple

from repro.smr.state_machine import TXN_ABORT, TXN_COMMIT, Operation

SubmitFn = Callable[[int, Operation, Callable[[Any], None]], None]
ScheduleFn = Callable[[float, Callable[[], None]], None]


@dataclass
class TransactionRecord:
    """Lifecycle state of one in-flight cross-shard transaction."""

    txn_id: str
    participants: Tuple[int, ...]
    writes_by_shard: Dict[int, Tuple[Tuple[Any, ...], ...]]
    started_at: float
    votes: Dict[int, bool] = field(default_factory=dict)
    decision: Optional[str] = None
    decides_pending: Set[int] = field(default_factory=set)

    @property
    def decided(self) -> bool:
        return self.decision is not None


@dataclass
class CoordinatorStats:
    """Counters exposed to metrics and scenario reports."""

    started: int = 0
    committed: int = 0
    aborted: int = 0

    @property
    def decided(self) -> int:
        return self.committed + self.aborted

    def as_dict(self) -> Dict[str, int]:
        return {"started": self.started, "committed": self.committed, "aborted": self.aborted}


class CrossShardCoordinator:
    """Drives two-phase commits for one client.

    Args:
        submit: sends one operation to one shard; ``on_result`` fires with
            the operation's (quorum-accepted) execution result.
        schedule: schedules ``action`` after ``delay`` simulated seconds
            (used only when ``txn_timeout`` is set).
        now: returns the current simulated time.
        on_complete: fires once per transaction, after every participant
            acknowledged the decision — the moment the transaction is
            durable everywhere and the client's window slot frees up.
        txn_timeout: optional coordinator patience: a transaction whose
            votes are not all in after this many seconds is aborted.
            ``None`` (the default) waits indefinitely, the classic blocking
            2PC — participants keep retransmitting until the shard answers.
    """

    def __init__(
        self,
        submit: SubmitFn,
        schedule: ScheduleFn,
        now: Callable[[], float],
        on_complete: Optional[Callable[[TransactionRecord], None]] = None,
        txn_timeout: Optional[float] = None,
    ) -> None:
        self._submit = submit
        self._schedule = schedule
        self._now = now
        self._on_complete = on_complete
        self.txn_timeout = txn_timeout
        self.stats = CoordinatorStats()
        self._active: Dict[str, TransactionRecord] = {}

    @property
    def active_transactions(self) -> int:
        return len(self._active)

    def begin(
        self, txn_id: str, writes_by_shard: Dict[int, Tuple[Tuple[Any, ...], ...]]
    ) -> TransactionRecord:
        """Start the prepare phase of one cross-shard transaction."""
        if txn_id in self._active:
            raise ValueError(f"transaction {txn_id!r} is already in flight")
        if len(writes_by_shard) < 2:
            raise ValueError(
                f"transaction {txn_id!r} touches {len(writes_by_shard)} shard(s); "
                f"single-shard transactions take the atomic 'txn' fast path"
            )
        record = TransactionRecord(
            txn_id=txn_id,
            participants=tuple(sorted(writes_by_shard)),
            writes_by_shard=dict(writes_by_shard),
            started_at=self._now(),
        )
        self._active[txn_id] = record
        self.stats.started += 1
        for shard in record.participants:
            operation = Operation("txn_prepare", (txn_id, record.writes_by_shard[shard]))
            self._submit(
                shard,
                operation,
                lambda result, shard=shard: self._on_vote(txn_id, shard, result),
            )
        if self.txn_timeout is not None:
            self._schedule(self.txn_timeout, lambda: self._deadline(txn_id))
        return record

    # -- phase transitions --------------------------------------------------

    def _on_vote(self, txn_id: str, shard: int, result: Any) -> None:
        record = self._active.get(txn_id)
        if record is None or record.decided:
            # Late vote after the decision (typically after a timeout
            # abort): the decide already went to every participant.
            return
        vote = (
            isinstance(result, dict)
            and bool(result.get("ok"))
            and result.get("vote") == "yes"
        )
        record.votes[shard] = vote
        if not vote:
            self._decide(record, TXN_ABORT)
        elif len(record.votes) == len(record.participants):
            self._decide(record, TXN_COMMIT)

    def _deadline(self, txn_id: str) -> None:
        record = self._active.get(txn_id)
        if record is not None and not record.decided:
            self._decide(record, TXN_ABORT)

    def _decide(self, record: TransactionRecord, outcome: str) -> None:
        record.decision = outcome
        if outcome == TXN_COMMIT:
            self.stats.committed += 1
        else:
            self.stats.aborted += 1
        # The decision goes to EVERY participant — including those whose
        # prepare has not answered yet (crashed or partitioned shards): the
        # decide record retransmits until the shard orders it, and a
        # participant that sees the abort before its prepare records the
        # tombstone that makes the late prepare vote no.
        record.decides_pending = set(record.participants)
        for shard in record.participants:
            operation = Operation("txn_decide", (record.txn_id, outcome))
            self._submit(
                shard,
                operation,
                lambda result, shard=shard: self._on_decided(record.txn_id, shard, result),
            )

    def _on_decided(self, txn_id: str, shard: int, result: Any) -> None:
        record = self._active.get(txn_id)
        if record is None:
            return
        record.decides_pending.discard(shard)
        if not record.decides_pending:
            del self._active[txn_id]
            if self._on_complete is not None:
                self._on_complete(record)
