"""Wire envelope wrapping protocol messages in transit."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass
class Envelope:
    """A message in flight between two nodes.

    Attributes:
        src: sender node id.
        dst: receiver node id.
        payload: the protocol message object.
        size_bytes: serialized size used for bandwidth and hashing costs.
        sent_at: simulated time the sender handed it to the network.
    """

    src: str
    dst: str
    payload: Any
    size_bytes: int
    sent_at: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.payload).__name__
        return f"Envelope({self.src}->{self.dst}, {kind}, {self.size_bytes}B, t={self.sent_at:.6f})"
