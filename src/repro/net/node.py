"""Base class for every server and client, on either runtime backend.

A :class:`Node` couples a single-threaded CPU (:class:`repro.runtime.api.Cpu`)
with a transport attachment.  Protocol replicas and clients subclass it and
implement :meth:`Node.handle_message`.  The node is sans-IO: it never
touches the simulator or the network machinery directly — everything goes
through the :class:`~repro.runtime.api.Runtime` it was built on, so the
same protocol code runs under the deterministic simulator and under the
asyncio-TCP backend.

Message accounting follows the paper's deployment:

* every *handled* message charges deserialization + digest + signature/MAC
  verification CPU on the receiver;
* every *sent* message charges serialization + signature/MAC CPU on the
  sender; a multicast signs the content once and then pays only the
  per-destination serialization cost.

The node only *classifies* each message (wire size, signed or not, how
many signatures to verify); turning that classification into CPU cost is
the runtime's job — modeled service times in the sim backend, measured
elapsed time in the aio backend.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.crypto.digest import WIRE_SIZE_CACHE_ATTR
from repro.net.costs import NodeCostModel
from repro.runtime.api import Runtime, TimerHandle, Transport, as_runtime


def wire_size_of(payload: Any) -> int:
    """Serialized size in bytes of a protocol message.

    Messages may expose ``wire_size()``; otherwise we approximate with the
    length of the repr, which is stable enough for cost purposes.  Protocol
    messages cache the estimate (batch sizes walk every inner request, and
    the same object is re-sized on every retransmission and relay); the
    cache is dropped by ``copy.copy`` together with the digest caches.
    """
    try:
        cached = payload.__dict__.get(WIRE_SIZE_CACHE_ATTR)
    except AttributeError:
        cached = None
    if cached is not None:
        return cached
    cached_fn = getattr(payload, "cached_wire_size", None)
    if callable(cached_fn):
        return cached_fn()
    size_fn = getattr(payload, "wire_size", None)
    if callable(size_fn):
        return int(size_fn())
    return len(repr(payload))


def is_signed(payload: Any) -> bool:
    """Whether the message carries a public-key signature to verify."""
    return bool(getattr(payload, "signed", False))


def signature_count_of(payload: Any) -> int:
    """How many signatures a receiver must verify for this message."""
    count = getattr(payload, "signature_count", None)
    if count is None:
        return 1 if is_signed(payload) else 0
    return int(count)


class Node:
    """A machine: one CPU, one transport interface, many timers."""

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        self.node_id = node_id
        # Accepts a Runtime or (for compatibility with the many tests and
        # tools that build nodes directly) a bare Simulator, which gets a
        # transport-less sim runtime wrapped around it.
        self.runtime: Runtime = as_runtime(runtime)
        self.cost_model = cost_model or NodeCostModel()
        self.process = self.runtime.create_cpu(node_id, self.cost_model)
        self._transport: Optional[Transport] = None
        self.messages_handled = 0
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- wiring -----------------------------------------------------------

    def attach(self, transport: Transport) -> None:
        """Called by the transport/network when the node is registered."""
        self._transport = transport

    @property
    def network(self) -> Transport:
        """The attached transport (named for the sim network, its usual form)."""
        if self._transport is None:
            raise RuntimeError(f"node {self.node_id!r} is not attached to a transport")
        return self._transport

    @property
    def now(self) -> float:
        return self.runtime.now

    @property
    def crashed(self) -> bool:
        return self.process.crashed

    def crash(self) -> None:
        """Fail-stop this node: it stops processing and sending."""
        self.process.crash()

    def recover(self) -> None:
        self.process.recover()

    def create_timer(self, callback, label: str = "") -> TimerHandle:
        """Create an unarmed timer owned by this node."""
        return self.runtime.timer(callback, label=f"{self.node_id}:{label}")

    # -- sending ----------------------------------------------------------

    def send(self, dst: str, payload: Any) -> None:
        """Send one message to one destination, charging send-side CPU."""
        process = self.process
        if process.crashed:
            return
        # Inlined wire_size_of cache probe: it hits on virtually every
        # send of a steady-state run.  The cost lookup happens inside the
        # CPU (modeled in sim, measured in aio).
        try:
            size = payload.__dict__.get(WIRE_SIZE_CACHE_ATTR)
        except AttributeError:
            size = None
        if size is None:
            size = wire_size_of(payload)
        signed = True if getattr(payload, "signed", False) else False
        process.submit_send(size, signed, self._transmit, (dst, payload, size))

    def multicast(self, destinations: Iterable[str], payload: Any) -> None:
        """Send the same message to many destinations.

        The content is signed once; each destination then costs only the
        per-message serialization and channel MAC.
        """
        if self.process.crashed:
            return
        targets = [dst for dst in destinations if dst != self.node_id]
        if not targets:
            return
        size = wire_size_of(payload)
        signed = is_signed(payload)

        def transmit_all() -> None:
            for dst in targets:
                self._transmit(dst, payload, size)

        self.process.submit_multicast(size, signed, len(targets), transmit_all)

    def _transmit(self, dst: str, payload: Any, size: int) -> None:
        if self.process.crashed:
            return
        self.messages_sent += 1
        self.bytes_sent += size
        # Direct attribute read: a detached node cannot have queued CPU work,
        # so the property's guard would never fire here anyway.
        self._transport.deliver(self.node_id, dst, payload, size)

    # -- receiving --------------------------------------------------------

    def deliver(self, src: str, payload: Any, size: int) -> None:
        """Called by the transport when a message arrives at this node.

        The message waits in the CPU queue and is handled once the CPU has
        paid its receive cost.  Crashed nodes drop everything.
        """
        process = self.process
        if process.crashed:
            return
        # Inlined is_signed / signature_count_of: a few getattrs and call
        # frames per delivery add up at hundreds of thousands of messages.
        if getattr(payload, "signed", False):
            count = getattr(payload, "signature_count", None)
            process.submit_receive(
                size, True, 1 if count is None else int(count), self._handle, (src, payload)
            )
        else:
            process.submit_receive(size, False, 0, self._handle, (src, payload))

    def _handle(self, src: str, payload: Any) -> None:
        if self.process.crashed:
            return
        self.messages_handled += 1
        self.handle_message(src, payload)

    def handle_message(self, src: str, payload: Any) -> None:
        """Protocol logic entry point; subclasses must implement."""
        raise NotImplementedError
