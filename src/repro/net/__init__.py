"""Network substrate: clouds, links, latency, and node processing.

This package models the deployment environment of the paper: a *private
cloud* of trusted servers and a *public cloud* of rented servers, connected
by authenticated point-to-point channels.  Key pieces:

* :class:`~repro.net.topology.Placement` — which node lives in which cloud.
* :class:`~repro.net.latency.CloudAwareLatencyModel` — one-way latency
  that distinguishes intra-cloud from cross-cloud links.
* :class:`~repro.net.network.Network` — delivers messages between nodes,
  applying latency, bandwidth, drops, partitions, and adversarial delays.
* :class:`~repro.net.node.Node` — a single-CPU server that charges
  processing and crypto cost for every message it sends or handles.
"""

from repro.net.topology import Cloud, Placement
from repro.net.latency import (
    CloudAwareLatencyModel,
    LatencyModel,
    UniformLatencyModel,
)
from repro.net.conditions import NetworkConditions
from repro.net.costs import NodeCostModel
from repro.net.network import Network
from repro.net.node import Node

__all__ = [
    "Cloud",
    "Placement",
    "LatencyModel",
    "UniformLatencyModel",
    "CloudAwareLatencyModel",
    "NetworkConditions",
    "NodeCostModel",
    "Network",
    "Node",
]
