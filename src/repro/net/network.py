"""Message delivery between nodes.

The :class:`Network` owns the registered nodes, the latency model, the
adverse-condition controls, and delivery statistics.  It models the paper's
pairwise authenticated, asynchronous channels: messages may be dropped,
delayed, or duplicated (per :class:`~repro.net.conditions.NetworkConditions`),
but a message delivered as coming from replica *j* really was sent by *j* --
spoofing is impossible because senders are identified by the object doing
the sending, not by a field inside the message.
"""

from __future__ import annotations

import random
from collections import Counter
from heapq import heappush
from typing import Any, Dict, Optional

from repro.net.conditions import NetworkConditions
from repro.net.costs import NodeCostModel
from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.node import Node
from repro.sim.simulator import Simulator


class Network:
    """Simulated datagram network with per-link latency and pathologies."""

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        conditions: Optional[NetworkConditions] = None,
        cost_model: Optional[NodeCostModel] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model or UniformLatencyModel()
        self.conditions = conditions or NetworkConditions()
        self.cost_model = cost_model or NodeCostModel()
        self._rng = random.Random(seed)
        self._nodes: Dict[str, Node] = {}
        # Precomputed reciprocal: transmission delay is size * this, and a
        # method call per delivery into the (frozen) cost model is wasted.
        bandwidth = self.cost_model.bandwidth_bytes_per_second
        self._seconds_per_byte = 1.0 / bandwidth if bandwidth > 0 else 0.0

        self.messages_offered = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        # Keyed by message *class* on the hot path (hashing a class is
        # cheaper than building its __name__ string per delivery); exposed
        # by name via :attr:`message_type_counts` / :meth:`stats`.
        self._type_counts: Counter = Counter()

    # -- membership -------------------------------------------------------

    def register(self, node: Node) -> None:
        """Attach ``node`` to the network (id must be unique)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id!r}")
        self._nodes[node.node_id] = node
        node.attach(self)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node: {node_id!r}") from None

    def knows(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list:
        return sorted(self._nodes)

    # -- delivery ---------------------------------------------------------

    def deliver(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        """Route one message from ``src`` to ``dst``.

        Applies drop/partition rules, latency, transmission delay, and
        duplication, then schedules arrival at the destination node.
        Messages to unknown destinations are dropped (the node may have been
        removed by an experiment).
        """
        self.messages_offered += 1
        self._type_counts[type(payload)] += 1

        destination = self._nodes.get(dst)
        if destination is None:
            self.messages_dropped += 1
            return

        # Per-delivery bookkeeping is batched into one closure: no envelope
        # object or f-string label on the hot path (labels only matter for
        # debugging traces; the src/dst live in the closure).  The
        # pathology checks collapse to a single flag read while no drop /
        # partition / delay / duplication condition is configured.
        conditions = self.conditions
        if conditions.quiet:
            # Inlined _total_delay + Simulator.defer for the quiet (no
            # pathology) case — the steady-state path of every benchmark.
            # Exactly one latency sample (one RNG draw) per delivery.
            delay = (
                self.latency_model.sample(src, dst, self._rng)
                + size_bytes * self._seconds_per_byte
            )
            simulator = self.simulator
            queue = simulator._queue
            seq = queue._counter
            queue._counter = seq + 1
            queue._live += 1
            heappush(
                queue._heap,
                (
                    simulator._clock._now + delay,
                    seq,
                    self._arrive,
                    (src, dst, payload, size_bytes),
                ),
            )
            return

        if conditions.should_drop(src, dst, self._rng):
            self.messages_dropped += 1
            return
        delay = self._total_delay(src, dst, size_bytes)
        self.simulator.defer(delay, self._arrive, (src, dst, payload, size_bytes))
        if conditions.is_duplicated(src, dst):
            duplicate_delay = self._total_delay(src, dst, size_bytes)
            self.simulator.defer(
                duplicate_delay, self._arrive, (src, dst, payload, size_bytes)
            )

    def _total_delay(self, src: str, dst: str, size_bytes: int) -> float:
        latency = self.latency_model.sample(src, dst, self._rng)
        transmission = size_bytes * self._seconds_per_byte
        if self.conditions.quiet:
            return latency + transmission
        return latency + transmission + self.conditions.extra_delay(src, dst)

    def _arrive(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        destination = self._nodes.get(dst)
        if destination is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.bytes_delivered += size_bytes
        destination.deliver(src, payload, size_bytes)

    # -- statistics -------------------------------------------------------

    @property
    def message_type_counts(self) -> Counter:
        """Offered-message counts keyed by message type *name*."""
        return Counter({cls.__name__: count for cls, count in self._type_counts.items()})

    def stats(self) -> Dict[str, Any]:
        """Snapshot of delivery counters (useful in benches and tests)."""
        return {
            "messages_offered": self.messages_offered,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_delivered": self.bytes_delivered,
            "by_type": dict(self.message_type_counts),
        }
