"""Message delivery between nodes.

The :class:`Network` owns the registered nodes, the latency model, the
adverse-condition controls, and delivery statistics.  It models the paper's
pairwise authenticated, asynchronous channels: messages may be dropped,
delayed, or duplicated (per :class:`~repro.net.conditions.NetworkConditions`),
but a message delivered as coming from replica *j* really was sent by *j* --
spoofing is impossible because senders are identified by the object doing
the sending, not by a field inside the message.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Any, Dict, Optional

from repro.net.conditions import NetworkConditions
from repro.net.costs import NodeCostModel
from repro.net.latency import LatencyModel, UniformLatencyModel
from repro.net.message import Envelope
from repro.net.node import Node
from repro.sim.simulator import Simulator


class Network:
    """Simulated datagram network with per-link latency and pathologies."""

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        conditions: Optional[NetworkConditions] = None,
        cost_model: Optional[NodeCostModel] = None,
        seed: int = 0,
    ) -> None:
        self.simulator = simulator
        self.latency_model = latency_model or UniformLatencyModel()
        self.conditions = conditions or NetworkConditions()
        self.cost_model = cost_model or NodeCostModel()
        self._rng = random.Random(seed)
        self._nodes: Dict[str, Node] = {}

        self.messages_offered = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        self.message_type_counts: Counter = Counter()

    # -- membership -------------------------------------------------------

    def register(self, node: Node) -> None:
        """Attach ``node`` to the network (id must be unique)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id: {node.node_id!r}")
        self._nodes[node.node_id] = node
        node.attach(self)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyError(f"unknown node: {node_id!r}") from None

    def knows(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list:
        return sorted(self._nodes)

    # -- delivery ---------------------------------------------------------

    def deliver(self, src: str, dst: str, payload: Any, size_bytes: int) -> None:
        """Route one message from ``src`` to ``dst``.

        Applies drop/partition rules, latency, transmission delay, and
        duplication, then schedules arrival at the destination node.
        Messages to unknown destinations are dropped (the node may have been
        removed by an experiment).
        """
        self.messages_offered += 1
        self.message_type_counts[type(payload).__name__] += 1

        destination = self._nodes.get(dst)
        if destination is None:
            self.messages_dropped += 1
            return
        if self.conditions.should_drop(src, dst, self._rng):
            self.messages_dropped += 1
            return

        envelope = Envelope(
            src=src,
            dst=dst,
            payload=payload,
            size_bytes=size_bytes,
            sent_at=self.simulator.now,
        )
        delay = self._total_delay(src, dst, size_bytes)
        self.simulator.call_later(delay, lambda: self._arrive(envelope), label=f"net:{src}->{dst}")

        if self.conditions.is_duplicated(src, dst):
            duplicate_delay = self._total_delay(src, dst, size_bytes)
            self.simulator.call_later(
                duplicate_delay, lambda: self._arrive(envelope), label=f"net-dup:{src}->{dst}"
            )

    def _total_delay(self, src: str, dst: str, size_bytes: int) -> float:
        latency = self.latency_model.sample(src, dst, self._rng)
        transmission = self.cost_model.transmission_delay(size_bytes)
        extra = self.conditions.extra_delay(src, dst)
        return latency + transmission + extra

    def _arrive(self, envelope: Envelope) -> None:
        destination = self._nodes.get(envelope.dst)
        if destination is None:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        self.bytes_delivered += envelope.size_bytes
        destination.deliver(envelope.src, envelope.payload, envelope.size_bytes)

    # -- statistics -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Snapshot of delivery counters (useful in benches and tests)."""
        return {
            "messages_offered": self.messages_offered,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_delivered": self.bytes_delivered,
            "by_type": dict(self.message_type_counts),
        }
