"""Adverse network conditions: drops, partitions, and extra delays.

Section 3.1 of the paper assumes an asynchronous network that may "drop,
delay, corrupt, duplicate, or reorder messages" while safety must still
hold.  :class:`NetworkConditions` is the knob the tests and the adversary
use to create those conditions deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Optional, Set, Tuple


class NetworkConditions:
    """Mutable description of current network pathologies.

    All controls are keyed by (src, dst) *directed* pairs except partitions,
    which are symmetric groups of nodes that can only talk within the group.
    """

    def __init__(self) -> None:
        self._drop_probability: Dict[Tuple[str, str], float] = {}
        self._default_drop_probability = 0.0
        self._extra_delay: Dict[Tuple[str, str], float] = {}
        self._partitions: list[FrozenSet[str]] = []
        self._duplicated_links: Set[Tuple[str, str]] = set()
        # Fast-path flag: the delivery loop skips the per-message pathology
        # checks entirely while no condition is configured (the overwhelming
        # steady state).  Every mutator refreshes it.
        self.quiet = True

    def _refresh_quiet(self) -> None:
        self.quiet = not (
            self._partitions
            or self._drop_probability
            or self._default_drop_probability > 0.0
            or self._extra_delay
            or self._duplicated_links
        )

    def set_default_drop_probability(self, probability: float) -> None:
        self._validate_probability(probability)
        self._default_drop_probability = probability
        self._refresh_quiet()

    def set_drop_probability(self, src: str, dst: str, probability: float) -> None:
        self._validate_probability(probability)
        self._drop_probability[(src, dst)] = probability
        self._refresh_quiet()

    def set_extra_delay(self, src: str, dst: str, delay: float) -> None:
        """Add a fixed extra delay on a directed link (adversarial slowness)."""
        if delay < 0:
            raise ValueError(f"extra delay cannot be negative: {delay}")
        self._extra_delay[(src, dst)] = delay
        self._refresh_quiet()

    def clear_extra_delays(self) -> None:
        self._extra_delay.clear()
        self._refresh_quiet()

    def duplicate_link(self, src: str, dst: str) -> None:
        """Deliver every message on this link twice (duplication pathology)."""
        self._duplicated_links.add((src, dst))
        self._refresh_quiet()

    def partition(self, *groups: Set[str]) -> None:
        """Partition the network into the given groups.

        A message crosses the partition only if its source and destination
        are in the same group.  Nodes not named in any group can talk to
        everyone (useful for partial partitions).
        """
        self._partitions = [frozenset(group) for group in groups]
        self._refresh_quiet()

    def heal_partition(self) -> None:
        self._partitions = []
        self._refresh_quiet()

    def should_drop(self, src: str, dst: str, rng: random.Random) -> bool:
        """Decide whether a message on ``src -> dst`` is lost."""
        if self._is_partitioned(src, dst):
            return True
        probability = self._drop_probability.get((src, dst), self._default_drop_probability)
        if probability <= 0.0:
            return False
        return rng.random() < probability

    def extra_delay(self, src: str, dst: str) -> float:
        return self._extra_delay.get((src, dst), 0.0)

    def is_duplicated(self, src: str, dst: str) -> bool:
        return (src, dst) in self._duplicated_links

    def _is_partitioned(self, src: str, dst: str) -> bool:
        if not self._partitions:
            return False
        src_group = self._group_of(src)
        dst_group = self._group_of(dst)
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group

    def _group_of(self, node_id: str) -> Optional[int]:
        for index, group in enumerate(self._partitions):
            if node_id in group:
                return index
        return None

    @staticmethod
    def _validate_probability(probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: {probability}")
