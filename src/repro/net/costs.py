"""Per-node CPU and bandwidth cost model.

Each node is a single-threaded server (see :mod:`repro.sim.process`).  The
cost model determines how much CPU a message charges when it is sent and
when it is handled, and how long its bytes occupy the wire.  Together with
the crypto cost model this is what makes protocols with more phases, more
messages, or bigger quorums saturate earlier -- the effect behind the
latency-throughput curves of Figures 2 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.crypto.costs import CryptoCostModel


@dataclass(frozen=True)
class NodeCostModel:
    """CPU/bandwidth costs charged by every node.

    Attributes:
        handle_base_cost: fixed CPU cost to deserialize and dispatch one
            received message.
        handle_per_byte: additional CPU cost per payload byte received.
        send_base_cost: fixed CPU cost to serialize and enqueue one outgoing
            message.
        send_per_byte: additional CPU cost per payload byte sent.
        execute_cost: CPU cost of executing one state-machine operation.
        bandwidth_bytes_per_second: link bandwidth used to compute
            transmission delay (bytes / bandwidth), shared by all links.
        crypto: cost of signatures, MACs, and digests.
    """

    handle_base_cost: float = 5e-6
    handle_per_byte: float = 0.6e-9
    send_base_cost: float = 8e-6
    send_per_byte: float = 0.6e-9
    execute_cost: float = 2e-6
    bandwidth_bytes_per_second: float = 1.25e9
    crypto: CryptoCostModel = field(default_factory=CryptoCostModel)
    # Memo for the pure cost functions, keyed by their int/bool arguments.
    # A steady-state run sees only a handful of distinct message sizes, so
    # the arithmetic (and crypto sub-model calls) would otherwise repeat on
    # every delivery.  A plain instance dict beats ``functools.lru_cache``
    # here: the lru would re-hash this (frozen, nested) dataclass per call.
    _cost_memo: Dict[Tuple, float] = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    def receive_cost(self, size_bytes: int, signed: bool, verify_signatures: int = 1) -> float:
        """CPU cost to accept one incoming message.

        Args:
            size_bytes: serialized message size.
            signed: whether the message carries public-key signatures that
                the receiver must verify (vs. only channel MACs).
            verify_signatures: how many signatures must be verified (e.g. a
                new-view message embeds several).
        """
        key = (size_bytes, signed, verify_signatures)
        cached = self._cost_memo.get(key)
        if cached is not None:
            return cached
        cost = self.handle_base_cost + self.handle_per_byte * size_bytes
        cost += self.crypto.digest_cost(size_bytes)
        if signed:
            cost += self.crypto.verify_cost * max(1, verify_signatures)
        else:
            cost += self.crypto.mac_cost
        self._cost_memo[key] = cost
        return cost

    def send_cost(self, size_bytes: int, signed: bool) -> float:
        """CPU cost to produce and enqueue one outgoing message.

        Signing is charged once per *message content*; the network layer is
        responsible for charging it only once per multicast (a replica signs
        the message once and sends the same bytes to everyone).
        """
        key = (size_bytes, signed)
        cached = self._cost_memo.get(key)
        if cached is not None:
            return cached
        cost = self.send_base_cost + self.send_per_byte * size_bytes
        if signed:
            cost += self.crypto.sign_cost
        else:
            cost += self.crypto.mac_cost
        self._cost_memo[key] = cost
        return cost

    def transmission_delay(self, size_bytes: int) -> float:
        """Time the message's bytes occupy the wire."""
        if self.bandwidth_bytes_per_second <= 0:
            return 0.0
        return size_bytes / self.bandwidth_bytes_per_second
