"""One-way network latency models.

Latency is sampled per message from a distribution determined by the pair of
endpoints.  The default :class:`CloudAwareLatencyModel` distinguishes three
link classes, matching the paper's deployment knobs:

* intra-cloud links (both endpoints in the same cloud / data centre),
* cross-cloud links (private ↔ public),
* client links (client ↔ any replica).

The paper's main experiments co-locate both clouds in one AWS region, so the
defaults keep cross-cloud latency equal to intra-cloud latency; the Peacock
mode experiments and the ablations raise it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.net.topology import Cloud, Placement


class LatencyModel:
    """Interface: sample a one-way latency in seconds for a link."""

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError


@dataclass
class UniformLatencyModel(LatencyModel):
    """Same latency distribution for every link.

    Latency is ``base`` plus uniform jitter in ``[0, jitter]``.
    """

    base: float = 0.0002
    jitter: float = 0.00005

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        # One underlying draw, same value as ``rng.uniform(0.0, jitter)``.
        return self.base + rng.random() * self.jitter


@dataclass
class CloudAwareLatencyModel(LatencyModel):
    """Latency distinguishing intra-cloud, cross-cloud, and client links.

    Attributes:
        placement: cloud placement used to classify each link.
        intra_cloud: base one-way latency between nodes in the same cloud.
        cross_cloud: base one-way latency between the private and public cloud.
        client_link: base one-way latency between a client and any replica.
        jitter_fraction: uniform jitter as a fraction of the base latency.
    """

    placement: Placement
    intra_cloud: float = 0.0002
    cross_cloud: float = 0.0002
    client_link: float = 0.0003
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        # Placement is immutable for the lifetime of a deployment, so the
        # base latency of each directed link is computed once; sampling a
        # latency per delivery then costs one dict probe and one RNG draw.
        self._base_cache: dict = {}

    def classify(self, src: str, dst: str) -> str:
        """Return the link class: ``intra``, ``cross`` or ``client``."""
        src_cloud = self.placement.cloud_of(src)
        dst_cloud = self.placement.cloud_of(dst)
        if Cloud.CLIENT in (src_cloud, dst_cloud):
            return "client"
        if src_cloud is dst_cloud:
            return "intra"
        return "cross"

    def base_for(self, src: str, dst: str) -> float:
        cached = self._base_cache.get((src, dst))
        if cached is None:
            link_class = self.classify(src, dst)
            if link_class == "client":
                cached = self.client_link
            elif link_class == "intra":
                cached = self.intra_cloud
            else:
                cached = self.cross_cloud
            self._base_cache[(src, dst)] = cached
        return cached

    def sample(self, src: str, dst: str, rng: random.Random) -> float:
        # Same value and same single underlying draw as
        # ``rng.uniform(0.0, jitter_fraction)``, without the extra frame.
        return self.base_for(src, dst) * (1.0 + rng.random() * self.jitter_fraction)


def lan_latency(
    placement: Placement, cross_cloud: Optional[float] = None
) -> CloudAwareLatencyModel:
    """Convenience constructor for the paper's co-located deployment.

    Both clouds sit in the same AWS region (US-West in the paper), so
    cross-cloud latency defaults to the intra-cloud value unless overridden.
    """
    intra = 0.0002
    return CloudAwareLatencyModel(
        placement=placement,
        intra_cloud=intra,
        cross_cloud=cross_cloud if cross_cloud is not None else intra,
        client_link=0.0003,
    )
