"""Cloud placement of nodes.

The hybrid model (Section 3.2) distinguishes *trusted* replicas in the
private cloud (identifiers ``0 .. S-1`` in the paper) from *untrusted*
replicas in the public cloud (identifiers ``S .. N-1``).  Clients live
outside both clouds.  :class:`Placement` records that assignment and is
consulted by the latency model and by the protocol configuration.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List


class Cloud(enum.Enum):
    """Where a node physically runs."""

    PRIVATE = "private"
    PUBLIC = "public"
    CLIENT = "client"


class Placement:
    """Mapping from node identifier to the cloud hosting it."""

    def __init__(self) -> None:
        self._clouds: Dict[str, Cloud] = {}

    def assign(self, node_id: str, cloud: Cloud) -> None:
        """Place ``node_id`` in ``cloud`` (re-assignment is an error)."""
        existing = self._clouds.get(node_id)
        if existing is not None and existing is not cloud:
            raise ValueError(
                f"node {node_id!r} already placed in {existing.value}, cannot move to {cloud.value}"
            )
        self._clouds[node_id] = cloud

    def assign_many(self, node_ids: Iterable[str], cloud: Cloud) -> None:
        for node_id in node_ids:
            self.assign(node_id, cloud)

    def cloud_of(self, node_id: str) -> Cloud:
        """Return the cloud of ``node_id``.

        Raises:
            KeyError: for nodes that were never placed.
        """
        try:
            return self._clouds[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} has no cloud placement") from None

    def knows(self, node_id: str) -> bool:
        return node_id in self._clouds

    def nodes_in(self, cloud: Cloud) -> List[str]:
        """All node ids placed in ``cloud``, sorted for determinism."""
        return sorted(node_id for node_id, c in self._clouds.items() if c is cloud)

    def is_trusted(self, node_id: str) -> bool:
        """Trusted means hosted in the private cloud (never malicious)."""
        return self.cloud_of(node_id) is Cloud.PRIVATE

    def __len__(self) -> int:
        return len(self._clouds)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._clouds
