"""Analytic comparisons and result formatting.

* :mod:`repro.analysis.comparison` regenerates Table 1 of the paper (number
  of phases, message complexity, receiving network size, quorum size for
  each protocol) from the protocol definitions rather than hard-coded
  strings, and provides exact per-request message counts for the ablation
  benchmarks.
* :mod:`repro.analysis.report` formats benchmark results into the tables
  the harness prints.
"""

from repro.analysis.comparison import (
    ProtocolProfile,
    comparison_table,
    messages_per_request,
    profile_for,
)
from repro.analysis.report import (
    format_adaptive_decisions,
    format_results_table,
    format_run_report,
    format_scenario_results,
    format_series,
    format_sharded_results,
    format_timeline,
)

__all__ = [
    "ProtocolProfile",
    "comparison_table",
    "profile_for",
    "messages_per_request",
    "format_adaptive_decisions",
    "format_results_table",
    "format_run_report",
    "format_scenario_results",
    "format_series",
    "format_sharded_results",
    "format_timeline",
]
