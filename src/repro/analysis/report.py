"""Plain-text formatting of benchmark results.

The benchmark harness prints the same rows and series the paper reports;
these helpers keep that formatting in one place so every bench produces a
consistent, diff-able layout in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple


def format_results_table(rows: Iterable[Dict], columns: Sequence[str] = ()) -> str:
    """Render dict rows as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no results)"
    if not columns:
        columns = list(rows[0].keys())
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)


def format_series(
    title: str, points: Sequence[Tuple[float, float]], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as the rows of one figure line."""
    lines = [f"{title}  ({x_label} vs {y_label})"]
    for x, y in points:
        lines.append(f"  {x_label}={x:<12.4f} {y_label}={y:.4f}")
    return "\n".join(lines)


def format_run_report(reports: Iterable, title: str = "Run results") -> str:
    """Summarise runs through the :class:`~repro.cluster.runner.RunReport` protocol.

    ``reports`` is an iterable of anything implementing RunReport —
    :class:`~repro.cluster.runner.RunResult`,
    :class:`~repro.shard.runner.ShardedRunResult`,
    :class:`~repro.cluster.runner.OpenLoopRunResult`, or
    :class:`~repro.runtime.proc.ProcResult` — so one formatter covers every
    backend instead of duck-typing each result shape.  Rows come from
    ``report_row()``; runs with violations are flagged under the table.
    """
    reports = list(reports)
    if not reports:
        return f"{title}\n(no results)"
    rows = [report.report_row() for report in reports]
    lines = [title, format_results_table(rows)]
    violating = [report for report in reports if report.violation_count]
    for report in violating:
        lines.append(
            f"VIOLATIONS: {report.report_row().get('protocol', '?')} reported "
            f"{report.violation_count} violation(s) over {report.committed} committed"
        )
    return "\n".join(lines)


def format_scenario_results(results: Iterable, title: str = "Fault scenarios") -> str:
    """Summarise fault-scenario runs (one row per scenario × mode).

    ``results`` is an iterable of
    :class:`~repro.scenarios.engine.ScenarioResult`; failing runs get their
    individual invariant/expectation failures listed under the table.
    """
    results = list(results)
    rows = [result.as_row() for result in results]
    columns = [
        "scenario", "mode", "completed", "timeouts", "max_view",
        "state_transfers", "failures", "verdict",
    ]
    lines = [title, format_results_table(rows, columns=columns)]
    failing = [result for result in results if not result.ok]
    for result in failing:
        lines.append(f"\n{result.scenario} [{result.mode}] failed:")
        lines.extend(f"  {failure}" for failure in result.failures())
    passed = len(results) - len(failing)
    lines.append(f"\n{passed}/{len(results)} scenario runs passed")
    return "\n".join(lines)


def format_sharded_results(
    shard_rows: Sequence[Dict],
    aggregate_row: Optional[Dict] = None,
    transactions: Optional[Dict] = None,
    title: str = "Sharded deployment",
) -> str:
    """Summarise a sharded run: one row per shard, aggregate, and 2PC counters.

    ``shard_rows`` are the flat dicts of
    :meth:`repro.workload.metrics.ShardLoadSummary.as_row` (or any rows
    sharing their columns); ``aggregate_row`` is the whole-deployment row;
    ``transactions`` is the coordinator counter dict
    (``started`` / ``committed`` / ``aborted``).
    """
    lines = [title, format_results_table(shard_rows)]
    if aggregate_row is not None:
        lines.append("aggregate: " + "  ".join(f"{k}={v}" for k, v in aggregate_row.items()))
    if transactions is not None:
        lines.append(
            "cross-shard transactions: "
            f"{transactions.get('committed', 0)} committed, "
            f"{transactions.get('aborted', 0)} aborted, "
            f"{transactions.get('started', 0)} started"
        )
    return "\n".join(lines)


def format_adaptive_decisions(
    decisions: Iterable,
    title: str = "Adaptive controller decisions",
    shard: Optional[int] = None,
) -> str:
    """Summarise an adaptive controller's switch decisions.

    ``decisions`` is an iterable of
    :class:`~repro.adaptive.ControllerDecision` (or of their ``as_row``
    dicts).  ``shard`` prefixes every row with a shard index, so sharded
    reports can concatenate per-shard controllers into one table.
    """
    rows = [
        decision.as_row() if hasattr(decision, "as_row") else dict(decision)
        for decision in decisions
    ]
    if shard is not None:
        rows = [{"shard": shard, **row} for row in rows]
    if not rows:
        return f"{title}\n(no controller decisions)"
    columns = (["shard"] if shard is not None else []) + [
        "t", "switch", "reason", "m_hat", "c_hat", "byz_events", "churn_events", "applied",
    ]
    return "\n".join([title, format_results_table(rows, columns=columns)])


def format_timeline(title: str, bins: Sequence[Tuple[float, float]], time_unit: str = "s") -> str:
    """Render a throughput timeline (Figure 4 style) as text."""
    lines = [f"{title}  (time [{time_unit}] vs throughput [req/s])"]
    for bin_start, value in bins:
        bar = "#" * max(0, int(value / max(1.0, max(v for _, v in bins)) * 40)) if bins else ""
        lines.append(f"  t={bin_start:<10.4f} {value:>12.1f}  {bar}")
    return "\n".join(lines)
