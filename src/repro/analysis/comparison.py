"""Analytic protocol comparison (Table 1 of the paper).

Table 1 compares the three SeeMoRe modes with Paxos, PBFT, and UpRight on
four parameters: communication phases, message complexity, receiving
network size, and quorum size.  The functions here derive those values from
the protocol parameters ``m``, ``c``, and ``f`` so the benchmark harness can
print the table for any configuration, and also compute the *exact* number
of messages per request used by the message-count ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List



@dataclass(frozen=True)
class ProtocolProfile:
    """One row of Table 1."""

    protocol: str
    phases: int
    message_complexity: str
    receiving_network: str
    quorum_size: str

    def as_row(self) -> Dict[str, str]:
        return {
            "protocol": self.protocol,
            "phases": str(self.phases),
            "messages": self.message_complexity,
            "receiving_network": self.receiving_network,
            "quorum_size": self.quorum_size,
        }


_PROFILES: Dict[str, ProtocolProfile] = {
    "seemore-lion": ProtocolProfile("Lion", 2, "O(n)", "3m+2c+1", "2m+c+1"),
    "seemore-dog": ProtocolProfile("Dog", 2, "O(n^2)", "3m+1", "2m+1"),
    "seemore-peacock": ProtocolProfile("Peacock", 3, "O(n^2)", "3m+1", "2m+1"),
    "cft": ProtocolProfile("Paxos", 2, "O(n)", "2f+1", "f+1"),
    "bft": ProtocolProfile("PBFT", 3, "O(n^2)", "3f+1", "2f+1"),
    "s-upright": ProtocolProfile("UpRight", 2, "O(n^2)", "3m+2c+1", "2m+c+1"),
}


def profile_for(protocol: str) -> ProtocolProfile:
    """The Table 1 row for one protocol (symbolic form)."""
    try:
        return _PROFILES[protocol]
    except KeyError:
        raise KeyError(
            f"unknown protocol {protocol!r}; choose one of {sorted(_PROFILES)}"
        ) from None


def comparison_table(crash_tolerance: int, byzantine_tolerance: int) -> List[Dict[str, str]]:
    """Table 1 with the symbolic sizes evaluated for concrete ``c`` and ``m``.

    The CFT and BFT baselines are sized to tolerate ``f = c + m`` failures,
    matching the way the paper configures them in Section 6.
    """
    c, m = crash_tolerance, byzantine_tolerance
    f = c + m
    concrete = {
        "seemore-lion": (3 * m + 2 * c + 1, 2 * m + c + 1),
        "seemore-dog": (3 * m + 1, 2 * m + 1),
        "seemore-peacock": (3 * m + 1, 2 * m + 1),
        "cft": (2 * f + 1, f + 1),
        "bft": (3 * f + 1, 2 * f + 1),
        "s-upright": (3 * m + 2 * c + 1, 2 * m + c + 1),
    }
    rows = []
    for protocol, profile in _PROFILES.items():
        network, quorum = concrete[protocol]
        row = profile.as_row()
        row["receiving_network"] = f"{profile.receiving_network} = {network}"
        row["quorum_size"] = f"{profile.quorum_size} = {quorum}"
        rows.append(row)
    return rows


def messages_per_request(protocol: str, crash_tolerance: int, byzantine_tolerance: int) -> int:
    """Exact number of protocol messages exchanged per request (normal case).

    Derived from Section 5's message counts:

    * Lion: ``3N`` (prepare to all, accepts back, commit to all);
    * Dog: ``N + (3m+1)^2 + (3m+1) * N`` (prepare to all, accepts among
      proxies, commits + informs + replies fan-out);
    * Peacock: ``N + 2 * (3m+1)^2 + (1+S) * (3m+1)``;
    * Paxos: ``3N'`` with ``N' = 2f+1``;
    * PBFT: ``N' + 2 * N'^2`` with ``N' = 3f+1`` (pre-prepare + two all-to-all phases);
    * S-UpRight: ``N' + 2 * N'^2`` with ``N' = 3m+2c+1``.
    """
    c, m = crash_tolerance, byzantine_tolerance
    f = c + m
    s = 2 * c
    n_seemore = 3 * m + 2 * c + 1
    proxies = 3 * m + 1
    if protocol == "seemore-lion":
        return 3 * n_seemore
    if protocol == "seemore-dog":
        return n_seemore + proxies * proxies + proxies * n_seemore
    if protocol == "seemore-peacock":
        return n_seemore + 2 * proxies * proxies + (1 + s) * proxies
    if protocol == "cft":
        return 3 * (2 * f + 1)
    if protocol == "bft":
        n = 3 * f + 1
        return n + 2 * n * n
    if protocol == "s-upright":
        n = 3 * m + 2 * c + 1
        return n + 2 * n * n
    raise KeyError(f"unknown protocol {protocol!r}")
