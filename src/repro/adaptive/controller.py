"""The closed-loop adaptive mode controller.

SeeMoRe's headline ability is *moving between* modes so a deployment pays
only for the fault model it currently faces (Section 5.4); this module
closes that loop in-protocol.  An :class:`AdaptiveModeController` polls a
running deployment on the simulator clock, pulls fresh evidence records
from every replica and client log, aggregates them into a
:class:`~repro.adaptive.estimator.FaultEnvironmentEstimate`, and picks the
cheapest mode that is safe for the environment it sees:

* **active Byzantine evidence** (equivocation, conflicting votes, invalid
  signatures, forged replies from public-cloud nodes) → **Peacock**: run
  full PBFT among the proxies and trust nothing about who orders;
* **crash/churn evidence** (primary timeouts, suspicion-driven view
  changes, commit-latency drift) without Byzantine proof → **Dog**: keep
  the trusted primary but move the quorum off the crash-suspect private
  cloud, whose ``2m+1`` public quorum no private crash can stall;
* **a quiet environment** → **Lion**: two phases, ``O(n)`` messages, the
  cheapest mode the paper has.

Safety never depends on the controller being right: every switch goes
through the existing consensus-ordered mode-switch path (a trusted
replica's ``MODE-CHANGE`` followed by a view change), never out-of-band,
so a wrong or even adversarially-induced decision costs only performance.
Two dampers keep transient noise from thrashing the cluster:

* **hysteresis** -- a recommendation must survive several consecutive
  polls before the controller acts on it, and de-escalation additionally
  requires a full *quiet period* with no fresh evidence;
* **cooldown** -- a minimum simulated-time gap between initiated switches,
  so an oscillating attacker cannot make the cluster spend its life in
  view changes.

The controller reads evidence through direct references to the in-process
logs -- the simulation stand-in for the signed evidence messages a real
deployment would gossip -- but *acts* only through the protocol, so the
guarantees replicas rely on are exactly those of Section 5.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.adaptive.estimator import FaultEnvironmentEstimate, FaultEnvironmentEstimator
from repro.adaptive.evidence import EvidenceKind, EvidenceRecord
from repro.core.modes import Mode


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tuning knobs of the controller.

    Attributes:
        poll_interval: simulated seconds between controller polls.
        window: sliding evidence window fed to the estimator.
        byzantine_escalation_events: windowed Byzantine-class events needed
            to recommend Peacock.
        churn_escalation_events: windowed churn-class events needed to
            recommend Dog.
        quiet_period: seconds without *any* fresh evidence before the
            controller recommends de-escalating to Lion.
        cooldown: minimum gap between controller-initiated switches.
        hysteresis_polls: consecutive polls that must agree on a
            recommendation before the controller acts on it.
        latency_drift_factor: recent mean commit latency above this
            multiple of the current mode's learned baseline emits one
            synthetic ``LATENCY_DRIFT`` churn record per crossing
            (``0`` disables drift detection).
    """

    poll_interval: float = 0.02
    window: float = 0.2
    byzantine_escalation_events: int = 2
    churn_escalation_events: int = 4
    quiet_period: float = 0.25
    cooldown: float = 0.15
    hysteresis_polls: int = 2
    latency_drift_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.poll_interval <= 0:
            raise ValueError(f"poll interval must be positive: {self.poll_interval}")
        if self.hysteresis_polls < 1:
            raise ValueError(f"hysteresis needs at least one poll: {self.hysteresis_polls}")
        if self.cooldown < 0 or self.quiet_period < 0:
            raise ValueError("cooldown and quiet period cannot be negative")


@dataclass
class ControllerDecision:
    """One switch the controller initiated, with the estimate that drove it."""

    at: float
    from_mode: Mode
    to_mode: Mode
    reason: str
    estimate: FaultEnvironmentEstimate
    applied_at: Optional[float] = None

    @property
    def applied(self) -> bool:
        return self.applied_at is not None

    def as_row(self) -> Dict[str, object]:
        """Flat dict for :func:`repro.analysis.report.format_adaptive_decisions`."""
        return {
            "t": round(self.at, 4),
            "switch": f"{self.from_mode.name.lower()}->{self.to_mode.name.lower()}",
            "reason": self.reason,
            "m_hat": self.estimate.active_byzantine,
            "c_hat": self.estimate.active_crash,
            "byz_events": self.estimate.byzantine_events,
            "churn_events": self.estimate.churn_events,
            "applied": "yes" if self.applied else "no",
        }


class AdaptiveModeController:
    """Evidence-driven Lion/Dog/Peacock switching for one replica group.

    ``deployment`` is duck-typed (a single-cluster
    :class:`~repro.cluster.deployment.Deployment` or one shard of a
    sharded deployment): the controller needs ``simulator``, ``replicas``,
    ``extras['config']``, ``metrics``, and a source of clients.  For
    sharded deployments, pass the *shared* client pool's clients through
    ``clients``; evidence implicating other shards' replicas is filtered
    out by the estimator.
    """

    def __init__(
        self,
        deployment: Any,
        policy: Optional[AdaptivePolicy] = None,
        clients: Optional[Callable[[], List[Any]]] = None,
        name: str = "adaptive",
    ) -> None:
        self.deployment = deployment
        self.policy = policy or AdaptivePolicy()
        self.name = name
        self.config = deployment.extras["config"]
        self.estimator = FaultEnvironmentEstimator(
            private_ids=self.config.private_replicas,
            public_ids=self.config.public_replicas,
            window=self.policy.window,
        )
        self._simulator = deployment.simulator
        self._clients = clients if clients is not None else (lambda: deployment.clients)
        self._offsets: Dict[str, int] = {}
        self._started = False
        self._stopped = False
        # Incremented by every (re)start; pending ticks from a previous
        # poll loop see a stale generation and die, so stop()+start()
        # never leaves two loops running.
        self._generation = 0

        self.decisions: List[ControllerDecision] = []
        #: Observed (at, from_mode, to_mode) transitions, however caused.
        self.mode_transitions: List[Tuple[float, Mode, Mode]] = []
        self.polls = 0
        self.deferred_polls = 0

        self._last_observed_mode: Optional[Mode] = None
        self._last_initiated_at = -float("inf")
        self._pending_recommendation: Optional[Mode] = None
        self._agreeing_polls = 0
        # Per-mode learned latency baseline (mean seconds) for drift detection.
        self._latency_baseline: Dict[Mode, float] = {}
        self._latency_offset = 0
        self._drift_active = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Schedule the poll loop on the simulator clock.

        Idempotent while running, and restartable after :meth:`stop` — a
        controller paused for a maintenance window resumes polling from
        the current state (readers' offsets and the estimator survive).
        """
        if self._started and not self._stopped:
            return
        self._started = True
        self._stopped = False
        self._generation += 1
        self._schedule_tick(self._generation)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_tick(self, generation: int) -> None:
        self._simulator.call_later(
            self.policy.poll_interval,
            lambda: self._tick(generation),
            label=f"{self.name}:poll",
        )

    def _tick(self, generation: int) -> None:
        if self._stopped or generation != self._generation:
            return
        self.poll()
        self._schedule_tick(generation)

    # -- observation ---------------------------------------------------------

    def current_mode(self) -> Mode:
        """The mode the group operates in (most-progressed live replica)."""
        best: Optional[Any] = None
        for replica in self.deployment.replicas.values():
            if replica.crashed:
                continue
            if best is None or replica.view > best.view:
                best = replica
        if best is None:
            return self.deployment.extras.get("mode", Mode.LION)
        return best.mode

    def _gather_evidence(self) -> None:
        logs = [replica.evidence for replica in self.deployment.replicas.values()]
        logs.extend(client.evidence for client in self._clients())
        for log in logs:
            fresh = log.records_since(self._offsets.get(log.observer, 0))
            if fresh:
                self.estimator.observe(fresh)
            # Logical length, not offset+len(fresh): the two differ when the
            # log compacted past a reader that fell behind.
            self._offsets[log.observer] = len(log)

    def _check_latency_drift(self, mode: Mode, now: float) -> None:
        factor = self.policy.latency_drift_factor
        if factor <= 0:
            return
        metrics = self.deployment.metrics
        fresh = [
            record.latency
            for record in metrics.records_since(self._latency_offset)
            if record.completed_at >= now - self.policy.window
        ]
        self._latency_offset = metrics.completed
        if not fresh:
            return
        mean = sum(fresh) / len(fresh)
        baseline = self._latency_baseline.get(mode)
        if baseline is None:
            # First window observed in this mode becomes its baseline, so a
            # switch to a slower mode never reads as drift.
            self._latency_baseline[mode] = mean
            return
        if mean < baseline:
            # The baseline tracks the *best* window seen in this mode: the
            # first window after an escalation is sampled while the attack
            # that caused it still inflates latency, and only a
            # floor-tracking baseline re-sensitizes drift detection once
            # the attack subsides.
            self._latency_baseline[mode] = mean
        if mean > factor * baseline:
            # Edge-triggered: one record per excursion above the baseline,
            # not one per poll while elevated — a sustained excursion must
            # not cross the churn threshold on its own.
            if not self._drift_active:
                self._drift_active = True
                self.estimator.observe(
                    [
                        _drift_record(
                            at=now,
                            observer=self.name,
                            detail=f"mean={mean:.5f}s baseline={baseline:.5f}s in {mode.name}",
                        )
                    ]
                )
        else:
            self._drift_active = False

    # -- the decision loop ----------------------------------------------------

    def recommend(self, estimate: FaultEnvironmentEstimate, current: Mode, now: float) -> Mode:
        """The cheapest mode that is safe for the estimated environment.

        Escalations (toward Peacock) act on thresholds alone; *any*
        de-escalation additionally requires the Byzantine evidence to be a
        full quiet period old.  Without that, churn staying above its
        threshold while an attacker merely pauses past the evidence window
        would step Peacock down to Dog and back — the treadmill the
        dampers exist to prevent.  Mode severity is the enum order
        (Lion < Dog < Peacock).
        """
        policy = self.policy
        if estimate.byzantine_events >= policy.byzantine_escalation_events:
            return Mode.PEACOCK
        if estimate.churn_events >= policy.churn_escalation_events:
            byzantine_quiet = now - estimate.last_byzantine_at
            if Mode.DOG < current and byzantine_quiet < policy.quiet_period:
                return current
            return Mode.DOG
        if estimate.quiet_for(now) >= policy.quiet_period:
            return Mode.LION
        # Not hostile enough to escalate, not quiet long enough to relax.
        return current

    def poll(self) -> Optional[ControllerDecision]:
        """One control iteration; returns the decision if a switch was initiated."""
        self.polls += 1
        now = self._simulator.now
        current = self.current_mode()
        if self._last_observed_mode is None:
            self._last_observed_mode = current
        elif current is not self._last_observed_mode:
            self.mode_transitions.append((now, self._last_observed_mode, current))
            for decision in reversed(self.decisions):
                if decision.to_mode is current and not decision.applied:
                    decision.applied_at = now
                    break
            self._last_observed_mode = current

        self._gather_evidence()
        self._check_latency_drift(current, now)
        estimate = self.estimator.estimate(now)
        target = self.recommend(estimate, current, now)

        if target is current:
            self._pending_recommendation = None
            self._agreeing_polls = 0
            return None

        # Hysteresis: the recommendation must hold for consecutive polls.
        if target is self._pending_recommendation:
            self._agreeing_polls += 1
        else:
            self._pending_recommendation = target
            self._agreeing_polls = 1
        if self._agreeing_polls < self.policy.hysteresis_polls:
            return None

        # Cooldown: never switch again too soon after the last initiation.
        if now - self._last_initiated_at < self.policy.cooldown:
            return None

        # Never race an in-flight view change: evidence keeps accumulating
        # and the next poll retries once the view is installed.
        initiator = self._pick_initiator()
        if initiator is None:
            self.deferred_polls += 1
            return None

        reason = self._reason_for(target, estimate)
        decision = ControllerDecision(
            at=now, from_mode=current, to_mode=target, reason=reason, estimate=estimate
        )
        self.decisions.append(decision)
        self._last_initiated_at = now
        self._pending_recommendation = None
        self._agreeing_polls = 0
        initiator.request_mode_switch(target)
        return decision

    def _pick_initiator(self) -> Optional[Any]:
        """A live trusted replica that is not mid-view-change (paper 5.4)."""
        for replica_id in self.config.private_replicas:
            replica = self.deployment.replicas[replica_id]
            if not replica.crashed and not replica.in_view_change:
                return replica
        return None

    def _reason_for(self, target: Mode, estimate: FaultEnvironmentEstimate) -> str:
        if target is Mode.PEACOCK:
            suspects = ",".join(sorted(estimate.byzantine_suspects)) or "unattributed"
            return f"byzantine evidence ({estimate.byzantine_events} events; {suspects})"
        if target is Mode.DOG:
            return f"crash/churn evidence ({estimate.churn_events} events)"
        return "quiet period elapsed"

    # -- introspection ---------------------------------------------------------

    @property
    def switches_initiated(self) -> int:
        return len(self.decisions)

    @property
    def switches_applied(self) -> int:
        return sum(1 for decision in self.decisions if decision.applied)

    def within_sized_tolerance(self) -> bool:
        """Whether observed activity still fits the deployment's sized (m, c).

        When this goes false no mode can restore the fault bound -- the
        cluster needs *re-sizing* (more rented nodes), which is the
        planner's job, not the controller's; reports surface it as an
        alert.
        """
        estimate = self.estimator.estimate(self._simulator.now)
        return estimate.within_tolerance(
            self.config.byzantine_tolerance, self.config.crash_tolerance
        )

    def decision_rows(self) -> List[Dict[str, object]]:
        return [decision.as_row() for decision in self.decisions]


def _drift_record(at: float, observer: str, detail: str) -> EvidenceRecord:
    return EvidenceRecord(
        at=at,
        kind=EvidenceKind.LATENCY_DRIFT,
        observer=observer,
        suspect=None,
        detail=detail,
    )


__all__ = ["AdaptivePolicy", "ControllerDecision", "AdaptiveModeController"]
