"""Aggregating raw evidence into a per-cluster fault-environment estimate.

The estimator answers the question the controller keeps asking: *given
everything the replicas and clients observed recently, how hostile does
the environment look right now?*  It maintains a sliding window of
evidence records and summarises them as a
:class:`FaultEnvironmentEstimate`: the distinct public-cloud nodes with
Byzantine evidence against them (an activity floor for ``m``), the
distinct private-cloud nodes implicated in timeout/view-change churn (an
activity floor for ``c``), event counts, and the age of the freshest
evidence of each class -- which is what hysteresis and quiet-period
de-escalation key on.

The estimate is deliberately an *activity* estimate, not a worst-case
bound: the deployment is already sized for the advertised ``(m, c)`` via
:mod:`repro.planner.sizing`; the controller's job is to notice when the
*active* environment is calmer (or angrier) than that worst case and pick
the cheapest mode that is still safe.  The sizing equations come back in
through :meth:`FaultEnvironmentEstimate.required_network_size`, which
tells the controller whether the observed activity still fits inside the
cluster it actually has.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

from repro.adaptive.evidence import BYZANTINE_KINDS, CHURN_KINDS, EvidenceKind, EvidenceRecord
from repro.planner.sizing import hybrid_network_size, hybrid_quorum_size


@dataclass(frozen=True)
class FaultEnvironmentEstimate:
    """A point-in-time summary of the observed fault environment.

    Attributes:
        at: simulated time the estimate was taken.
        window: seconds of evidence the counts cover.
        byzantine_suspects: public-cloud nodes with Byzantine evidence
            against them inside the window.
        crash_suspects: private-cloud nodes implicated by churn evidence
            inside the window.
        byzantine_events / churn_events: windowed event counts.
        last_byzantine_at / last_churn_at: time of the freshest evidence of
            each class *ever* observed (``-inf`` when none); unlike the
            counts these never age out, so quiet periods are measurable
            after the window has drained.
    """

    at: float
    window: float
    byzantine_suspects: FrozenSet[str] = frozenset()
    crash_suspects: FrozenSet[str] = frozenset()
    byzantine_events: int = 0
    churn_events: int = 0
    last_byzantine_at: float = -math.inf
    last_churn_at: float = -math.inf

    @property
    def active_byzantine(self) -> int:
        """Distinct public nodes currently showing Byzantine behaviour (``m̂``)."""
        return len(self.byzantine_suspects)

    @property
    def active_crash(self) -> int:
        """Distinct private nodes currently implicated by churn (``ĉ``)."""
        return len(self.crash_suspects)

    def required_network_size(self) -> int:
        """``3m̂ + 2ĉ + 1`` for the *observed* activity (Equation 1)."""
        return hybrid_network_size(self.active_byzantine, self.active_crash)

    def required_quorum(self) -> int:
        """``2m̂ + ĉ + 1`` for the observed activity."""
        return hybrid_quorum_size(self.active_byzantine, self.active_crash)

    def within_tolerance(self, byzantine_tolerance: int, crash_tolerance: int) -> bool:
        """Whether the observed activity fits the deployment's sized ``(m, c)``."""
        return (
            self.active_byzantine <= byzantine_tolerance
            and self.active_crash <= crash_tolerance
        )

    def quiet_for(self, now: float) -> float:
        """Seconds since the freshest evidence of any class (``inf`` if none)."""
        freshest = max(self.last_byzantine_at, self.last_churn_at)
        return math.inf if freshest == -math.inf else now - freshest

    def summary(self) -> str:
        return (
            f"m̂={self.active_byzantine} ĉ={self.active_crash} "
            f"byz={self.byzantine_events} churn={self.churn_events} "
            f"N*={self.required_network_size()}"
        )


class FaultEnvironmentEstimator:
    """Sliding-window aggregator over many nodes' evidence logs.

    Classification rules:

    * Byzantine-class evidence with a named suspect only counts against
      *public-cloud* suspects -- the hybrid model does not admit Byzantine
      behaviour in the private cloud, so an apparent proof against a
      private node is discarded as noise rather than escalated on;
    * *unattributed* Byzantine evidence (``suspect=None`` -- e.g. a
      Peacock vote contradicting an untrusted primary's assignment, which
      proves one of {voter, primary} faulty but not which) counts toward
      the event totals and evidence freshness but adds nobody to the
      suspect set, so ``m̂`` stays a floor of *provably* implicated nodes;
    * churn-class evidence counts regardless of suspect, but only private
      suspects enter ``crash_suspects`` (public churn is absorbed by the
      Byzantine accounting);
    * view changes whose detail marks them as deliberate mode switches are
      ignored entirely -- otherwise the controller's own switches would
      read as churn and inhibit de-escalation.
    """

    def __init__(
        self,
        private_ids: Iterable[str],
        public_ids: Iterable[str],
        window: float = 0.2,
    ) -> None:
        if window <= 0:
            raise ValueError(f"evidence window must be positive: {window}")
        self.window = window
        self._private = frozenset(private_ids)
        self._public = frozenset(public_ids)
        self._members = self._private | self._public
        self._records: List[EvidenceRecord] = []
        self._last_byzantine_at = -math.inf
        self._last_churn_at = -math.inf
        self._counts_by_kind: Dict[EvidenceKind, int] = {}

    # -- feeding ------------------------------------------------------------

    def observe(self, records: Iterable[EvidenceRecord]) -> int:
        """Feed new evidence records; returns how many were admitted.

        Records implicating nodes outside this estimator's cluster are
        dropped -- a sharded deployment runs one estimator per shard over
        shared client logs, and each shard must only weigh evidence about
        its own replicas.
        """
        admitted = 0
        for record in records:
            if record.suspect is not None and record.suspect not in self._members:
                continue
            if record.kind is EvidenceKind.VIEW_CHANGE and record.detail == "mode-switch":
                continue
            if record.kind in BYZANTINE_KINDS:
                if record.suspect is not None and record.suspect not in self._public:
                    continue
                self._last_byzantine_at = max(self._last_byzantine_at, record.at)
            elif record.kind in CHURN_KINDS:
                self._last_churn_at = max(self._last_churn_at, record.at)
            self._records.append(record)
            self._counts_by_kind[record.kind] = self._counts_by_kind.get(record.kind, 0) + 1
            admitted += 1
        return admitted

    # -- estimating ---------------------------------------------------------

    def estimate(self, now: float) -> FaultEnvironmentEstimate:
        """Prune the window and summarise what remains."""
        horizon = now - self.window
        if self._records and self._records[0].at < horizon:
            self._records = [record for record in self._records if record.at >= horizon]
        byzantine_suspects = set()
        crash_suspects = set()
        byzantine_events = 0
        churn_events = 0
        for record in self._records:
            if record.kind in BYZANTINE_KINDS:
                byzantine_events += 1
                if record.suspect is not None:
                    byzantine_suspects.add(record.suspect)
            elif record.kind in CHURN_KINDS:
                churn_events += 1
                if record.suspect is not None and record.suspect in self._private:
                    crash_suspects.add(record.suspect)
        return FaultEnvironmentEstimate(
            at=now,
            window=self.window,
            byzantine_suspects=frozenset(byzantine_suspects),
            crash_suspects=frozenset(crash_suspects),
            byzantine_events=byzantine_events,
            churn_events=churn_events,
            last_byzantine_at=self._last_byzantine_at,
            last_churn_at=self._last_churn_at,
        )

    def counts_by_kind(self) -> Dict[EvidenceKind, int]:
        """Lifetime admitted-record counts per kind (for reports and tests)."""
        return dict(self._counts_by_kind)


__all__ = ["FaultEnvironmentEstimate", "FaultEnvironmentEstimator"]
