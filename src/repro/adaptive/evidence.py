"""Runtime fault evidence: what replicas and clients actually observed.

The adaptive mode controller never inspects protocol internals directly --
it consumes *evidence records* that replicas and clients emit at the
moments they detect something abnormal:

* a request timer expiring (the primary is suspected);
* a view change completing (and whether it was a mode switch or a
  suspicion-driven change);
* a conflicting vote -- a same-view vote whose digest contradicts the
  assignment the trusted primary (or the slot's accepted pre-prepare)
  established;
* an equivocating pre-prepare -- two conflicting assignments for one
  sequence number signed by the same untrusted primary (a hard
  cryptographic proof of Byzantine behaviour);
* an invalid signature on a message that names its signer;
* a forged reply -- a client completed a request and holds signed replies
  with a *different* result from some replica.

Each record carries the simulated time, the observing node, the suspected
node (when one can be named), and a free-form detail string.  Emission is
unconditional and cheap (one append on rare, already-exceptional paths),
so deployments without a controller pay nothing measurable; the controller
reads logs incrementally by offset.

This module is a dependency leaf: ``repro.smr`` imports it, so it must not
import protocol, cluster, or simulation modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class EvidenceKind(enum.Enum):
    """What kind of abnormality an evidence record describes."""

    #: A request timer expired before an ordered request committed.
    TIMEOUT = "timeout"
    #: A view change completed on the observing replica.
    VIEW_CHANGE = "view-change"
    #: A same-view vote contradicted the slot's established digest.
    CONFLICTING_VOTE = "conflicting-vote"
    #: An untrusted primary signed two conflicting assignments for one slot.
    EQUIVOCATION = "equivocation"
    #: A message failed signature verification against its named signer.
    INVALID_SIGNATURE = "invalid-signature"
    #: A replica signed a reply whose result no quorum produced.
    FORGED_REPLY = "forged-reply"
    #: Commit latency drifted far above the mode's learned baseline.
    LATENCY_DRIFT = "latency-drift"


#: Kinds that prove (or strongly indicate) *Byzantine* behaviour by the suspect.
BYZANTINE_KINDS = frozenset(
    {
        EvidenceKind.CONFLICTING_VOTE,
        EvidenceKind.EQUIVOCATION,
        EvidenceKind.INVALID_SIGNATURE,
        EvidenceKind.FORGED_REPLY,
    }
)

#: Kinds that indicate crash/performance churn rather than malice.
CHURN_KINDS = frozenset(
    {EvidenceKind.TIMEOUT, EvidenceKind.VIEW_CHANGE, EvidenceKind.LATENCY_DRIFT}
)


@dataclass(frozen=True)
class EvidenceRecord:
    """One observed abnormality.

    Attributes:
        at: simulated time of the observation.
        kind: what was observed.
        observer: node id that made the observation.
        suspect: node id the evidence implicates, when one can be named.
        detail: free-form context (sequence numbers, views, digests).
    """

    at: float
    kind: EvidenceKind
    observer: str
    suspect: Optional[str] = None
    detail: str = ""


class EvidenceLog:
    """Per-node evidence log with offset-based incremental reads.

    One log per replica and per client.  ``record`` stamps the simulated
    time through the owning node's simulator, so emission sites stay
    one-liners; readers (the controller, tests, reports) pull new records
    with :meth:`records_since` and keep their own offsets.

    Retention is bounded: a sustained attack emits thousands of records
    per simulated second, so once the buffer exceeds
    :data:`MAX_BUFFERED` the oldest half is dropped.  Offsets are
    *logical* (total records ever appended) and stay valid across
    compaction — a reader that fell behind simply misses records older
    than the retained tail, which for the controller only ever means
    under-counting ancient evidence.
    """

    #: Retained-record ceiling; compaction drops the oldest half beyond it.
    MAX_BUFFERED = 4096

    __slots__ = ("observer", "_clock", "_records", "_dropped")

    def __init__(self, observer: str, clock) -> None:
        # ``clock`` is anything with a ``now`` property: a Simulator, a
        # Runtime, or a test stub — the log stamps observation times and
        # nothing else, so it works identically on every backend.
        self.observer = observer
        self._clock = clock
        self._records: List[EvidenceRecord] = []
        self._dropped = 0

    def record(self, kind: EvidenceKind, suspect: Optional[str] = None, detail: str = "") -> None:
        self._records.append(
            EvidenceRecord(
                at=self._clock.now,
                kind=kind,
                observer=self.observer,
                suspect=suspect,
                detail=detail,
            )
        )
        if len(self._records) > self.MAX_BUFFERED:
            drop = len(self._records) // 2
            del self._records[:drop]
            self._dropped += drop

    def records_since(self, offset: int) -> List[EvidenceRecord]:
        """Records appended at or after logical ``offset`` (a previous ``len``)."""
        return self._records[max(0, offset - self._dropped):]

    @property
    def records(self) -> List[EvidenceRecord]:
        """The retained tail of the log (oldest records may be compacted away)."""
        return list(self._records)

    def __len__(self) -> int:
        """Total records ever appended (logical length; offsets key on this)."""
        return self._dropped + len(self._records)


__all__ = [
    "EvidenceKind",
    "EvidenceRecord",
    "EvidenceLog",
    "BYZANTINE_KINDS",
    "CHURN_KINDS",
]
