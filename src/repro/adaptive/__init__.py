"""Closed-loop adaptive mode control (the in-protocol half of Section 5.4).

``repro.adaptive`` turns SeeMoRe's externally-triggered mode switch into a
feedback loop: replicas and clients emit :mod:`evidence <repro.adaptive.evidence>`
records at the moments they observe abnormal behaviour, the
:mod:`estimator <repro.adaptive.estimator>` aggregates them into a
per-cluster fault-environment estimate, and the
:mod:`controller <repro.adaptive.controller>` picks the cheapest safe mode
and drives the switch through the consensus-ordered mode-switch path.
"""

from repro.adaptive.controller import (
    AdaptiveModeController,
    AdaptivePolicy,
    ControllerDecision,
)
from repro.adaptive.estimator import FaultEnvironmentEstimate, FaultEnvironmentEstimator
from repro.adaptive.evidence import (
    BYZANTINE_KINDS,
    CHURN_KINDS,
    EvidenceKind,
    EvidenceLog,
    EvidenceRecord,
)

__all__ = [
    "AdaptiveModeController",
    "AdaptivePolicy",
    "ControllerDecision",
    "FaultEnvironmentEstimate",
    "FaultEnvironmentEstimator",
    "EvidenceKind",
    "EvidenceLog",
    "EvidenceRecord",
    "BYZANTINE_KINDS",
    "CHURN_KINDS",
]
