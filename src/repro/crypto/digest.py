"""Collision-resistant message digests.

The protocols never compare full request payloads; they compare digests
(``D(µ)`` in the paper's notation).  We use SHA-256 over a canonical
serialization of the message content.

Canonicalization (``json.dumps(sort_keys=True)``) dominates the simulator's
CPU profile when recomputed per replica per hop, so protocol messages carry
a *content-addressed digest cache*: :func:`digest_of` computes the canonical
digest of an object's wire form exactly once per object lifetime and stores
it on the object.  ``copy.copy`` of a protocol message deliberately drops
the cache (see ``ProtocolMessage.__copy__``), so Byzantine twists that copy
and mutate a message can never inherit a stale digest.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: Attribute under which :func:`digest_of` caches a message's content digest.
DIGEST_CACHE_ATTR = "_content_digest"
#: Attribute under which ``ProtocolMessage.cached_wire_size`` caches the
#: serialized size estimate (shared with the net layer's fast probe).
WIRE_SIZE_CACHE_ATTR = "_wire_size"
#: Guard flag set alongside any cached wire form; lets the message mixin's
#: ``__setattr__`` test "is there anything to invalidate?" with one probe.
HAS_CACHE_FLAG = "_has_wire_caches"


def _canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes for hashing.

    Uses JSON with sorted keys so that logically equal dicts hash equally
    regardless of insertion order.  Raw ``bytes`` are hashed as-is.
    """
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return json.dumps(value, sort_keys=True, default=_fallback_encoder).encode("utf-8")


def _fallback_encoder(value: Any) -> Any:
    """Encode non-JSON-native objects by their stable repr hook."""
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        return to_wire()
    return repr(value)


def digest_bytes(data: bytes) -> str:
    """Return the hex SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest(value: Any) -> str:
    """Return the hex SHA-256 digest of an arbitrary message value.

    >>> digest({"op": "put", "key": "a"}) == digest({"key": "a", "op": "put"})
    True
    """
    return digest_bytes(_canonical_bytes(value))


def digest_of(message: Any) -> str:
    """Content-addressed digest of a message, canonicalized at most once.

    For objects exposing ``signing_content()`` (every protocol message) the
    digest covers that canonical wire form and is cached on the object, so
    the 3f+1 replicas of a simulated deployment — which all receive the same
    Python object — canonicalize and hash it exactly once in total.  Objects
    exposing ``wire_form()`` (the frozen-signing-content accessor on
    :class:`~repro.smr.messages.ProtocolMessage`) additionally reuse the
    cached content dict.  Plain values fall back to :func:`digest`.

    The cache lives in the instance ``__dict__`` and is **not** inherited by
    ``copy.copy`` of a protocol message; mutate-after-copy attack helpers
    therefore always recompute, which the Byzantine regression tests pin.
    """
    try:
        instance_dict = message.__dict__
    except AttributeError:
        instance_dict = None
    else:
        cached = instance_dict.get(DIGEST_CACHE_ATTR)
        if cached is not None:
            return cached
    # Hot message types define a binary wire frame that encodes the same
    # fields as their signing content without a JSON pass; going through
    # wire_slice() warms the frame cache together with the digest so
    # signing and transmission share one serialization.  Probed first:
    # every protocol message has it, and the hot path ends here.
    wire_slice = getattr(message, "wire_slice", None)
    if wire_slice is not None:
        result = hashlib.sha256(wire_slice()).hexdigest()
    else:
        wire_form = getattr(message, "wire_form", None)
        if callable(wire_form):
            value = wire_form()
        else:
            signing_content = getattr(message, "signing_content", None)
            if callable(signing_content):
                value = signing_content()
            else:
                # Plain values (dicts, strings, ...) have no stable identity
                # to hang a cache off; hash them directly.
                return digest(message)
        result = digest_bytes(_canonical_bytes(value))
    if instance_dict is not None:
        instance_dict[DIGEST_CACHE_ATTR] = result
        instance_dict[HAS_CACHE_FLAG] = True
    return result
