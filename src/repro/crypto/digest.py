"""Collision-resistant message digests.

The protocols never compare full request payloads; they compare digests
(``D(µ)`` in the paper's notation).  We use SHA-256 over a canonical
serialization of the message content.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def _canonical_bytes(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes for hashing.

    Uses JSON with sorted keys so that logically equal dicts hash equally
    regardless of insertion order.  Raw ``bytes`` are hashed as-is.
    """
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    return json.dumps(value, sort_keys=True, default=_fallback_encoder).encode("utf-8")


def _fallback_encoder(value: Any) -> Any:
    """Encode non-JSON-native objects by their stable repr hook."""
    to_wire = getattr(value, "to_wire", None)
    if callable(to_wire):
        return to_wire()
    return repr(value)


def digest_bytes(data: bytes) -> str:
    """Return the hex SHA-256 digest of raw bytes."""
    return hashlib.sha256(data).hexdigest()


def digest(value: Any) -> str:
    """Return the hex SHA-256 digest of an arbitrary message value.

    >>> digest({"op": "put", "key": "a"}) == digest({"key": "a", "op": "put"})
    True
    """
    return digest_bytes(_canonical_bytes(value))
