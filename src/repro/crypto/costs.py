"""CPU cost model for cryptographic operations.

The paper's performance differences between protocols are partly driven by
how many signatures must be produced and verified per request.  The
simulator charges these costs (in simulated seconds) on the node's serial
CPU; this class centralises the constants so experiments can scale them.

Default values approximate the authentication stack of the paper's testbed
(BFT-SMaRt on EC2 c4.2xlarge nodes), where most protocol messages are
authenticated with MAC vectors rather than public-key signatures: MAC-style
authentication costs on the order of a microsecond, "signature" generation
and verification around ten microseconds (a MAC vector over the whole
replica group plus bookkeeping), and hashing a small fixed cost plus a
per-byte term.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoCostModel:
    """Simulated CPU seconds charged for crypto operations.

    Attributes:
        sign_cost: producing a signature.
        verify_cost: verifying a signature.
        mac_cost: computing or checking a pairwise MAC (unsigned but
            authenticated channel traffic).
        digest_base_cost: fixed cost of hashing a message.
        digest_per_byte: additional hashing cost per payload byte.
    """

    sign_cost: float = 10e-6
    verify_cost: float = 6e-6
    mac_cost: float = 1.5e-6
    digest_base_cost: float = 2e-6
    digest_per_byte: float = 2e-9

    def digest_cost(self, payload_bytes: int) -> float:
        """Cost of hashing a payload of ``payload_bytes`` bytes."""
        if payload_bytes < 0:
            raise ValueError(f"payload size cannot be negative: {payload_bytes}")
        return self.digest_base_cost + self.digest_per_byte * payload_bytes

    def scaled(self, factor: float) -> "CryptoCostModel":
        """Return a copy with every cost multiplied by ``factor``.

        Useful for what-if experiments (e.g. hardware-accelerated crypto).
        """
        if factor < 0:
            raise ValueError(f"scale factor cannot be negative: {factor}")
        return CryptoCostModel(
            sign_cost=self.sign_cost * factor,
            verify_cost=self.verify_cost * factor,
            mac_cost=self.mac_cost * factor,
            digest_base_cost=self.digest_base_cost * factor,
            digest_per_byte=self.digest_per_byte * factor,
        )
