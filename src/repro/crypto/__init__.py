"""Cryptographic substrate for the replication protocols.

SeeMoRe (like PBFT) relies on two primitives:

* **message digests** — collision-resistant hashes that protect message
  integrity (Section 3.1 of the paper);
* **public-key style signatures** — a Byzantine replica cannot produce a
  valid signature of a correct replica.

This package implements both with standard-library primitives (SHA-256 and
HMAC over per-node secrets held by a trusted :class:`KeyStore`), plus a
*cost model* that charges simulated CPU time for each operation so that the
performance impact of authentication is visible in the benchmarks, exactly
as it is on the paper's EC2 testbed.
"""

from repro.crypto.digest import digest, digest_bytes, digest_of
from repro.crypto.keys import KeyStore
from repro.crypto.signatures import (
    InvalidSignatureError,
    Signature,
    Signer,
    Verifier,
)
from repro.crypto.costs import CryptoCostModel

__all__ = [
    "digest",
    "digest_bytes",
    "digest_of",
    "KeyStore",
    "Signature",
    "Signer",
    "Verifier",
    "InvalidSignatureError",
    "CryptoCostModel",
]
