"""Simulated public-key signatures.

Signatures are HMAC-SHA256 tags computed with a per-node secret that only
the :class:`~repro.crypto.keys.KeyStore` and the owning node's
:class:`Signer` hold.  Verification recomputes the tag from the claimed
signer's secret, so a node that does not hold another node's secret cannot
produce a tag that verifies -- the forgery-resistance property the paper
assumes.

The indirection through :class:`Signature` (rather than bare strings) lets
Byzantine attack strategies construct deliberately *invalid* signatures and
lets correct replicas detect and discard them.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Dict

from repro.crypto.digest import digest_of


class InvalidSignatureError(Exception):
    """Raised when strict verification is requested and the tag is wrong."""


@dataclass(frozen=True)
class Signature:
    """A signature tag over a message digest, claiming a particular signer."""

    signer_id: str
    payload_digest: str
    tag: str

    def to_wire(self) -> Dict[str, str]:
        """Stable representation used when a signature is itself hashed."""
        return {
            "signer_id": self.signer_id,
            "payload_digest": self.payload_digest,
            "tag": self.tag,
        }


def _compute_tag(secret: bytes, payload_digest: str) -> str:
    return hmac.new(secret, payload_digest.encode("utf-8"), hashlib.sha256).hexdigest()


class Signer:
    """Holds one node's private key and produces signatures with it."""

    def __init__(self, node_id: str, secret: bytes) -> None:
        self._node_id = node_id
        self._secret = secret

    @property
    def node_id(self) -> str:
        return self._node_id

    def sign(self, message: Any) -> Signature:
        """Sign an arbitrary message value (hashed canonically first).

        Protocol messages reuse their content-addressed digest cache, so a
        message is canonicalized at most once across sign and every verify.
        """
        return self.sign_digest(digest_of(message))

    def sign_digest(self, payload_digest: str) -> Signature:
        """Sign an already-computed canonical content digest.

        The fresh signature is born with a warm verification memo for the
        signing secret: ``verify_digest`` would recompute exactly the HMAC
        produced here and compare it to itself, so the ``True`` entry is
        correct by construction.  Forged or corrupted signatures are built
        directly (never through here) and always pay the real HMAC check.
        """
        signature = Signature(
            signer_id=self._node_id,
            payload_digest=payload_digest,
            tag=_compute_tag(self._secret, payload_digest),
        )
        signature.__dict__["_tag_ok_by_secret"] = {self._secret: True}
        return signature

    def forge(self, message: Any, claimed_signer: str) -> Signature:
        """Produce a *bogus* signature claiming to be from ``claimed_signer``.

        Used only by Byzantine attack strategies.  The tag is computed with
        this node's own secret, so any correct verifier rejects it.
        """
        payload_digest = digest_of(message)
        return Signature(
            signer_id=claimed_signer,
            payload_digest=payload_digest,
            tag=_compute_tag(self._secret, "forged:" + payload_digest),
        )


class Verifier:
    """Verifies signatures from any registered node."""

    def __init__(self, secrets: Dict[str, bytes]) -> None:
        self._secrets = secrets

    def verify(self, message: Any, signature: Signature) -> bool:
        """Return ``True`` iff ``signature`` is a valid tag by its claimed signer."""
        return self.verify_digest(digest_of(message), signature)

    def verify_digest(self, payload_digest: str, signature: Signature) -> bool:
        """Verify a signature against an already-computed content digest.

        The HMAC check is memoized on the (immutable) signature object,
        keyed by the claimed signer's secret: a multicast message carries
        one ``Signature`` that every receiver re-verifies, and the tag
        comparison is a pure function of ``(secret, payload_digest, tag)``
        — all frozen — so recomputing it per receiver is pure waste.  The
        content-vs-digest comparison above the cache still runs per call,
        so a mismatched message is always rejected.
        """
        secret = self._secrets.get(signature.signer_id)
        if secret is None:
            return False
        if payload_digest != signature.payload_digest:
            return False
        cache = signature.__dict__.get("_tag_ok_by_secret")
        if cache is None:
            cache = {}
            signature.__dict__["_tag_ok_by_secret"] = cache
        ok = cache.get(secret)
        if ok is None:
            expected = _compute_tag(secret, payload_digest)
            ok = hmac.compare_digest(expected, signature.tag)
            cache[secret] = ok
        return ok

    def require_valid(self, message: Any, signature: Signature) -> None:
        """Raise :class:`InvalidSignatureError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise InvalidSignatureError(
                f"invalid signature claimed by {signature.signer_id!r}"
            )
