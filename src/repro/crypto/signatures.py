"""Simulated public-key signatures.

Signatures are HMAC-SHA256 tags computed with a per-node secret that only
the :class:`~repro.crypto.keys.KeyStore` and the owning node's
:class:`Signer` hold.  Verification recomputes the tag from the claimed
signer's secret, so a node that does not hold another node's secret cannot
produce a tag that verifies -- the forgery-resistance property the paper
assumes.

The indirection through :class:`Signature` (rather than bare strings) lets
Byzantine attack strategies construct deliberately *invalid* signatures and
lets correct replicas detect and discard them.

Two verification fronts are provided:

* :class:`Verifier` — the per-message reference path (recompute-or-memo one
  HMAC per signature);
* :class:`WindowVerifier` — the batch-amortized path replicas and clients
  use on the hot path: per-sender windows of accepted digests are folded
  into one rolling transcript MAC per window, groups of same-sender
  messages are checked with a single group MAC when every signature's memo
  is warm, and *any* anomaly falls back to per-message verification so a
  single tampered message is isolated with exactly the verdicts (and
  evidence) the reference path would produce.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Dict, Iterable, List, Optional

from repro.crypto.digest import digest_of


class InvalidSignatureError(Exception):
    """Raised when strict verification is requested and the tag is wrong."""


class Signature:
    """A signature tag over a message digest, claiming a particular signer.

    A plain ``__slots__`` class rather than a dataclass: one is created per
    signed send, and the slot layout also gives the per-secret verification
    memo (``_tag_ok_by_secret``) a fixed home instead of a dict probe.
    Equality and hashing cover the three public fields, matching the frozen
    dataclass this replaced.
    """

    __slots__ = ("signer_id", "payload_digest", "tag", "_tag_ok_by_secret")

    def __init__(self, signer_id: str, payload_digest: str, tag: str) -> None:
        self.signer_id = signer_id
        self.payload_digest = payload_digest
        self.tag = tag
        self._tag_ok_by_secret: Optional[Dict[bytes, bool]] = None

    def to_wire(self) -> Dict[str, str]:
        """Stable representation used when a signature is itself hashed."""
        return {
            "signer_id": self.signer_id,
            "payload_digest": self.payload_digest,
            "tag": self.tag,
        }

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not Signature:
            return NotImplemented
        return (
            self.signer_id == other.signer_id
            and self.payload_digest == other.payload_digest
            and self.tag == other.tag
        )

    def __hash__(self) -> int:
        return hash((self.signer_id, self.payload_digest, self.tag))

    def __repr__(self) -> str:
        return (
            f"Signature(signer_id={self.signer_id!r}, "
            f"payload_digest={self.payload_digest!r}, tag={self.tag!r})"
        )


def _compute_tag(secret: bytes, payload_digest: str) -> str:
    return hmac.digest(secret, payload_digest.encode("utf-8"), hashlib.sha256).hex()


class Signer:
    """Holds one node's private key and produces signatures with it."""

    def __init__(self, node_id: str, secret: bytes) -> None:
        self._node_id = node_id
        self._secret = secret

    @property
    def node_id(self) -> str:
        return self._node_id

    def sign(self, message: Any) -> Signature:
        """Sign an arbitrary message value (hashed canonically first).

        Protocol messages reuse their content-addressed digest cache, so a
        message is canonicalized at most once across sign and every verify.
        """
        return self.sign_digest(digest_of(message))

    def sign_digest(self, payload_digest: str) -> Signature:
        """Sign an already-computed canonical content digest.

        The fresh signature is born with a warm verification memo for the
        signing secret: ``verify_digest`` would recompute exactly the HMAC
        produced here and compare it to itself, so the ``True`` entry is
        correct by construction.  Forged or corrupted signatures are built
        directly (never through here) and always pay the real HMAC check.
        """
        secret = self._secret
        signature = Signature(
            signer_id=self._node_id,
            payload_digest=payload_digest,
            tag=_compute_tag(secret, payload_digest),
        )
        signature._tag_ok_by_secret = {secret: True}
        return signature

    def forge(self, message: Any, claimed_signer: str) -> Signature:
        """Produce a *bogus* signature claiming to be from ``claimed_signer``.

        Used only by Byzantine attack strategies.  The tag is computed with
        this node's own secret, so any correct verifier rejects it.
        """
        payload_digest = digest_of(message)
        return Signature(
            signer_id=claimed_signer,
            payload_digest=payload_digest,
            tag=_compute_tag(self._secret, "forged:" + payload_digest),
        )


class Verifier:
    """Verifies signatures from any registered node."""

    def __init__(self, secrets: Dict[str, bytes]) -> None:
        self._secrets = secrets

    def verify(self, message: Any, signature: Signature) -> bool:
        """Return ``True`` iff ``signature`` is a valid tag by its claimed signer."""
        return self.verify_digest(digest_of(message), signature)

    def verify_digest(self, payload_digest: str, signature: Signature) -> bool:
        """Verify a signature against an already-computed content digest.

        The HMAC check is memoized on the (immutable) signature object,
        keyed by the claimed signer's secret: a multicast message carries
        one ``Signature`` that every receiver re-verifies, and the tag
        comparison is a pure function of ``(secret, payload_digest, tag)``
        — all frozen — so recomputing it per receiver is pure waste.  The
        content-vs-digest comparison above the cache still runs per call,
        so a mismatched message is always rejected.
        """
        secret = self._secrets.get(signature.signer_id)
        if secret is None:
            return False
        if payload_digest != signature.payload_digest:
            return False
        cache = signature._tag_ok_by_secret
        if cache is None:
            cache = signature._tag_ok_by_secret = {}
        ok = cache.get(secret)
        if ok is None:
            expected = _compute_tag(secret, payload_digest)
            ok = hmac.compare_digest(expected, signature.tag)
            cache[secret] = ok
        return ok

    def require_valid(self, message: Any, signature: Signature) -> None:
        """Raise :class:`InvalidSignatureError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise InvalidSignatureError(
                f"invalid signature claimed by {signature.signer_id!r}"
            )


#: Number of accepted same-sender messages folded into one transcript MAC.
DEFAULT_VERIFY_WINDOW = 64


class WindowVerifier:
    """Batch-amortized verification over per-sender windows.

    Each HMAC tag is an independent claim, so no grouping can *replace*
    per-signature checking soundly; what this class amortizes is everything
    around it.  :meth:`verify` is the flattened per-message fast path: all
    structural checks (signer identity, digest-vs-content match) run
    inline, the real HMAC is paid at most once per signature via the
    signature's memo, and every *accepted* digest is appended to the
    sender's window.  Once a window fills, one rolling HMAC over the
    concatenated digests extends that sender's authenticated transcript —
    a per-channel MAC chain covering every message accepted so far, at a
    cost of one HMAC per ``window`` messages.

    :meth:`verify_batch` checks a same-sender group with a single group
    MAC over claimed-vs-observed digests when every signature's memo is
    warm.  Any anomaly — memo-cold signature, signer mismatch, group MAC
    mismatch — triggers the fallback: each message is re-verified
    individually through the reference :class:`Verifier` path, so exactly
    the tampered messages are identified and the caller can emit the same
    per-message evidence the reference path would.
    """

    def __init__(self, verifier: Verifier, window: int = DEFAULT_VERIFY_WINDOW) -> None:
        if window < 1:
            raise ValueError(f"verification window must be positive: {window}")
        self._verifier = verifier
        self._secrets = verifier._secrets
        self.window = window
        self._window_digests: Dict[str, List[str]] = {}
        self._transcripts: Dict[str, bytes] = {}
        self.messages_verified = 0
        self.windows_sealed = 0
        self.fallback_verifications = 0

    def verify(self, signer_id: str, message: Any) -> bool:
        """Amortized check of one message claimed to come from ``signer_id``.

        Returns exactly the verdict of
        ``message.verify(verifier, expected_signer=signer_id)``.
        """
        if not message.signed:
            return True
        signature = message.signature
        if signature is None or signature.signer_id != signer_id:
            return False
        secret = self._secrets.get(signer_id)
        if secret is None:
            return False
        content_digest = message.__dict__.get("_content_digest") or digest_of(message)
        if content_digest != signature.payload_digest:
            return False
        cache = signature._tag_ok_by_secret
        ok = cache.get(secret) if cache is not None else None
        if ok is None:
            # Memo-cold tag (first sight of a foreign or corrupted
            # signature): pay the real HMAC through the reference path.
            self.fallback_verifications += 1
            ok = self._verifier.verify_digest(content_digest, signature)
        if not ok:
            return False
        self.messages_verified += 1
        window = self._window_digests.get(signer_id)
        if window is None:
            window = self._window_digests[signer_id] = []
        window.append(content_digest)
        if len(window) >= self.window:
            self._seal(signer_id, secret, window)
        return True

    def verify_batch(self, signer_id: str, messages: Iterable[Any]) -> List[int]:
        """Verify a same-sender group; return the indices of invalid messages.

        An empty list means every message verified.  The fast path costs
        two HMACs for the whole group (claimed digests vs observed content
        digests); the fallback isolates exactly the tampered indices.
        """
        messages = list(messages)
        secret = self._secrets.get(signer_id)
        group_ok = secret is not None
        observed: List[str] = []
        claimed: List[str] = []
        if group_ok:
            for message in messages:
                if not message.signed:
                    continue
                signature = message.signature
                if signature is None or signature.signer_id != signer_id:
                    group_ok = False
                    break
                cache = signature._tag_ok_by_secret
                if cache is None or cache.get(secret) is not True:
                    group_ok = False
                    break
                claimed.append(signature.payload_digest)
                observed.append(
                    message.__dict__.get("_content_digest") or digest_of(message)
                )
        if group_ok and claimed:
            group_ok = hmac.compare_digest(
                hmac.digest(secret, "".join(claimed).encode("utf-8"), hashlib.sha256),
                hmac.digest(secret, "".join(observed).encode("utf-8"), hashlib.sha256),
            )
        if group_ok:
            self.messages_verified += len(observed)
            window = self._window_digests.get(signer_id)
            if window is None:
                window = self._window_digests[signer_id] = []
            for content_digest in observed:
                window.append(content_digest)
                if len(window) >= self.window:
                    self._seal(signer_id, secret, window)
            return []
        # Fallback: per-message isolation through the reference path.
        invalid = []
        for index, message in enumerate(messages):
            self.fallback_verifications += 1
            if not message.verify(self._verifier, expected_signer=signer_id):
                invalid.append(index)
        return invalid

    def _seal(self, signer_id: str, secret: bytes, window: List[str]) -> None:
        """Fold one full window into the sender's rolling transcript MAC."""
        previous = self._transcripts.get(signer_id, b"")
        self._transcripts[signer_id] = hmac.digest(
            secret, previous + "".join(window).encode("utf-8"), hashlib.sha256
        )
        self.windows_sealed += 1
        del window[:]

    def transcript_tag(self, signer_id: str) -> bytes:
        """Rolling MAC over every sealed window of digests from ``signer_id``."""
        return self._transcripts.get(signer_id, b"")
