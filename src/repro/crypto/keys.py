"""Key management for the simulated deployment.

In a real deployment every machine holds a private key and knows every other
machine's public key (Section 3.1).  In the simulation the :class:`KeyStore`
plays the role of that PKI: it generates a per-node secret and hands each
node a :class:`~repro.crypto.signatures.Signer` that can only sign with that
node's own secret, and a :class:`~repro.crypto.signatures.Verifier` that can
check everyone's signatures.

A Byzantine node holds only its own signer; it cannot obtain another node's
secret, so it cannot forge signatures -- matching the paper's standard
cryptographic assumptions.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.crypto.signatures import Signer, Verifier


class KeyStore:
    """Deterministic per-node key material and signer/verifier factory."""

    def __init__(self, seed: str = "seemore-keystore") -> None:
        self._seed = seed
        self._secrets: Dict[str, bytes] = {}

    def register(self, node_id: str) -> None:
        """Create key material for ``node_id`` (idempotent)."""
        if node_id in self._secrets:
            return
        material = hashlib.sha256(f"{self._seed}:{node_id}".encode("utf-8")).digest()
        self._secrets[node_id] = material

    def knows(self, node_id: str) -> bool:
        return node_id in self._secrets

    @property
    def node_ids(self) -> list:
        return sorted(self._secrets)

    def signer_for(self, node_id: str) -> Signer:
        """Return the signer holding ``node_id``'s private key."""
        if node_id not in self._secrets:
            raise KeyError(f"unknown node: {node_id!r}; call register() first")
        return Signer(node_id, self._secrets[node_id])

    def verifier(self) -> Verifier:
        """Return a verifier that knows every registered node's public key.

        The verifier shares the keystore's key table, so nodes registered
        later (e.g. clients spawned after the replicas) are verifiable too --
        mirroring a PKI where every machine can look up any public key.
        """
        return Verifier(self._secrets)
