"""A pool of clients sharing one metrics collector (closed or open loop)."""

from __future__ import annotations

from dataclasses import replace as dataclass_replace
from typing import TYPE_CHECKING, List, Optional

from repro.crypto.keys import KeyStore
from repro.net.topology import Cloud, Placement
from repro.runtime.api import Runtime, as_runtime
from repro.smr.client import Client, ClientConfig
from repro.workload.generator import Workload
from repro.workload.metrics import MetricsCollector

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.openloop import ClientPopulation, OpenLoopDriver


class ClientPool:
    """Creates, registers, and manages N closed-loop clients."""

    def __init__(
        self,
        runtime: Runtime,
        keystore: KeyStore,
        placement: Placement,
        client_config: ClientConfig,
        workload: Workload,
        metrics: Optional[MetricsCollector] = None,
        name_prefix: str = "client",
    ) -> None:
        self.runtime = as_runtime(runtime)
        self.keystore = keystore
        self.placement = placement
        self.client_config = client_config
        self.workload = workload
        self.metrics = metrics or MetricsCollector()
        self.name_prefix = name_prefix
        self.clients: List[Client] = []

    def spawn(
        self,
        count: int,
        max_requests_each: Optional[int] = None,
        window: Optional[int] = None,
    ) -> List[Client]:
        """Create ``count`` clients and attach them to the transport.

        ``window`` pipelines that many requests per client (defaults to the
        workload's ``client_window``, normally 1 — the paper's closed loop).
        """
        if count < 1:
            raise ValueError(f"client count must be positive: {count}")
        if window is None:
            window = getattr(self.workload, "client_window", 1)
        verifier = self.keystore.verifier()
        created: List[Client] = []
        for index in range(count):
            client_id = f"{self.name_prefix}-{len(self.clients) + index}"
            self.keystore.register(client_id)
            self.placement.assign(client_id, Cloud.CLIENT)
            client = Client(
                node_id=client_id,
                runtime=self.runtime,
                signer=self.keystore.signer_for(client_id),
                verifier=verifier,
                config=self.client_config,
                operation_factory=self.workload.operation_factory(client_seed=index),
                recorder=self.metrics,
                max_requests=max_requests_each,
                window=window,
            )
            self.runtime.register(client)
            created.append(client)
        self.clients.extend(created)
        return created

    def spawn_open_loop(
        self,
        population: "ClientPopulation",
        connections: int = 32,
        max_backlog: int = 10_000,
        max_busy_retries: Optional[int] = 8,
        window: int = 1,
    ) -> "OpenLoopDriver":
        """Spawn a bounded open-loop connection pool driven by ``population``.

        ``connections`` real connection objects multiplex the population's
        arrivals — memory is O(connections + backlog), never O(users).
        ``max_busy_retries`` bounds how often a request is re-sent after
        signed ``Busy`` rejects before being shed (``None`` retries
        forever, which re-queues overload instead of shedding it — only
        sensible without admission control).  Returns the driver; callers
        ``start()`` it alongside the deployment.
        """
        from repro.workload.openloop import (
            OpenLoopConnection,
            OpenLoopDriver,
            workload_operation_source,
        )

        if connections < 1:
            raise ValueError(f"connection count must be positive: {connections}")
        config = self.client_config
        if max_busy_retries is not None:
            config = dataclass_replace(config, max_busy_retries=max_busy_retries)
        verifier = self.keystore.verifier()
        created: List[Client] = []
        for index in range(connections):
            client_id = f"{self.name_prefix}-{len(self.clients) + index}"
            self.keystore.register(client_id)
            self.placement.assign(client_id, Cloud.CLIENT)
            connection = OpenLoopConnection(
                node_id=client_id,
                runtime=self.runtime,
                signer=self.keystore.signer_for(client_id),
                verifier=verifier,
                config=config,
                operation_factory=lambda timestamp: None,
                recorder=self.metrics,
                window=window,
            )
            self.runtime.register(connection)
            created.append(connection)
        self.clients.extend(created)
        return OpenLoopDriver(
            self.runtime,
            population,
            created,
            workload_operation_source(self.workload),
            max_backlog=max_backlog,
        )

    def start_all(self) -> None:
        for client in self.clients:
            client.start()

    def stop_all(self) -> None:
        for client in self.clients:
            client.stop()

    @property
    def total_completed(self) -> int:
        return sum(client.completed_count for client in self.clients)

    @property
    def total_timeouts(self) -> int:
        return sum(client.timeouts for client in self.clients)

    @property
    def total_shed(self) -> int:
        return sum(client.shed_requests for client in self.clients)
