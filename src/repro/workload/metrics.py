"""Measurement: completions, throughput, latency, and timelines.

The collector receives one record per completed client request and can then
answer the questions the paper's figures ask:

* *throughput* — completed requests per second over a window (x axis of
  Figures 2 and 3);
* *latency* — mean / percentile end-to-end latency (y axis);
* *timeline* — completed requests per time bin, used for the view-change
  experiment of Figure 4;
* *batch sizes* — how full the primary's proposed batches were, reported by
  the batching benchmark alongside per-request latency so the batching
  knobs (``max_batch``, ``linger``) can be tuned against the throughput
  they buy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CompletionRecord:
    """One completed request as reported by a client."""

    client_id: str
    timestamp: int
    sent_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        return self.completed_at - self.sent_at


@dataclass(frozen=True)
class BatchSizeSummary:
    """Distribution of proposed batch sizes across a run."""

    batches: int
    requests: int
    mean: float
    p50: float
    maximum: int
    histogram: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "BatchSizeSummary":
        return cls(batches=0, requests=0, mean=0.0, p50=0.0, maximum=0, histogram={})

    @classmethod
    def of(cls, sizes: List[int]) -> "BatchSizeSummary":
        if not sizes:
            return cls.empty()
        ordered = sorted(sizes)
        histogram: Dict[int, int] = {}
        for size in sizes:
            histogram[size] = histogram.get(size, 0) + 1
        return cls(
            batches=len(sizes),
            requests=sum(sizes),
            mean=sum(sizes) / len(sizes),
            p50=_percentile(ordered, 0.50),
            maximum=ordered[-1],
            histogram=histogram,
        )


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate latency statistics over a set of completions."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    p999: float = 0.0

    @classmethod
    def empty(cls) -> "LatencySummary":
        return cls(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0, p999=0.0)

    @classmethod
    def of(cls, values: List[float]) -> "LatencySummary":
        """Summarise a bare list of latency samples (need not be sorted)."""
        if not values:
            return cls.empty()
        ordered = sorted(values)
        return cls(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=_percentile(ordered, 0.50),
            p95=_percentile(ordered, 0.95),
            p99=_percentile(ordered, 0.99),
            maximum=ordered[-1],
            p999=_percentile(ordered, 0.999),
        )


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Linearly interpolated percentile over an ascending sample list.

    The shared helper behind every percentile this module reports (latency
    p50/p95/p99/p999, batch-size p50): position ``fraction * (n - 1)`` is
    interpolated between its two surrounding order statistics, so p50 of
    ``[1, 2]`` is 1.5 rather than either sample, and p999 keeps resolving
    between the two largest samples instead of saturating at the maximum
    as the old nearest-rank rule did.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction must be in [0, 1]: {fraction}")
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = math.floor(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


@dataclass(frozen=True)
class ShardLoadSummary:
    """Throughput/latency of one shard over a measurement window.

    Sharded deployments keep one collector per shard (fed with the
    single-shard completions the shard served) next to the aggregate
    collector, so reports can show both the per-shard balance and the
    whole-deployment numbers.
    """

    shard: int
    completed: int
    throughput: float
    latency: "LatencySummary"

    def as_row(self) -> Dict[str, object]:
        """Flat dict in the benchmark tables' units (kreq/s, ms)."""
        return {
            "shard": self.shard,
            "completed": self.completed,
            "throughput_kreqs_per_s": round(self.throughput / 1000.0, 3),
            "mean_latency_ms": round(self.latency.mean * 1000.0, 3),
            "p99_latency_ms": round(self.latency.p99 * 1000.0, 3),
        }


def per_shard_load(
    collectors: List["MetricsCollector"],
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[ShardLoadSummary]:
    """Summarise each shard's collector over one shared window."""
    return [
        ShardLoadSummary(
            shard=index,
            completed=len(collector._in_window(start, end)),
            throughput=collector.throughput(start=start, end=end),
            latency=collector.latency(start=start, end=end),
        )
        for index, collector in enumerate(collectors)
    ]


class MetricsCollector:
    """Accumulates completion records from every client in a deployment."""

    def __init__(self) -> None:
        self._records: List[CompletionRecord] = []
        self._per_client_counts: Dict[str, int] = {}
        self._batch_sizes: List[int] = []

    # -- recording (duck-typed interface used by repro.smr.client.Client) -----

    def record_completion(
        self, client_id: str, timestamp: int, sent_at: float, completed_at: float
    ) -> None:
        if completed_at < sent_at:
            raise ValueError("completion cannot precede the send time")
        record = CompletionRecord(
            client_id=client_id, timestamp=timestamp, sent_at=sent_at, completed_at=completed_at
        )
        self._records.append(record)
        self._per_client_counts[client_id] = self._per_client_counts.get(client_id, 0) + 1

    def record_batch(self, size: int) -> None:
        """Record the size of one batch a primary proposed."""
        if size < 1:
            raise ValueError(f"batch sizes are positive: {size}")
        self._batch_sizes.append(size)

    def record_batches(self, sizes: List[int]) -> None:
        for size in sizes:
            self.record_batch(size)

    # -- batch distribution ----------------------------------------------------

    @property
    def batch_sizes(self) -> List[int]:
        return list(self._batch_sizes)

    def batch_summary(self) -> BatchSizeSummary:
        """Distribution of recorded batch sizes (empty when unbatched)."""
        return BatchSizeSummary.of(self._batch_sizes)

    # -- basic counters -------------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self._records)

    @property
    def records(self) -> List[CompletionRecord]:
        return list(self._records)

    def records_since(self, offset: int) -> List[CompletionRecord]:
        """Records appended at or after ``offset`` (a previous ``completed``).

        Incremental accessor for periodic consumers (the adaptive
        controller's latency-drift probe polls tens of times per simulated
        second); unlike :attr:`records` it does not copy the whole history.
        """
        return self._records[offset:]

    def completions_by_client(self) -> Dict[str, int]:
        return dict(self._per_client_counts)

    # -- windows ----------------------------------------------------------------

    def _in_window(self, start: Optional[float], end: Optional[float]) -> List[CompletionRecord]:
        records = self._records
        if start is not None:
            records = [r for r in records if r.completed_at >= start]
        if end is not None:
            records = [r for r in records if r.completed_at < end]
        return records

    def throughput(self, start: Optional[float] = None, end: Optional[float] = None) -> float:
        """Completed requests per second of simulated time in the window."""
        records = self._in_window(start, end)
        if not records:
            return 0.0
        window_start = start if start is not None else min(r.sent_at for r in records)
        window_end = end if end is not None else max(r.completed_at for r in records)
        duration = window_end - window_start
        if duration <= 0:
            return 0.0
        return len(records) / duration

    def latency(self, start: Optional[float] = None, end: Optional[float] = None) -> LatencySummary:
        """Latency statistics for completions inside the window."""
        records = self._in_window(start, end)
        return LatencySummary.of([r.latency for r in records])

    def timeline(
        self, bin_width: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Throughput per time bin: list of ``(bin_start, requests_per_second)``.

        Used by the view-change experiment (Figure 4) to show the stall and
        recovery around a primary failure.
        """
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive: {bin_width}")
        if end is None:
            end = max((r.completed_at for r in self._records), default=start)
        bins: List[Tuple[float, float]] = []
        bin_start = start
        while bin_start < end:
            bin_end = bin_start + bin_width
            count = len(self._in_window(bin_start, bin_end))
            bins.append((bin_start, count / bin_width))
            bin_start = bin_end
        return bins

    def latency_timeline(
        self, bin_width: float, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, LatencySummary]]:
        """Percentile series per time bin: ``(bin_start, LatencySummary)``.

        The open-loop SLO machinery reads this to judge tail latency over
        time instead of over the whole run: a surge that blows p99 for two
        bins and recovers looks very different from one that never recovers,
        and only a binned series can tell them apart.  Completions land in
        the bin of their ``completed_at``.
        """
        if bin_width <= 0:
            raise ValueError(f"bin width must be positive: {bin_width}")
        if end is None:
            end = max((r.completed_at for r in self._records), default=start)
        bins: List[Tuple[float, LatencySummary]] = []
        bin_start = start
        while bin_start < end:
            bin_end = bin_start + bin_width
            records = self._in_window(bin_start, bin_end)
            bins.append((bin_start, LatencySummary.of([r.latency for r in records])))
            bin_start = bin_end
        return bins
