"""Workloads, closed-loop client pools, and measurement.

The paper's evaluation uses the classic x/y micro-benchmarks (request
payload of x KB, reply payload of y KB) with closed-loop clients, sweeping
the number of clients and measuring end-to-end throughput and latency.
This package provides those pieces:

* :class:`~repro.workload.generator.Workload` — named payload-size recipes
  (0/0, 0/4, 4/0) plus a key-value workload for the examples;
* :class:`~repro.workload.metrics.MetricsCollector` — completion records,
  throughput, latency percentiles, and timeline binning (Figure 4);
* :class:`~repro.workload.client_pool.ClientPool` — spawns and manages N
  closed-loop clients sharing a collector.
"""

from repro.workload.generator import (
    KeyValueWorkload,
    ShardedKeyValueWorkload,
    Workload,
    WorkloadSpec,
    kv_workload,
    microbenchmark,
    sharded_kv_workload,
)
from repro.workload.metrics import (
    BatchSizeSummary,
    LatencySummary,
    MetricsCollector,
    ShardLoadSummary,
    per_shard_load,
)
from repro.workload.client_pool import ClientPool
from repro.workload.openloop import (
    ArrivalProcess,
    BurstyArrivals,
    ClientPopulation,
    DiurnalArrivals,
    OpenLoopConnection,
    OpenLoopDriver,
    PoissonArrivals,
    workload_operation_source,
)
from repro.workload.slo import SlaViolation, SloEvaluation, SloSpec, evaluate_slo

__all__ = [
    "Workload",
    "WorkloadSpec",
    "KeyValueWorkload",
    "ShardedKeyValueWorkload",
    "microbenchmark",
    "kv_workload",
    "sharded_kv_workload",
    "MetricsCollector",
    "LatencySummary",
    "BatchSizeSummary",
    "ShardLoadSummary",
    "per_shard_load",
    "ClientPool",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ClientPopulation",
    "OpenLoopConnection",
    "OpenLoopDriver",
    "workload_operation_source",
    "SloSpec",
    "SloEvaluation",
    "SlaViolation",
    "evaluate_slo",
]
