"""Latency service-level objectives over binned percentile series.

An SLO is a statement like "p99 latency stays under 50 ms in every 250 ms
window, with at most 10% of windows in violation".  Judging it over a
*binned* series rather than the whole run matters in both directions:

* a surge that blows p99 for two bins and recovers is invisible in the
  whole-run percentile (drowned by the quiet majority of samples), yet it
  is exactly what an SLO exists to catch;
* a deliberately tolerated violation budget (``max_violation_fraction``)
  expresses the standard "99.9% of 5-minute windows" contract shape.

:class:`SlaViolation` adapts the evaluation to the scenario engine's
invariant-checker protocol, so open-loop surge scenarios can assert "the
SLO held with admission control on" and "the checker fires with it off"
with the same machinery the safety checkers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.workload.metrics import LatencySummary, MetricsCollector

#: Percentiles an SLO may target, mapped to the summary field reporting them.
_SUPPORTED_PERCENTILES = {0.5: "p50", 0.95: "p95", 0.99: "p99", 0.999: "p999"}


@dataclass(frozen=True)
class SloSpec:
    """One latency objective: a percentile bound judged per time bin.

    Attributes:
        percentile: target percentile — one of 0.5, 0.95, 0.99, 0.999
            (the percentiles :class:`~repro.workload.metrics.LatencySummary`
            reports).
        bound: latency bound in seconds the percentile must stay under.
        max_violation_fraction: fraction of (non-empty) bins allowed to
            violate the bound before the SLO as a whole is violated.  0.0
            is the strict "every window" contract.
        bin_width: evaluation window width in seconds.
    """

    percentile: float = 0.99
    bound: float = 0.05
    max_violation_fraction: float = 0.0
    bin_width: float = 0.25

    def __post_init__(self) -> None:
        if self.percentile not in _SUPPORTED_PERCENTILES:
            supported = sorted(_SUPPORTED_PERCENTILES)
            raise ValueError(f"percentile must be one of {supported}: {self.percentile}")
        if self.bound <= 0:
            raise ValueError(f"latency bound must be positive: {self.bound}")
        if not 0.0 <= self.max_violation_fraction < 1.0:
            raise ValueError(
                f"violation budget must be in [0, 1): {self.max_violation_fraction}"
            )
        if self.bin_width <= 0:
            raise ValueError(f"bin width must be positive: {self.bin_width}")

    @property
    def field_name(self) -> str:
        return _SUPPORTED_PERCENTILES[self.percentile]

    def value_of(self, summary: LatencySummary) -> float:
        """The targeted percentile of one bin's summary."""
        return getattr(summary, self.field_name)

    def describe(self) -> str:
        return (
            f"p{self.percentile * 100:g} <= {self.bound * 1000:g}ms "
            f"per {self.bin_width * 1000:g}ms bin"
        )


@dataclass(frozen=True)
class SloEvaluation:
    """Outcome of judging one :class:`SloSpec` over a latency timeline."""

    spec: SloSpec
    bins: int
    violating_bins: int
    worst: float
    first_violation_at: Optional[float] = None

    @property
    def violation_fraction(self) -> float:
        if self.bins == 0:
            return 0.0
        return self.violating_bins / self.bins

    @property
    def holds(self) -> bool:
        """Whether the SLO held (vacuously true with no non-empty bins)."""
        return self.violation_fraction <= self.spec.max_violation_fraction

    def describe(self) -> str:
        status = "held" if self.holds else "VIOLATED"
        return (
            f"SLO {self.spec.describe()}: {status} "
            f"({self.violating_bins}/{self.bins} bins over bound, "
            f"worst {self.worst * 1000:.1f}ms)"
        )


def evaluate_slo(
    spec: SloSpec,
    metrics: MetricsCollector,
    start: float = 0.0,
    end: Optional[float] = None,
) -> SloEvaluation:
    """Judge ``spec`` over ``metrics``' completions in ``[start, end)``.

    Bins with no completions are skipped — they carry no latency evidence
    either way (a bin that is empty *because* everything timed out shows up
    in the neighbouring bins' percentiles and in the shed/drop counters,
    not here).
    """
    timeline = metrics.latency_timeline(spec.bin_width, start=start, end=end)
    populated: List[Tuple[float, LatencySummary]] = [
        (bin_start, summary) for bin_start, summary in timeline if summary.count > 0
    ]
    violating = 0
    worst = 0.0
    first_violation_at: Optional[float] = None
    for bin_start, summary in populated:
        value = spec.value_of(summary)
        worst = max(worst, value)
        if value > spec.bound:
            violating += 1
            if first_violation_at is None:
                first_violation_at = bin_start
    return SloEvaluation(
        spec=spec,
        bins=len(populated),
        violating_bins=violating,
        worst=worst,
        first_violation_at=first_violation_at,
    )


class SlaViolation:
    """Invariant checker: continuously judge an :class:`SloSpec` mid-run.

    Follows the :class:`repro.scenarios.invariants.InvariantChecker`
    protocol (attach / check / finalize, each returning violation strings)
    so scenario engines can sample it on their normal check interval.  The
    periodic check only judges *closed* bins (bins whose end is behind the
    clock) to avoid flagging a half-filled bin whose percentile is still
    moving; finalize judges everything.

    Reported violations are cumulative and deduplicated per bin, matching
    the engine's "list of violation strings" convention.
    """

    name = "sla-violation"

    def __init__(self, spec: SloSpec, start: float = 0.0) -> None:
        self.spec = spec
        self.start = start
        self._reported_bins: set = set()
        self._violations: List[str] = []
        self._total_bins = 0
        self._metrics: Optional[MetricsCollector] = None

    def attach(self, deployment) -> None:
        self._metrics = deployment.metrics

    def _scan(self, deployment, end: Optional[float]) -> List[str]:
        metrics = self._metrics if self._metrics is not None else deployment.metrics
        timeline = metrics.latency_timeline(self.spec.bin_width, start=self.start, end=end)
        for bin_start, summary in timeline:
            if summary.count == 0 or bin_start in self._reported_bins:
                continue
            value = self.spec.value_of(summary)
            if value > self.spec.bound:
                self._reported_bins.add(bin_start)
                self._violations.append(
                    f"{self.spec.field_name} {value * 1000:.1f}ms > "
                    f"{self.spec.bound * 1000:g}ms in bin starting at {bin_start:.3f}s"
                )
        return self._current_verdict()

    def _current_verdict(self) -> List[str]:
        """Violation strings iff the budget is exhausted.

        Individual over-bound bins are tracked internally; the checker only
        *reports* once the violating fraction exceeds the spec's budget, so
        a tolerated blip does not fail a scenario.
        """
        bins = len(self._reported_bins)
        if bins == 0:
            return []
        if self._total_bins == 0:
            return []
        fraction = bins / self._total_bins
        if fraction > self.spec.max_violation_fraction:
            return list(self._violations)
        return []

    def check(self, deployment) -> List[str]:
        # Judge only bins that have fully closed by now.
        now = deployment.simulator.now
        closed_end = (
            self.start
            + ((now - self.start) // self.spec.bin_width) * self.spec.bin_width
        )
        if closed_end <= self.start:
            return []
        self._count_bins(deployment, closed_end)
        return self._scan(deployment, closed_end)

    def finalize(self, deployment) -> List[str]:
        self._count_bins(deployment, None)
        return self._scan(deployment, None)

    def _count_bins(self, deployment, end: Optional[float]) -> None:
        metrics = self._metrics if self._metrics is not None else deployment.metrics
        timeline = metrics.latency_timeline(self.spec.bin_width, start=self.start, end=end)
        self._total_bins = sum(1 for _, summary in timeline if summary.count > 0)


__all__ = ["SloSpec", "SloEvaluation", "SlaViolation", "evaluate_slo"]
