"""Open-loop workload engine: millions of modeled users, bounded memory.

The paper's evaluation (like most BFT evaluations) is *closed loop*: N
client objects each wait for a reply before sending again, so offered load
can never exceed service capacity and overload is unobservable.  Real
front-end traffic is *open loop*: users arrive according to an external
process and do not politely wait for each other, so a surge can offer more
load than the cluster can serve — which is exactly the regime admission
control (:mod:`repro.core.admission`) and latency SLOs
(:mod:`repro.workload.slo`) exist for.

This module models an open-loop population three ways at once:

* **arrival processes** (:class:`PoissonArrivals`, :class:`BurstyArrivals`,
  :class:`DiurnalArrivals`) — seed-deterministic generators of arrival
  *times*, so a run is exactly reproducible;
* **virtual users** (:class:`ClientPopulation`) — an O(1)-memory sampler
  decides *which* of millions of modeled users each arrival belongs to
  (Zipfian by default: real populations are skewed), without ever
  materializing a per-user object;
* **a bounded connection pool** (:class:`OpenLoopDriver` multiplexing
  arrivals over a few :class:`OpenLoopConnection` objects) — memory is
  O(active requests + bounded backlog), never O(users).

The latency clock of every request starts at its *arrival*, not at the
moment a connection picks it up, so queueing behind the pool counts toward
the measured percentiles — the honesty property that distinguishes
open-loop from closed-loop measurement (closed-loop numbers silently hide
that queueing as "think time").
"""

from __future__ import annotations

import math
import random
from collections import OrderedDict, deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.runtime.api import as_runtime
from repro.smr.client import Client
from repro.smr.state_machine import Operation
from repro.workload.generator import Workload

OperationSource = Callable[[int], Operation]


# -- arrival processes --------------------------------------------------------


class ArrivalProcess:
    """Deterministic stream of arrival times (simulated seconds).

    Subclasses define an instantaneous rate curve (:meth:`rate_at`, in
    requests per second) bounded by :meth:`peak_rate`; the base class turns
    the curve into a sample path by Lewis–Shedler thinning: candidate
    arrivals are drawn from a homogeneous Poisson process at the peak rate
    and accepted with probability ``rate_at(t) / peak_rate``.  The whole
    path is a pure function of the seed.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(0x9E3779B1 ^ (seed * 2_654_435_761 + 1))

    def rate_at(self, t: float) -> float:
        """Instantaneous mean arrival rate at time ``t`` (requests/second)."""
        raise NotImplementedError

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` over all ``t``."""
        raise NotImplementedError

    def next_after(self, t: float) -> float:
        """The next arrival time strictly after ``t`` (thinning sampler)."""
        peak = self.peak_rate()
        rng = self._rng
        while True:
            t += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(t):
                return t


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals: i.i.d. exponential inter-arrival times."""

    def __init__(self, rate: float, seed: int = 0) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive: {rate}")
        super().__init__(seed)
        self.rate = rate

    def rate_at(self, t: float) -> float:
        return self.rate

    def peak_rate(self) -> float:
        return self.rate

    def next_after(self, t: float) -> float:
        # Constant rate: sample the exponential directly, no thinning loop.
        return t + self._rng.expovariate(self.rate)


class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson arrivals (a deterministic burst schedule).

    The rate alternates between ``burst_rate`` (for ``on_duration`` seconds)
    and ``base_rate`` (for ``off_duration`` seconds), starting in the burst
    phase at ``t = 0``.  The phase schedule is deterministic — only the
    arrival times within each phase are random — so experiments can place a
    surge exactly where they want it.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        on_duration: float,
        off_duration: float,
        seed: int = 0,
    ) -> None:
        if base_rate < 0:
            raise ValueError(f"base rate cannot be negative: {base_rate}")
        if burst_rate <= 0 or burst_rate < base_rate:
            raise ValueError(
                f"burst rate must be positive and >= base rate: {burst_rate} vs {base_rate}"
            )
        if on_duration <= 0 or off_duration <= 0:
            raise ValueError("phase durations must be positive")
        super().__init__(seed)
        self.base_rate = base_rate
        self.burst_rate = burst_rate
        self.on_duration = on_duration
        self.off_duration = off_duration

    def rate_at(self, t: float) -> float:
        phase = t % (self.on_duration + self.off_duration)
        return self.burst_rate if phase < self.on_duration else self.base_rate

    def peak_rate(self) -> float:
        return self.burst_rate


class DiurnalArrivals(ArrivalProcess):
    """A sinusoidal day/night rate curve integrating to ``daily_volume``.

    The rate at time ``t`` is ``mean * (1 - amplitude * cos(2πt / day))``
    with ``mean = daily_volume / day_length``: the trough sits at ``t = 0``
    (midnight), the peak at mid-day, and because the cosine integrates to
    zero over a full day the expected number of arrivals per day is exactly
    ``daily_volume`` for any amplitude in [0, 1].
    """

    def __init__(
        self,
        daily_volume: float,
        day_length: float = 86_400.0,
        amplitude: float = 0.8,
        seed: int = 0,
    ) -> None:
        if daily_volume <= 0:
            raise ValueError(f"daily volume must be positive: {daily_volume}")
        if day_length <= 0:
            raise ValueError(f"day length must be positive: {day_length}")
        if not 0.0 <= amplitude <= 1.0:
            raise ValueError(f"amplitude must be in [0, 1]: {amplitude}")
        super().__init__(seed)
        self.daily_volume = daily_volume
        self.day_length = day_length
        self.amplitude = amplitude
        self.mean_rate = daily_volume / day_length

    def rate_at(self, t: float) -> float:
        phase = (t % self.day_length) / self.day_length
        return self.mean_rate * (1.0 - self.amplitude * math.cos(2.0 * math.pi * phase))

    def peak_rate(self) -> float:
        return self.mean_rate * (1.0 + self.amplitude)


# -- virtual users ------------------------------------------------------------


class _ZipfSampler:
    """O(1)-memory Zipf(theta) sampler over ranks ``[0, n)`` (Gray et al.).

    The approximate-inversion sampler of "Quickly Generating Billion-Record
    Synthetic Databases": constant work per sample, no cumulative table.
    The zeta normalizer sums the first ``_EXACT_TERMS`` terms exactly and
    integral-approximates the tail, so construction is O(1) in ``n`` too —
    the property that lets a million-user population exist in a few hundred
    bytes (contrast the cumulative-inversion key sampler in
    :class:`repro.workload.generator.KeyValueWorkload`, which is exact but
    O(key_space), fine for a thousand keys and fatal for a million users).
    """

    _EXACT_TERMS = 10_000

    def __init__(self, n: int, theta: float) -> None:
        if n < 2:
            raise ValueError(f"zipf needs at least two ranks: {n}")
        if not 0.0 < theta < 1.0:
            raise ValueError(f"zipf theta must be in (0, 1): {theta}")
        self.n = n
        self.theta = theta
        self.zetan = self._zeta(n, theta)
        self.zeta2 = 1.0 + 0.5**theta
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (1.0 - self.zeta2 / self.zetan)

    @classmethod
    def _zeta(cls, n: int, theta: float) -> float:
        exact = min(n, cls._EXACT_TERMS)
        total = 0.0
        for rank in range(1, exact + 1):
            total += rank**-theta
        if n > exact:
            # Integral tail: sum_{exact+1..n} x^-theta ~= ∫_exact^n x^-theta dx.
            total += (n ** (1.0 - theta) - exact ** (1.0 - theta)) / (1.0 - theta)
        return total

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < self.zeta2:
            return 1
        return min(self.n - 1, int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha))


class ClientPopulation:
    """Millions of modeled users as an arrival process — O(1) state.

    A population is *not* a collection of client objects: it is a stream of
    ``(arrival_time, user_id)`` events, where the arrival times come from
    an :class:`ArrivalProcess` and the user ids from a constant-memory
    sampler over ``[0, num_users)``.  Rank 0 is the most active user under
    the default Zipfian distribution.  Everything is a pure function of
    the seeds, so two runs with equal configuration see the identical
    event stream.
    """

    def __init__(
        self,
        num_users: int,
        arrivals: ArrivalProcess,
        seed: int = 0,
        user_distribution: str = "zipfian",
        zipf_theta: float = 0.99,
    ) -> None:
        if num_users < 1:
            raise ValueError(f"population needs at least one user: {num_users}")
        self.num_users = num_users
        self.arrivals = arrivals
        self.seed = seed
        self._rng = random.Random(seed * 48_271 + 11)
        if user_distribution == "zipfian":
            sampler = _ZipfSampler(max(2, num_users), zipf_theta)
            self._sample_user = lambda: sampler.sample(self._rng) % num_users
        elif user_distribution == "uniform":
            self._sample_user = lambda: self._rng.randrange(num_users)
        else:
            raise ValueError(
                f"unknown user distribution {user_distribution!r}; "
                f"choose 'uniform' or 'zipfian'"
            )
        self._clock = 0.0

    def next_event(self) -> Tuple[float, int]:
        """``(arrival_time, user_id)`` of the next request; monotone in time."""
        self._clock = self.arrivals.next_after(self._clock)
        return self._clock, self._sample_user()


def workload_operation_source(workload: Workload, cache_size: int = 1024) -> OperationSource:
    """Per-user operation streams over ``workload``, bounded by an LRU cache.

    ``workload.operation_factory(client_seed=user)`` gives each user a
    deterministic operation stream (reusing the existing key-distribution
    machinery, Zipfian keys included).  The LRU keeps at most
    ``cache_size`` live streams, so a skew-hot population pays the factory
    construction cost only on cold users and memory stays O(cache_size),
    not O(users).
    """
    if cache_size < 1:
        raise ValueError(f"cache size must be positive: {cache_size}")
    streams: "OrderedDict[int, list]" = OrderedDict()

    def source(user_id: int) -> Operation:
        entry = streams.get(user_id)
        if entry is None:
            entry = [workload.operation_factory(client_seed=user_id), 0]
            streams[user_id] = entry
            if len(streams) > cache_size:
                streams.popitem(last=False)
        else:
            streams.move_to_end(user_id)
        entry[1] += 1
        return entry[0](entry[1])

    return source


# -- the driver ---------------------------------------------------------------


class OpenLoopConnection(Client):
    """One real connection multiplexing many virtual users' requests.

    A thin :class:`~repro.smr.client.Client` subclass that pulls
    ``(operation, arrival_time)`` items from its driver's backlog instead
    of generating a closed loop, and stamps each latency record with the
    request's *arrival* time.  Give-up-after-N-``Busy``-rejects (the
    config's ``max_busy_retries``) reports shed requests to the driver.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.driver: Optional["OpenLoopDriver"] = None
        self._current_arrival: Optional[float] = None

    def _next_operation(self, timestamp: int) -> Optional[Operation]:
        driver = self.driver
        if driver is None:
            return None
        item = driver._pop()
        if item is None:
            return None
        operation, arrival = item
        self._current_arrival = arrival
        return operation

    def _sent_time(self) -> float:
        arrival = self._current_arrival
        if arrival is None:
            return self.now
        self._current_arrival = None
        return arrival

    def on_shed(self, timestamp: int) -> None:
        if self.driver is not None:
            self.driver.shed += 1


class OpenLoopDriver:
    """Feeds a :class:`ClientPopulation` through a bounded connection pool.

    Each arrival lands in a bounded backlog (full backlog ⇒ the arrival is
    *dropped* and counted); idle connections drain the backlog, one request
    per free window slot.  Three counters tell the overload story:

    * ``offered`` — arrivals the population generated;
    * ``dropped`` — arrivals discarded because the backlog was full (client
      -side queue overflow; these never reached the cluster);
    * ``shed`` — requests abandoned after ``max_busy_retries`` consecutive
      signed ``Busy`` rejects from an admission-controlled primary.

    Dropped and shed requests record **no latency sample** — an overloaded
    system's served-latency percentiles stay honest, and the excess shows
    up in the counters where an SLO report can see it.
    """

    def __init__(
        self,
        runtime: Any,
        population: ClientPopulation,
        connections: List[OpenLoopConnection],
        operation_source: OperationSource,
        max_backlog: int = 10_000,
    ) -> None:
        if not connections:
            raise ValueError("an open-loop driver needs at least one connection")
        if max_backlog < 1:
            raise ValueError(f"backlog bound must be positive: {max_backlog}")
        self.runtime = as_runtime(runtime)
        self.population = population
        self.connections = list(connections)
        self.operation_source = operation_source
        self.max_backlog = max_backlog
        self._backlog: Deque[Tuple[float, int]] = deque()
        self.offered = 0
        self.dropped = 0
        self.shed = 0
        self._pending_event: Optional[Tuple[float, int]] = None
        self._stopped = True
        self._timer = self.runtime.timer(self._on_arrival, label="openloop-arrivals")
        for connection in self.connections:
            connection.driver = self

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Start generating arrivals (and the connections, if not started)."""
        self._stopped = False
        for connection in self.connections:
            connection.start()
        self._advance()

    def stop(self) -> None:
        self._stopped = True
        self._timer.stop()
        for connection in self.connections:
            connection.stop()

    # -- introspection -------------------------------------------------------

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog)

    @property
    def active_requests(self) -> int:
        """Requests currently in flight across the connection pool."""
        return sum(connection.outstanding_count for connection in self.connections)

    @property
    def completed(self) -> int:
        return sum(connection.completed_count for connection in self.connections)

    @property
    def busy_rejects(self) -> int:
        return sum(connection.busy_rejects for connection in self.connections)

    def stats(self) -> dict:
        """Flat counters for reports: offered / completed / dropped / shed."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "dropped": self.dropped,
            "shed": self.shed,
            "busy_rejects": self.busy_rejects,
            "backlog_depth": self.backlog_depth,
            "active_requests": self.active_requests,
        }

    # -- arrival pump --------------------------------------------------------

    def _advance(self) -> None:
        if self._stopped:
            return
        event = self.population.next_event()
        self._pending_event = event
        self._timer.start(max(0.0, event[0] - self.runtime.now))

    def _on_arrival(self) -> None:
        if self._stopped:
            return
        event = self._pending_event
        if event is None:
            return
        self._pending_event = None
        self.offered += 1
        if len(self._backlog) >= self.max_backlog:
            self.dropped += 1
        else:
            self._backlog.append(event)
            self._kick()
        self._advance()

    def _kick(self) -> None:
        """Wake one connection with a free window slot, if any.

        Connections whose windows are full drain the backlog on their own
        as completions free slots (``_complete`` refills the window, which
        pulls from the backlog via :meth:`OpenLoopConnection._next_operation`).
        """
        for connection in self.connections:
            if connection.outstanding_count < connection.window:
                connection._fill_window()
                return

    def _pop(self) -> Optional[Tuple[Operation, float]]:
        """Hand one backlog item to a connection: ``(operation, arrival_time)``."""
        if not self._backlog:
            return None
        arrival_time, user_id = self._backlog.popleft()
        return self.operation_source(user_id), arrival_time


__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "ClientPopulation",
    "OpenLoopConnection",
    "OpenLoopDriver",
    "workload_operation_source",
]
