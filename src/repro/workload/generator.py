"""Workload definitions.

A workload is a recipe for the operations clients issue and the size of the
replies the service returns.  The paper's micro-benchmarks are named
``"x/y"``: request payloads of x KB and reply payloads of y KB (``0/0``,
``0/4``, and ``4/0`` appear in Figures 2 and 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

from repro.smr.state_machine import KeyValueStore, NullStateMachine, Operation, StateMachine

KILOBYTE = 1024


@dataclass(frozen=True)
class Workload:
    """A named workload: how to build operations and the service they run on.

    Attributes:
        name: human-readable name (e.g. ``"0/4"``).
        request_payload_bytes: extra payload attached to every request.
        reply_payload_bytes: payload the service attaches to every reply.
        client_window: requests each client keeps in flight.  ``1`` is the
            paper's closed loop; larger windows pipeline requests so batching
            primaries see enough concurrent load to fill their batches.
    """

    name: str
    request_payload_bytes: int = 0
    reply_payload_bytes: int = 0
    client_window: int = 1

    def with_client_window(self, window: int) -> "Workload":
        """Copy of this workload with a different per-client pipeline window."""
        if window < 1:
            raise ValueError(f"client window must be at least 1: {window}")
        return replace(self, client_window=window)

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        """Return a factory mapping a client timestamp to an operation."""
        payload = "x" * self.request_payload_bytes

        def factory(timestamp: int) -> Operation:
            return Operation("noop", (), payload)

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        """Return a factory for the state machine replicas should run."""
        reply_bytes = self.reply_payload_bytes

        def factory() -> StateMachine:
            return NullStateMachine(reply_payload_size=reply_bytes)

        return factory


def microbenchmark(name: str) -> Workload:
    """Build one of the paper's x/y micro-benchmarks.

    >>> microbenchmark("0/0").request_payload_bytes
    0
    >>> microbenchmark("4/0").request_payload_bytes
    4096
    """
    try:
        request_kb_text, reply_kb_text = name.split("/")
        request_kb = int(request_kb_text)
        reply_kb = int(reply_kb_text)
    except (ValueError, AttributeError):
        raise ValueError(f"micro-benchmark names look like '0/4', got {name!r}") from None
    if request_kb < 0 or reply_kb < 0:
        raise ValueError(f"payload sizes cannot be negative: {name!r}")
    return Workload(
        name=name,
        request_payload_bytes=request_kb * KILOBYTE,
        reply_payload_bytes=reply_kb * KILOBYTE,
    )


@dataclass(frozen=True)
class KeyValueWorkload(Workload):
    """A key-value workload: a mix of puts and gets over a keyspace.

    Used by the examples to exercise the replicated key-value store rather
    than the no-op micro-benchmark service.
    """

    key_space: int = 1000
    value_size: int = 64
    read_fraction: float = 0.5
    seed: int = 0

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        rng = random.Random(self.seed * 100_003 + client_seed)
        value = "v" * self.value_size

        def factory(timestamp: int) -> Operation:
            key = f"key-{rng.randrange(self.key_space)}"
            if rng.random() < self.read_fraction:
                return Operation("get", (key,))
            return Operation("put", (key, value))

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        return KeyValueStore


def kv_workload(
    key_space: int = 1000,
    value_size: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
) -> KeyValueWorkload:
    """Convenience constructor for a key-value workload."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read fraction must be in [0, 1]: {read_fraction}")
    return KeyValueWorkload(
        name=f"kv-{int(read_fraction * 100)}r",
        request_payload_bytes=0,
        reply_payload_bytes=0,
        key_space=key_space,
        value_size=value_size,
        read_fraction=read_fraction,
        seed=seed,
    )
