"""Workload definitions.

A workload is a recipe for the operations clients issue and the size of the
replies the service returns.  The paper's micro-benchmarks are named
``"x/y"``: request payloads of x KB and reply payloads of y KB (``0/0``,
``0/4``, and ``4/0`` appear in Figures 2 and 3).
"""

from __future__ import annotations

import random
import warnings
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard -> workload)
    from repro.shard.partition import Partitioner
    from repro.workload.openloop import ArrivalProcess

from repro.smr.state_machine import (
    KeyValueStore,
    NullStateMachine,
    Operation,
    StateMachine,
    TransactionalKeyValueStore,
)

KILOBYTE = 1024


@dataclass(frozen=True)
class WorkloadSpec:
    """One declarative description of any workload this repo can generate.

    The single entry point :meth:`Workload.build` turns a spec into the
    right :class:`Workload` subclass, collapsing what used to be three
    separate factory functions (``microbenchmark`` / ``kv_workload`` /
    ``sharded_kv_workload``) into one dataclass: payload sizes, key
    distribution, cross-shard fraction, and — for open-loop populations —
    the arrival model, all in one place.

    Attributes:
        kind: ``"micro"`` (payload-only no-op service), ``"kv"``
            (key-value store), or ``"sharded-kv"`` (transactional
            key-value store with cross-shard transactions).
        name: workload display name; derived from the knobs when ``None``.
        request_kb / reply_kb: the paper's x/y micro-benchmark payload
            sizes, in KB (used by every kind).
        client_window: requests each closed-loop client pipelines.
        key_space / value_size / read_fraction / seed / key_distribution /
            zipf_theta: key-value knobs (``kv`` and ``sharded-kv``).
        cross_shard_fraction / txn_size / partitioner: sharded knobs.
        arrival: optional :class:`~repro.workload.openloop.ArrivalProcess`
            describing open-loop offered load.  The workload itself is
            arrival-agnostic; open-loop runners read this field off the
            spec to build the :class:`~repro.workload.openloop.ClientPopulation`.
    """

    kind: str = "micro"
    name: Optional[str] = None
    request_kb: int = 0
    reply_kb: int = 0
    client_window: int = 1
    key_space: int = 1000
    value_size: int = 64
    read_fraction: float = 0.5
    seed: int = 0
    key_distribution: str = "uniform"
    zipf_theta: float = 0.99
    cross_shard_fraction: float = 0.1
    txn_size: int = 2
    partitioner: Optional["Partitioner"] = None
    arrival: Optional["ArrivalProcess"] = None

    @classmethod
    def micro(cls, name: str, **overrides) -> "WorkloadSpec":
        """Spec for one of the paper's ``"x/y"`` micro-benchmarks."""
        try:
            request_kb_text, reply_kb_text = name.split("/")
            request_kb = int(request_kb_text)
            reply_kb = int(reply_kb_text)
        except (ValueError, AttributeError):
            raise ValueError(f"micro-benchmark names look like '0/4', got {name!r}") from None
        return cls(kind="micro", name=name, request_kb=request_kb, reply_kb=reply_kb, **overrides)

    def __post_init__(self) -> None:
        if self.kind not in ("micro", "kv", "sharded-kv"):
            raise ValueError(
                f"unknown workload kind {self.kind!r}; "
                f"choose 'micro', 'kv', or 'sharded-kv'"
            )
        if self.request_kb < 0 or self.reply_kb < 0:
            raise ValueError(
                f"payload sizes cannot be negative: {self.request_kb}/{self.reply_kb}"
            )
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read fraction must be in [0, 1]: {self.read_fraction}")
        if not 0.0 <= self.cross_shard_fraction <= 1.0:
            raise ValueError(
                f"cross-shard fraction must be in [0, 1]: {self.cross_shard_fraction}"
            )


def _deprecated_factory(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new}", DeprecationWarning, stacklevel=3
    )


@dataclass(frozen=True)
class Workload:
    """A named workload: how to build operations and the service they run on.

    Attributes:
        name: human-readable name (e.g. ``"0/4"``).
        request_payload_bytes: extra payload attached to every request.
        reply_payload_bytes: payload the service attaches to every reply.
        client_window: requests each client keeps in flight.  ``1`` is the
            paper's closed loop; larger windows pipeline requests so batching
            primaries see enough concurrent load to fill their batches.
    """

    name: str
    request_payload_bytes: int = 0
    reply_payload_bytes: int = 0
    client_window: int = 1

    def with_client_window(self, window: int) -> "Workload":
        """Copy of this workload with a different per-client pipeline window."""
        if window < 1:
            raise ValueError(f"client window must be at least 1: {window}")
        return replace(self, client_window=window)

    @classmethod
    def build(cls, spec: Union[str, WorkloadSpec]) -> "Workload":
        """The one spec-driven workload entry point.

        Accepts a full :class:`WorkloadSpec` or — as shorthand for the
        overwhelmingly common case — a bare ``"x/y"`` micro-benchmark
        name.  Returns the :class:`Workload` subclass the spec's ``kind``
        calls for.
        """
        if isinstance(spec, str):
            spec = WorkloadSpec.micro(spec)
        if spec.kind == "micro":
            return Workload(
                name=spec.name or f"{spec.request_kb}/{spec.reply_kb}",
                request_payload_bytes=spec.request_kb * KILOBYTE,
                reply_payload_bytes=spec.reply_kb * KILOBYTE,
                client_window=spec.client_window,
            )
        if spec.kind == "kv":
            return KeyValueWorkload(
                name=spec.name or f"kv-{int(spec.read_fraction * 100)}r",
                request_payload_bytes=spec.request_kb * KILOBYTE,
                reply_payload_bytes=spec.reply_kb * KILOBYTE,
                client_window=spec.client_window,
                key_space=spec.key_space,
                value_size=spec.value_size,
                read_fraction=spec.read_fraction,
                seed=spec.seed,
                key_distribution=spec.key_distribution,
                zipf_theta=spec.zipf_theta,
            )
        return ShardedKeyValueWorkload(
            name=spec.name or f"kv-sharded-{int(spec.cross_shard_fraction * 100)}x",
            request_payload_bytes=spec.request_kb * KILOBYTE,
            reply_payload_bytes=spec.reply_kb * KILOBYTE,
            client_window=spec.client_window,
            key_space=spec.key_space,
            value_size=spec.value_size,
            read_fraction=spec.read_fraction,
            seed=spec.seed,
            key_distribution=spec.key_distribution,
            zipf_theta=spec.zipf_theta,
            cross_shard_fraction=spec.cross_shard_fraction,
            txn_size=spec.txn_size,
            partitioner=spec.partitioner,
        )

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        """Return a factory mapping a client timestamp to an operation."""
        payload = "x" * self.request_payload_bytes

        def factory(timestamp: int) -> Operation:
            return Operation("noop", (), payload)

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        """Return a factory for the state machine replicas should run."""
        reply_bytes = self.reply_payload_bytes

        def factory() -> StateMachine:
            return NullStateMachine(reply_payload_size=reply_bytes)

        return factory


def microbenchmark(name: str) -> Workload:
    """Deprecated shim: use ``Workload.build("x/y")``.

    >>> microbenchmark("0/0").request_payload_bytes
    0
    >>> microbenchmark("4/0").request_payload_bytes
    4096
    """
    _deprecated_factory("microbenchmark(name)", "Workload.build(name)")
    return Workload.build(name)


@dataclass(frozen=True)
class KeyValueWorkload(Workload):
    """A key-value workload: a mix of puts and gets over a keyspace.

    Used by the examples to exercise the replicated key-value store rather
    than the no-op micro-benchmark service.  Key choice is either uniform
    or Zipfian (``key_distribution="zipfian"``): real key-value traffic is
    skewed, and a hot key stresses whichever shard owns it — the scenario
    the sharded deployments need to reproduce.  Both distributions are
    seed-deterministic.
    """

    key_space: int = 1000
    value_size: int = 64
    read_fraction: float = 0.5
    seed: int = 0
    key_distribution: str = "uniform"
    zipf_theta: float = 0.99

    def _key_sampler(self, rng: random.Random) -> Callable[[], str]:
        """A deterministic ``() -> key`` sampler for this workload's distribution."""
        if self.key_distribution == "uniform":
            return lambda: f"key-{rng.randrange(self.key_space)}"
        if self.key_distribution == "zipfian":
            # Classic Zipf over ranks 1..key_space with exponent theta:
            # P(rank r) ∝ r^-theta.  Rank 0 maps to key-0 (the hottest key);
            # inversion samples the precomputed cumulative weights.
            if self.zipf_theta <= 0:
                raise ValueError(f"zipf theta must be positive: {self.zipf_theta}")
            cumulative = []
            total = 0.0
            for rank in range(self.key_space):
                total += (rank + 1) ** -self.zipf_theta
                cumulative.append(total)

            def sample() -> str:
                return f"key-{bisect_right(cumulative, rng.random() * total)}"

            return sample
        raise ValueError(
            f"unknown key distribution {self.key_distribution!r}; "
            f"choose 'uniform' or 'zipfian'"
        )

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        rng = random.Random(self.seed * 100_003 + client_seed)
        value = "v" * self.value_size
        sample_key = self._key_sampler(rng)

        def factory(timestamp: int) -> Operation:
            key = sample_key()
            if rng.random() < self.read_fraction:
                return Operation("get", (key,))
            return Operation("put", (key, value))

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        return KeyValueStore


def kv_workload(
    key_space: int = 1000,
    value_size: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
    key_distribution: str = "uniform",
    zipf_theta: float = 0.99,
) -> KeyValueWorkload:
    """Deprecated shim: use ``Workload.build(WorkloadSpec(kind="kv", ...))``."""
    _deprecated_factory("kv_workload(...)", "Workload.build(WorkloadSpec(kind='kv', ...))")
    return Workload.build(
        WorkloadSpec(
            kind="kv",
            key_space=key_space,
            value_size=value_size,
            read_fraction=read_fraction,
            seed=seed,
            key_distribution=key_distribution,
            zipf_theta=zipf_theta,
        )
    )


@dataclass(frozen=True)
class ShardedKeyValueWorkload(KeyValueWorkload):
    """A key-value workload aware of the deployment's keyspace partition.

    Single-key operations route wherever their key lives; a configurable
    fraction of operations are multi-write transactions
    (``Operation("txn", ...)``) whose keys — when a ``partitioner`` is
    attached — are deterministically re-drawn until they span at least two
    shards, so ``cross_shard_fraction`` really is the fraction of traffic
    exercising the two-phase commit path.  With ``partitioner=None`` the
    transactions still run, but key placement is left to chance.

    The state machine is the transactional store, so every shard can order
    prepare/decide records through its own consensus.
    """

    cross_shard_fraction: float = 0.0
    txn_size: int = 2
    partitioner: Optional[Partitioner] = None

    #: Bounded deterministic re-draws when forcing a transaction to span shards.
    _SPAN_ATTEMPTS = 64

    def with_partitioner(self, partitioner: Partitioner) -> "ShardedKeyValueWorkload":
        """Copy of this workload generating transactions that span ``partitioner``'s shards."""
        return replace(self, partitioner=partitioner)

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        if self.txn_size < 2:
            raise ValueError(f"transactions need at least two writes: {self.txn_size}")
        rng = random.Random(self.seed * 100_003 + client_seed)
        value = "v" * self.value_size
        sample_key = self._key_sampler(rng)

        def sample_transaction() -> Operation:
            keys = [sample_key()]
            attempts = 0
            while len(keys) < self.txn_size and attempts < self._SPAN_ATTEMPTS:
                attempts += 1
                candidate = sample_key()
                if candidate not in keys:
                    keys.append(candidate)
            if self.partitioner is not None:
                shard_of = self.partitioner.shard_of_key
                home = shard_of(keys[0])
                if all(shard_of(key) == home for key in keys):
                    for _ in range(self._SPAN_ATTEMPTS):
                        candidate = sample_key()
                        if candidate not in keys and shard_of(candidate) != home:
                            keys[-1] = candidate
                            break
            return Operation("txn", tuple(("put", key, value) for key in keys))

        def factory(timestamp: int) -> Operation:
            if self.cross_shard_fraction > 0 and rng.random() < self.cross_shard_fraction:
                return sample_transaction()
            key = sample_key()
            if rng.random() < self.read_fraction:
                return Operation("get", (key,))
            return Operation("put", (key, value))

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        return TransactionalKeyValueStore


def sharded_kv_workload(
    key_space: int = 1000,
    value_size: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
    cross_shard_fraction: float = 0.1,
    txn_size: int = 2,
    key_distribution: str = "uniform",
    zipf_theta: float = 0.99,
    partitioner: Optional[Partitioner] = None,
) -> ShardedKeyValueWorkload:
    """Deprecated shim: use ``Workload.build(WorkloadSpec(kind="sharded-kv", ...))``."""
    _deprecated_factory(
        "sharded_kv_workload(...)", "Workload.build(WorkloadSpec(kind='sharded-kv', ...))"
    )
    return Workload.build(
        WorkloadSpec(
            kind="sharded-kv",
            key_space=key_space,
            value_size=value_size,
            read_fraction=read_fraction,
            seed=seed,
            key_distribution=key_distribution,
            zipf_theta=zipf_theta,
            cross_shard_fraction=cross_shard_fraction,
            txn_size=txn_size,
            partitioner=partitioner,
        )
    )
