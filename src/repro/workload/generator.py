"""Workload definitions.

A workload is a recipe for the operations clients issue and the size of the
replies the service returns.  The paper's micro-benchmarks are named
``"x/y"``: request payloads of x KB and reply payloads of y KB (``0/0``,
``0/4``, and ``4/0`` appear in Figures 2 and 3).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard -> workload)
    from repro.shard.partition import Partitioner

from repro.smr.state_machine import (
    KeyValueStore,
    NullStateMachine,
    Operation,
    StateMachine,
    TransactionalKeyValueStore,
)

KILOBYTE = 1024


@dataclass(frozen=True)
class Workload:
    """A named workload: how to build operations and the service they run on.

    Attributes:
        name: human-readable name (e.g. ``"0/4"``).
        request_payload_bytes: extra payload attached to every request.
        reply_payload_bytes: payload the service attaches to every reply.
        client_window: requests each client keeps in flight.  ``1`` is the
            paper's closed loop; larger windows pipeline requests so batching
            primaries see enough concurrent load to fill their batches.
    """

    name: str
    request_payload_bytes: int = 0
    reply_payload_bytes: int = 0
    client_window: int = 1

    def with_client_window(self, window: int) -> "Workload":
        """Copy of this workload with a different per-client pipeline window."""
        if window < 1:
            raise ValueError(f"client window must be at least 1: {window}")
        return replace(self, client_window=window)

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        """Return a factory mapping a client timestamp to an operation."""
        payload = "x" * self.request_payload_bytes

        def factory(timestamp: int) -> Operation:
            return Operation("noop", (), payload)

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        """Return a factory for the state machine replicas should run."""
        reply_bytes = self.reply_payload_bytes

        def factory() -> StateMachine:
            return NullStateMachine(reply_payload_size=reply_bytes)

        return factory


def microbenchmark(name: str) -> Workload:
    """Build one of the paper's x/y micro-benchmarks.

    >>> microbenchmark("0/0").request_payload_bytes
    0
    >>> microbenchmark("4/0").request_payload_bytes
    4096
    """
    try:
        request_kb_text, reply_kb_text = name.split("/")
        request_kb = int(request_kb_text)
        reply_kb = int(reply_kb_text)
    except (ValueError, AttributeError):
        raise ValueError(f"micro-benchmark names look like '0/4', got {name!r}") from None
    if request_kb < 0 or reply_kb < 0:
        raise ValueError(f"payload sizes cannot be negative: {name!r}")
    return Workload(
        name=name,
        request_payload_bytes=request_kb * KILOBYTE,
        reply_payload_bytes=reply_kb * KILOBYTE,
    )


@dataclass(frozen=True)
class KeyValueWorkload(Workload):
    """A key-value workload: a mix of puts and gets over a keyspace.

    Used by the examples to exercise the replicated key-value store rather
    than the no-op micro-benchmark service.  Key choice is either uniform
    or Zipfian (``key_distribution="zipfian"``): real key-value traffic is
    skewed, and a hot key stresses whichever shard owns it — the scenario
    the sharded deployments need to reproduce.  Both distributions are
    seed-deterministic.
    """

    key_space: int = 1000
    value_size: int = 64
    read_fraction: float = 0.5
    seed: int = 0
    key_distribution: str = "uniform"
    zipf_theta: float = 0.99

    def _key_sampler(self, rng: random.Random) -> Callable[[], str]:
        """A deterministic ``() -> key`` sampler for this workload's distribution."""
        if self.key_distribution == "uniform":
            return lambda: f"key-{rng.randrange(self.key_space)}"
        if self.key_distribution == "zipfian":
            # Classic Zipf over ranks 1..key_space with exponent theta:
            # P(rank r) ∝ r^-theta.  Rank 0 maps to key-0 (the hottest key);
            # inversion samples the precomputed cumulative weights.
            if self.zipf_theta <= 0:
                raise ValueError(f"zipf theta must be positive: {self.zipf_theta}")
            cumulative = []
            total = 0.0
            for rank in range(self.key_space):
                total += (rank + 1) ** -self.zipf_theta
                cumulative.append(total)

            def sample() -> str:
                return f"key-{bisect_right(cumulative, rng.random() * total)}"

            return sample
        raise ValueError(
            f"unknown key distribution {self.key_distribution!r}; "
            f"choose 'uniform' or 'zipfian'"
        )

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        rng = random.Random(self.seed * 100_003 + client_seed)
        value = "v" * self.value_size
        sample_key = self._key_sampler(rng)

        def factory(timestamp: int) -> Operation:
            key = sample_key()
            if rng.random() < self.read_fraction:
                return Operation("get", (key,))
            return Operation("put", (key, value))

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        return KeyValueStore


def kv_workload(
    key_space: int = 1000,
    value_size: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
    key_distribution: str = "uniform",
    zipf_theta: float = 0.99,
) -> KeyValueWorkload:
    """Convenience constructor for a key-value workload."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read fraction must be in [0, 1]: {read_fraction}")
    return KeyValueWorkload(
        name=f"kv-{int(read_fraction * 100)}r",
        request_payload_bytes=0,
        reply_payload_bytes=0,
        key_space=key_space,
        value_size=value_size,
        read_fraction=read_fraction,
        seed=seed,
        key_distribution=key_distribution,
        zipf_theta=zipf_theta,
    )


@dataclass(frozen=True)
class ShardedKeyValueWorkload(KeyValueWorkload):
    """A key-value workload aware of the deployment's keyspace partition.

    Single-key operations route wherever their key lives; a configurable
    fraction of operations are multi-write transactions
    (``Operation("txn", ...)``) whose keys — when a ``partitioner`` is
    attached — are deterministically re-drawn until they span at least two
    shards, so ``cross_shard_fraction`` really is the fraction of traffic
    exercising the two-phase commit path.  With ``partitioner=None`` the
    transactions still run, but key placement is left to chance.

    The state machine is the transactional store, so every shard can order
    prepare/decide records through its own consensus.
    """

    cross_shard_fraction: float = 0.0
    txn_size: int = 2
    partitioner: Optional[Partitioner] = None

    #: Bounded deterministic re-draws when forcing a transaction to span shards.
    _SPAN_ATTEMPTS = 64

    def with_partitioner(self, partitioner: Partitioner) -> "ShardedKeyValueWorkload":
        """Copy of this workload generating transactions that span ``partitioner``'s shards."""
        return replace(self, partitioner=partitioner)

    def operation_factory(self, client_seed: int = 0) -> Callable[[int], Operation]:
        if self.txn_size < 2:
            raise ValueError(f"transactions need at least two writes: {self.txn_size}")
        rng = random.Random(self.seed * 100_003 + client_seed)
        value = "v" * self.value_size
        sample_key = self._key_sampler(rng)

        def sample_transaction() -> Operation:
            keys = [sample_key()]
            attempts = 0
            while len(keys) < self.txn_size and attempts < self._SPAN_ATTEMPTS:
                attempts += 1
                candidate = sample_key()
                if candidate not in keys:
                    keys.append(candidate)
            if self.partitioner is not None:
                shard_of = self.partitioner.shard_of_key
                home = shard_of(keys[0])
                if all(shard_of(key) == home for key in keys):
                    for _ in range(self._SPAN_ATTEMPTS):
                        candidate = sample_key()
                        if candidate not in keys and shard_of(candidate) != home:
                            keys[-1] = candidate
                            break
            return Operation("txn", tuple(("put", key, value) for key in keys))

        def factory(timestamp: int) -> Operation:
            if self.cross_shard_fraction > 0 and rng.random() < self.cross_shard_fraction:
                return sample_transaction()
            key = sample_key()
            if rng.random() < self.read_fraction:
                return Operation("get", (key,))
            return Operation("put", (key, value))

        return factory

    def state_machine_factory(self) -> Callable[[], StateMachine]:
        return TransactionalKeyValueStore


def sharded_kv_workload(
    key_space: int = 1000,
    value_size: int = 64,
    read_fraction: float = 0.5,
    seed: int = 0,
    cross_shard_fraction: float = 0.1,
    txn_size: int = 2,
    key_distribution: str = "uniform",
    zipf_theta: float = 0.99,
    partitioner: Optional[Partitioner] = None,
) -> ShardedKeyValueWorkload:
    """Convenience constructor for a sharded key-value workload."""
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read fraction must be in [0, 1]: {read_fraction}")
    if not 0.0 <= cross_shard_fraction <= 1.0:
        raise ValueError(f"cross-shard fraction must be in [0, 1]: {cross_shard_fraction}")
    return ShardedKeyValueWorkload(
        name=f"kv-sharded-{int(cross_shard_fraction * 100)}x",
        key_space=key_space,
        value_size=value_size,
        read_fraction=read_fraction,
        seed=seed,
        key_distribution=key_distribution,
        zipf_theta=zipf_theta,
        cross_shard_fraction=cross_shard_fraction,
        txn_size=txn_size,
        partitioner=partitioner,
    )
