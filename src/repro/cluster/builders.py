"""Deployment builders: one per protocol the paper evaluates.

Each builder stands up a complete simulated deployment -- replicas placed
into private/public clouds, the network with the requested latency profile,
key material, and a pool of closed-loop clients -- and returns a
:class:`~repro.cluster.deployment.Deployment` ready to run.

All builders accept the same experiment knobs so the benchmark harness can
sweep them uniformly:

* ``num_clients`` — closed-loop clients generating load;
* ``workload`` — one of the x/y micro-benchmarks or a key-value workload;
* ``seed`` — drives every random choice (latency jitter, workload keys);
* ``cross_cloud_latency`` — one-way latency between the two clouds
  (defaults to the intra-cloud latency, the paper's co-located setting).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.adaptive import AdaptiveModeController, AdaptivePolicy
from repro.baselines import (
    PaxosConfig,
    PaxosReplica,
    PBFTConfig,
    QuorumBFTReplica,
    UpRightConfig,
    paxos_client_config,
    pbft_client_config,
    upright_client_config,
)
from repro.cluster.deployment import Deployment
from repro.core import (
    AdmissionPolicy,
    BatchPolicy,
    Mode,
    SeeMoReConfig,
    SeeMoReReplica,
    client_config_for_mode,
)
from repro.crypto.keys import KeyStore
from repro.net.costs import NodeCostModel
from repro.net.latency import CloudAwareLatencyModel
from repro.net.network import Network
from repro.net.topology import Cloud, Placement
from repro.runtime.proc import ProcCluster, WorkerSpec
from repro.runtime.sim import SimRuntime
from repro.shard import (
    ShardedClientPool,
    ShardedDeployment,
    ShardRouter,
    ShardSession,
    ShardSpec,
    make_partitioner,
)
from repro.sim.simulator import Simulator
from repro.smr.client import ClientConfig
from repro.workload.client_pool import ClientPool
from repro.workload.generator import ShardedKeyValueWorkload, Workload, WorkloadSpec
from repro.workload.metrics import MetricsCollector

DEFAULT_INTRA_CLOUD_LATENCY = 0.0002
DEFAULT_CLIENT_LATENCY = 0.0003

#: What builders accept for their ``adaptive`` knob: ``True`` for the
#: default policy, an :class:`AdaptivePolicy` for tuned knobs, or
#: ``None``/``False`` for no controller.
AdaptiveSpec = Union[bool, AdaptivePolicy, None]


def _resolve_adaptive_policy(adaptive: AdaptiveSpec) -> Optional[AdaptivePolicy]:
    if not adaptive:
        return None
    if isinstance(adaptive, AdaptivePolicy):
        return adaptive
    return AdaptivePolicy()


def _build_fabric(
    placement: Placement,
    seed: int,
    cross_cloud_latency: Optional[float],
    cost_model: Optional[NodeCostModel],
) -> SimRuntime:
    simulator = Simulator()
    latency = CloudAwareLatencyModel(
        placement=placement,
        intra_cloud=DEFAULT_INTRA_CLOUD_LATENCY,
        cross_cloud=(
            cross_cloud_latency if cross_cloud_latency is not None else DEFAULT_INTRA_CLOUD_LATENCY
        ),
        client_link=DEFAULT_CLIENT_LATENCY,
    )
    network = Network(
        simulator,
        latency_model=latency,
        cost_model=cost_model or NodeCostModel(),
        seed=seed,
    )
    return SimRuntime(simulator, network)


def _finish_deployment(
    protocol: str,
    runtime: SimRuntime,
    placement: Placement,
    keystore: KeyStore,
    replicas: Dict,
    client_config: ClientConfig,
    workload: Workload,
    num_clients: int,
    extras: Optional[Dict] = None,
    client_window: Optional[int] = None,
) -> Deployment:
    metrics = MetricsCollector()
    pool = ClientPool(
        runtime=runtime,
        keystore=keystore,
        placement=placement,
        client_config=client_config,
        workload=workload,
        metrics=metrics,
    )
    # num_clients == 0 leaves the pool empty for open-loop deployments,
    # whose connections are spawned by ClientPool.spawn_open_loop instead.
    if num_clients > 0:
        pool.spawn(num_clients, window=client_window)
    return Deployment(
        protocol=protocol,
        simulator=runtime.simulator,
        network=runtime.network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_pool=pool,
        metrics=metrics,
        extras=extras or {},
        runtime=runtime,
    )


# -- SeeMoRe ---------------------------------------------------------------------


def _spawn_seemore_cluster(
    config: SeeMoReConfig,
    mode: Mode,
    runtime: SimRuntime,
    keystore: KeyStore,
    placement: Placement,
    workload: Workload,
    cost_model: Optional[NodeCostModel],
) -> Dict[str, SeeMoReReplica]:
    """Place, key, and register one SeeMoRe replica group on a shared fabric.

    Shared by the single-cluster builder and the sharded builder: the
    latter calls it once per shard with shard-prefixed replica ids, so N
    independently configured clusters coexist on one runtime, placement,
    and keystore.
    """
    placement.assign_many(config.private_replicas, Cloud.PRIVATE)
    placement.assign_many(config.public_replicas, Cloud.PUBLIC)
    for replica_id in config.all_replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas: Dict[str, SeeMoReReplica] = {}
    for replica_id in config.all_replicas:
        replica = SeeMoReReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            initial_mode=mode,
            cost_model=cost_model,
        )
        runtime.register(replica)
        replicas[replica_id] = replica
    return replicas


def build_seemore(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    mode: Mode = Mode.LION,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
    batch_policy: Optional[BatchPolicy] = None,
    client_window: Optional[int] = None,
    adaptive: AdaptiveSpec = None,
    admission: Optional[AdmissionPolicy] = None,
) -> Deployment:
    """Build a SeeMoRe deployment in the given mode.

    Follows the paper's evaluation layout: ``2c`` replicas in the private
    cloud and ``3m+1`` in the public cloud (N = 3m+2c+1).

    ``batch_policy`` configures request batching/pipelining at the primary
    (default: one request per slot, the paper's setup) and ``client_window``
    pipelines that many requests per client (default: the workload's
    ``client_window``, normally the paper's closed loop of 1).

    ``adaptive`` attaches a closed-loop
    :class:`~repro.adaptive.AdaptiveModeController` (``True`` for the
    default policy, or an :class:`~repro.adaptive.AdaptivePolicy`); the
    controller is started on the simulator clock and exposed as
    ``deployment.extras["adaptive"]``.

    ``admission`` attaches primary-side admission control (see
    :class:`~repro.core.admission.AdmissionPolicy`): past the watermark the
    primary sheds new requests with a signed ``Busy`` instead of queueing
    them.  ``num_clients=0`` builds the deployment with an empty client
    pool so an open-loop driver can spawn its own connections.
    """
    workload = workload or Workload.build("0/0")
    config = SeeMoReConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
        batch_policy=batch_policy or BatchPolicy(),
        admission=admission,
    )
    placement = Placement()
    runtime = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"seemore-{seed}")
    replicas = _spawn_seemore_cluster(
        config, mode, runtime, keystore, placement, workload, cost_model
    )

    client_config = client_config_for_mode(config, mode, request_timeout=client_timeout)
    deployment = _finish_deployment(
        protocol=f"seemore-{mode.name.lower()}",
        runtime=runtime,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config, "mode": mode},
        client_window=client_window,
    )
    policy = _resolve_adaptive_policy(adaptive)
    if policy is not None:
        controller = AdaptiveModeController(deployment, policy=policy, name="adaptive")
        deployment.extras["adaptive"] = controller
        controller.start()
    return deployment


# -- sharded SeeMoRe --------------------------------------------------------------------


def _reject_per_shard_spawn(*args, **kwargs):
    raise RuntimeError(
        "per-shard pools of a sharded deployment cannot spawn clients: an "
        "unrouted client would send every key to one shard; spawn through "
        "ShardedDeployment.add_clients so operations are routed"
    )


def build_sharded_seemore(
    num_shards: int = 2,
    shard_specs: Optional[Sequence[ShardSpec]] = None,
    workload: Optional[Workload] = None,
    num_clients: int = 2,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    partition_policy: str = "hash",
    range_boundaries: Optional[Sequence[str]] = None,
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    mode: Mode = Mode.LION,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    client_window: Optional[int] = None,
    txn_timeout: Optional[float] = None,
    batch_policy: Optional[BatchPolicy] = None,
    cost_model: Optional[NodeCostModel] = None,
    adaptive: AdaptiveSpec = None,
) -> ShardedDeployment:
    """Build N SeeMoRe clusters sharing one simulated fabric.

    ``shard_specs`` configures each shard individually (mode, ``c``, ``m``,
    checkpointing, batching); when omitted, ``num_shards`` uniform shards
    are built from the scalar knobs — the same defaults as
    :func:`build_seemore`, so a one-shard sharded deployment is directly
    comparable to a single cluster.

    The keyspace is split by ``partition_policy`` (``"hash"`` or
    ``"range"`` with explicit ``range_boundaries``).  The default workload
    is a sharded key-value mix with 10% cross-shard transactions; a
    :class:`~repro.workload.generator.ShardedKeyValueWorkload` passed
    without a partitioner is attached to the deployment's partitioner so
    its cross-shard transactions really span shards.

    ``txn_timeout`` bounds how long a client coordinator waits for
    prepare votes before aborting a cross-shard transaction (``None``
    waits indefinitely — classic blocking 2PC).

    ``adaptive`` attaches one
    :class:`~repro.adaptive.AdaptiveModeController` *per shard*: every
    shard estimates its own fault environment (evidence implicating other
    shards' replicas is filtered out) and switches its own mode, so
    divergent per-shard environments settle into divergent per-shard
    modes.  The controllers are exposed as
    ``deployment.extras["adaptive"]`` (a tuple, shard order) and on each
    shard's ``extras["adaptive"]``.
    """
    if shard_specs is not None:
        specs = tuple(shard_specs)
    else:
        specs = tuple(
            ShardSpec(
                mode=mode,
                crash_tolerance=crash_tolerance,
                byzantine_tolerance=byzantine_tolerance,
                checkpoint_period=checkpoint_period,
                request_timeout=request_timeout,
                batch_policy=batch_policy,
            )
            for _ in range(num_shards)
        )
    if not specs:
        raise ValueError("a sharded deployment needs at least one shard")

    partitioner = make_partitioner(partition_policy, len(specs), range_boundaries)
    router = ShardRouter(partitioner)

    if workload is None:
        workload = Workload.build(
            WorkloadSpec(kind="sharded-kv", seed=seed, partitioner=partitioner)
        )
    elif isinstance(workload, ShardedKeyValueWorkload) and workload.partitioner is None:
        workload = workload.with_partitioner(partitioner)

    placement = Placement()
    runtime = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"seemore-sharded-{seed}")

    shards: List[Deployment] = []
    shard_configs: Dict[int, SeeMoReConfig] = {}
    shard_client_configs: Dict[int, ClientConfig] = {}
    shard_metrics: Dict[int, MetricsCollector] = {}
    for index, spec in enumerate(specs):
        config = SeeMoReConfig.build(
            spec.crash_tolerance,
            spec.byzantine_tolerance,
            name_prefix=f"s{index}-",
            checkpoint_period=spec.checkpoint_period,
            request_timeout=spec.request_timeout,
            batch_policy=spec.batch_policy or BatchPolicy(),
        )
        replicas = _spawn_seemore_cluster(
            config, spec.mode, runtime, keystore, placement, workload, cost_model
        )
        metrics = MetricsCollector()
        client_config = client_config_for_mode(config, spec.mode, request_timeout=client_timeout)
        # The per-shard pool exists only to satisfy the single-cluster
        # Deployment surface (metrics / timeout accessors).  It must never
        # spawn clients: an unrouted single-cluster client would send every
        # key to this one shard, silently breaking the keyspace partition —
        # surge load through ShardedDeployment.add_clients instead.
        pool = ClientPool(
            runtime=runtime,
            keystore=keystore,
            placement=placement,
            client_config=client_config,
            workload=workload,
            metrics=metrics,
            name_prefix=f"s{index}-client",
        )
        pool.spawn = _reject_per_shard_spawn  # type: ignore[method-assign]
        shards.append(
            Deployment(
                protocol=f"seemore-{spec.mode.name.lower()}-s{index}",
                simulator=runtime.simulator,
                network=runtime.network,
                placement=placement,
                keystore=keystore,
                replicas=replicas,
                client_pool=pool,
                metrics=metrics,
                extras={"config": config, "mode": spec.mode, "shard_index": index},
                runtime=runtime,
            )
        )
        shard_configs[index] = config
        shard_client_configs[index] = client_config
        shard_metrics[index] = metrics

    def session_factory() -> Dict[int, ShardSession]:
        return {
            index: ShardSession(
                shard_id=index,
                config=shard_client_configs[index],
                members=frozenset(shard_configs[index].all_replicas),
            )
            for index in shard_configs
        }

    aggregate_metrics = MetricsCollector()
    pool = ShardedClientPool(
        runtime=runtime,
        keystore=keystore,
        placement=placement,
        session_factory=session_factory,
        router=router,
        workload=workload,
        metrics=aggregate_metrics,
        shard_recorders=shard_metrics,
        txn_timeout=txn_timeout,
    )
    pool.spawn(num_clients, window=client_window)

    extras: Dict[str, object] = {"partition_policy": partition_policy}
    policy = _resolve_adaptive_policy(adaptive)
    if policy is not None:
        controllers = []
        for index, shard in enumerate(shards):
            controller = AdaptiveModeController(
                shard,
                policy=policy,
                # Clients are shared across shards; the controller's
                # estimator keeps only evidence implicating this shard's
                # replicas.  The callable re-lists so surged clients count.
                clients=lambda: pool.clients,
                name=f"adaptive-s{index}",
            )
            shard.extras["adaptive"] = controller
            controller.start()
            controllers.append(controller)
        extras["adaptive"] = tuple(controllers)

    return ShardedDeployment(
        protocol=f"seemore-sharded-{len(specs)}x",
        simulator=runtime.simulator,
        network=runtime.network,
        placement=placement,
        keystore=keystore,
        shards=shards,
        specs=specs,
        partitioner=partitioner,
        router=router,
        client_pool=pool,
        metrics=aggregate_metrics,
        extras=extras,
    )


# -- multiprocess SeeMoRe ---------------------------------------------------------------


def _proc_seemore_setup(
    crash_tolerance: int,
    byzantine_tolerance: int,
    request_timeout: float,
    max_batch: int,
    seed: int,
    client_id: str,
):
    """Deterministically rebuild the shared cluster material inside a worker.

    Every proc worker derives the *same* config, key material, and
    workload from the same scalar kwargs — :class:`KeyStore` is seeded,
    so independently constructed stores agree on every HMAC key and
    cross-process signature verification just works.
    """
    config = SeeMoReConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        request_timeout=request_timeout,
        batch_policy=BatchPolicy(max_batch=max_batch),
    )
    keystore = KeyStore(seed=f"seemore-proc-{seed}")
    for replica_id in config.all_replicas:
        keystore.register(replica_id)
    keystore.register(client_id)
    return config, keystore, Workload.build("0/0")


def _proc_replica_worker(
    runtime,
    replica_ids: Sequence[str],
    mode_name: str,
    crash_tolerance: int,
    byzantine_tolerance: int,
    request_timeout: float,
    max_batch: int,
    seed: int,
    client_id: str,
):
    """Build callable for one replica-group worker process.

    Module-level (picklable under the ``spawn`` start method); runs inside
    the child, registering its slice of the replica set on the worker's
    runtime.  Harvests each replica's flattened commit trace, ledger, and
    cached-reply digests so the supervisor can run the conformance checks
    without shipping live protocol objects across the process boundary.
    """
    from repro.runtime.conformance import RecordingReplica
    from repro.runtime.proc import WorkerPlan
    from repro.smr.messages import _result_digest

    config, keystore, workload = _proc_seemore_setup(
        crash_tolerance, byzantine_tolerance, request_timeout, max_batch, seed, client_id
    )
    verifier = keystore.verifier()
    state_machine_factory = workload.state_machine_factory()
    mode = Mode[mode_name]
    replicas = {}
    for replica_id in replica_ids:
        replica = RecordingReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            initial_mode=mode,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    def harvest():
        out = {}
        for replica_id, replica in replicas.items():
            digests = {}
            for (cid, timestamp), result in replica.executor.snapshot()["replies"].items():
                if cid == client_id:
                    digests[timestamp] = _result_digest(result)
            out[replica_id] = {
                "commit_trace": list(replica.commit_trace),
                "ledger": replica.ledger,
                "committed_count": replica.committed_count,
                "last_executed": replica.last_executed,
                "reply_digests": digests,
            }
        return out

    return WorkerPlan(
        harvest=harvest,
        progress=lambda: {
            replica_id: replica.committed_count
            for replica_id, replica in replicas.items()
        },
    )


def _proc_client_worker(
    runtime,
    mode_name: str,
    crash_tolerance: int,
    byzantine_tolerance: int,
    request_timeout: float,
    client_timeout: float,
    max_batch: int,
    seed: int,
    client_id: str,
    num_requests: int,
    window: int,
):
    """Build callable for the client worker process (closed-loop driver)."""
    from repro.runtime.proc import WorkerPlan
    from repro.smr.client import Client

    config, keystore, workload = _proc_seemore_setup(
        crash_tolerance, byzantine_tolerance, request_timeout, max_batch, seed, client_id
    )
    mode = Mode[mode_name]
    client = Client(
        node_id=client_id,
        runtime=runtime,
        signer=keystore.signer_for(client_id),
        verifier=keystore.verifier(),
        config=client_config_for_mode(config, mode, request_timeout=client_timeout),
        operation_factory=workload.operation_factory(client_seed=0),
        max_requests=num_requests,
        window=window,
    )
    runtime.register(client)
    return WorkerPlan(
        kickoff=client.start,
        until=lambda: client.completed_count >= num_requests,
        harvest=lambda: {
            "completed": client.completed_count,
            "timeouts": client.timeouts,
        },
        progress=lambda: client.completed_count,
    )


def build_proc_seemore(
    mode: Mode = Mode.LION,
    num_procs: int = 2,
    num_requests: int = 200,
    window: int = 8,
    max_batch: int = 8,
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    request_timeout: float = 5.0,
    client_timeout: float = 2.0,
    seed: int = 0,
    client_id: str = "proc-client",
    start_method: Optional[str] = None,
    stats_interval: float = 0.25,
) -> ProcCluster:
    """Build a multiprocess SeeMoRe cluster: real TCP, one process per group.

    The replica set is split round-robin into ``num_procs`` worker
    processes (clamped to the replica count) plus one client worker, each
    running its own :class:`~repro.runtime.proc.ProcWorkerRuntime`.  The
    default timeouts mirror the conformance oracle's aio leg: real-clock
    view-change and client-retransmit timers far above loopback
    scheduling noise, so jitter never masquerades as a fault.

    Returns an *unstarted* :class:`~repro.runtime.proc.ProcCluster`;
    call ``run()`` (or drive ``start``/``wait``/``shutdown`` manually).
    ``extras`` carries the parent-side ``config``, the worker→replica-ids
    grouping, and the client worker's name for tests and tools.
    """
    config = SeeMoReConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        request_timeout=request_timeout,
        batch_policy=BatchPolicy(max_batch=max_batch),
    )
    replica_ids = list(config.all_replicas)
    num_procs = max(1, min(num_procs, len(replica_ids)))
    groups = [tuple(replica_ids[index::num_procs]) for index in range(num_procs)]
    shared = {
        "mode_name": mode.name,
        "crash_tolerance": crash_tolerance,
        "byzantine_tolerance": byzantine_tolerance,
        "request_timeout": request_timeout,
        "max_batch": max_batch,
        "seed": seed,
        "client_id": client_id,
    }
    workers = [
        WorkerSpec(
            name=f"replicas-{index}",
            build=_proc_replica_worker,
            kwargs={"replica_ids": group, **shared},
        )
        for index, group in enumerate(groups)
    ]
    workers.append(
        WorkerSpec(
            name="client",
            build=_proc_client_worker,
            kwargs={
                **shared,
                "client_timeout": client_timeout,
                "num_requests": num_requests,
                "window": window,
            },
        )
    )
    cluster = ProcCluster(
        workers, start_method=start_method, stats_interval=stats_interval
    )
    cluster.extras.update(
        {
            "config": config,
            "mode": mode,
            "replica_groups": {
                f"replicas-{index}": group for index, group in enumerate(groups)
            },
            "client_worker": "client",
            "num_requests": num_requests,
        }
    )
    return cluster


# -- baselines --------------------------------------------------------------------------


def build_paxos(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 0,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the CFT baseline sized to tolerate ``f = c + m`` crash failures.

    The paper configures CFT to tolerate the same *total* number of failures
    as SeeMoRe, so the builder accepts both tolerances and adds them.
    """
    workload = workload or Workload.build("0/0")
    fault_tolerance = crash_tolerance + byzantine_tolerance
    config = PaxosConfig.build(
        fault_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    placement.assign_many(config.replicas, Cloud.PRIVATE)

    runtime = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"paxos-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = PaxosReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    client_config = paxos_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="cft",
        runtime=runtime,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


def build_pbft(
    crash_tolerance: int = 0,
    byzantine_tolerance: int = 1,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the BFT baseline sized to tolerate ``f = c + m`` Byzantine failures."""
    workload = workload or Workload.build("0/0")
    fault_tolerance = crash_tolerance + byzantine_tolerance
    config = PBFTConfig.build(
        fault_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    placement.assign_many(config.replicas, Cloud.PUBLIC)

    runtime = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"pbft-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = QuorumBFTReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    client_config = pbft_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="bft",
        runtime=runtime,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


def build_upright(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the S-UpRight baseline (hybrid sizing, PBFT-like agreement)."""
    workload = workload or Workload.build("0/0")
    config = UpRightConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    # UpRight does not localise fault types; mimic the paper's layout by
    # putting 2c nodes alongside the private cloud and the rest in public,
    # which only matters when the cross-cloud latency is raised.
    private_count = 2 * crash_tolerance
    placement.assign_many(config.replicas[:private_count], Cloud.PRIVATE)
    placement.assign_many(config.replicas[private_count:], Cloud.PUBLIC)

    runtime = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"upright-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = QuorumBFTReplica(
            node_id=replica_id,
            runtime=runtime,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        runtime.register(replica)
        replicas[replica_id] = replica

    client_config = upright_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="s-upright",
        runtime=runtime,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


# -- registry ---------------------------------------------------------------------------------


_BUILDERS: Dict[str, Callable[..., Deployment]] = {
    "seemore-lion": lambda **kwargs: build_seemore(mode=Mode.LION, **kwargs),
    "seemore-dog": lambda **kwargs: build_seemore(mode=Mode.DOG, **kwargs),
    "seemore-peacock": lambda **kwargs: build_seemore(mode=Mode.PEACOCK, **kwargs),
    "cft": build_paxos,
    "bft": build_pbft,
    "s-upright": build_upright,
}


def builder_for(protocol: str) -> Callable[..., Deployment]:
    """Look up a deployment builder by protocol name.

    Valid names: ``seemore-lion``, ``seemore-dog``, ``seemore-peacock``,
    ``cft``, ``bft``, ``s-upright``.
    """
    try:
        return _BUILDERS[protocol]
    except KeyError:
        raise KeyError(
            f"unknown protocol {protocol!r}; choose one of {sorted(_BUILDERS)}"
        ) from None
