"""Deployment builders: one per protocol the paper evaluates.

Each builder stands up a complete simulated deployment -- replicas placed
into private/public clouds, the network with the requested latency profile,
key material, and a pool of closed-loop clients -- and returns a
:class:`~repro.cluster.deployment.Deployment` ready to run.

All builders accept the same experiment knobs so the benchmark harness can
sweep them uniformly:

* ``num_clients`` — closed-loop clients generating load;
* ``workload`` — one of the x/y micro-benchmarks or a key-value workload;
* ``seed`` — drives every random choice (latency jitter, workload keys);
* ``cross_cloud_latency`` — one-way latency between the two clouds
  (defaults to the intra-cloud latency, the paper's co-located setting).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.baselines import (
    PaxosConfig,
    PaxosReplica,
    PBFTConfig,
    QuorumBFTReplica,
    UpRightConfig,
    paxos_client_config,
    pbft_client_config,
    upright_client_config,
)
from repro.cluster.deployment import Deployment
from repro.core import BatchPolicy, Mode, SeeMoReConfig, SeeMoReReplica, client_config_for_mode
from repro.crypto.keys import KeyStore
from repro.net.costs import NodeCostModel
from repro.net.latency import CloudAwareLatencyModel
from repro.net.network import Network
from repro.net.topology import Cloud, Placement
from repro.sim.simulator import Simulator
from repro.smr.client import ClientConfig
from repro.workload.client_pool import ClientPool
from repro.workload.generator import Workload, microbenchmark
from repro.workload.metrics import MetricsCollector

DEFAULT_INTRA_CLOUD_LATENCY = 0.0002
DEFAULT_CLIENT_LATENCY = 0.0003


def _build_fabric(
    placement: Placement,
    seed: int,
    cross_cloud_latency: Optional[float],
    cost_model: Optional[NodeCostModel],
) -> tuple:
    simulator = Simulator()
    latency = CloudAwareLatencyModel(
        placement=placement,
        intra_cloud=DEFAULT_INTRA_CLOUD_LATENCY,
        cross_cloud=(
            cross_cloud_latency if cross_cloud_latency is not None else DEFAULT_INTRA_CLOUD_LATENCY
        ),
        client_link=DEFAULT_CLIENT_LATENCY,
    )
    network = Network(
        simulator,
        latency_model=latency,
        cost_model=cost_model or NodeCostModel(),
        seed=seed,
    )
    return simulator, network


def _finish_deployment(
    protocol: str,
    simulator: Simulator,
    network: Network,
    placement: Placement,
    keystore: KeyStore,
    replicas: Dict,
    client_config: ClientConfig,
    workload: Workload,
    num_clients: int,
    extras: Optional[Dict] = None,
    client_window: Optional[int] = None,
) -> Deployment:
    metrics = MetricsCollector()
    pool = ClientPool(
        simulator=simulator,
        network=network,
        keystore=keystore,
        placement=placement,
        client_config=client_config,
        workload=workload,
        metrics=metrics,
    )
    pool.spawn(num_clients, window=client_window)
    return Deployment(
        protocol=protocol,
        simulator=simulator,
        network=network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_pool=pool,
        metrics=metrics,
        extras=extras or {},
    )


# -- SeeMoRe ---------------------------------------------------------------------


def build_seemore(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    mode: Mode = Mode.LION,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
    batch_policy: Optional[BatchPolicy] = None,
    client_window: Optional[int] = None,
) -> Deployment:
    """Build a SeeMoRe deployment in the given mode.

    Follows the paper's evaluation layout: ``2c`` replicas in the private
    cloud and ``3m+1`` in the public cloud (N = 3m+2c+1).

    ``batch_policy`` configures request batching/pipelining at the primary
    (default: one request per slot, the paper's setup) and ``client_window``
    pipelines that many requests per client (default: the workload's
    ``client_window``, normally the paper's closed loop of 1).
    """
    workload = workload or microbenchmark("0/0")
    config = SeeMoReConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
        batch_policy=batch_policy or BatchPolicy(),
    )
    placement = Placement()
    placement.assign_many(config.private_replicas, Cloud.PRIVATE)
    placement.assign_many(config.public_replicas, Cloud.PUBLIC)

    simulator, network = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"seemore-{seed}")
    for replica_id in config.all_replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.all_replicas:
        replica = SeeMoReReplica(
            node_id=replica_id,
            simulator=simulator,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            initial_mode=mode,
            cost_model=cost_model,
        )
        network.register(replica)
        replicas[replica_id] = replica

    client_config = client_config_for_mode(config, mode, request_timeout=client_timeout)
    return _finish_deployment(
        protocol=f"seemore-{mode.name.lower()}",
        simulator=simulator,
        network=network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config, "mode": mode},
        client_window=client_window,
    )


# -- baselines --------------------------------------------------------------------------


def build_paxos(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 0,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the CFT baseline sized to tolerate ``f = c + m`` crash failures.

    The paper configures CFT to tolerate the same *total* number of failures
    as SeeMoRe, so the builder accepts both tolerances and adds them.
    """
    workload = workload or microbenchmark("0/0")
    fault_tolerance = crash_tolerance + byzantine_tolerance
    config = PaxosConfig.build(
        fault_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    placement.assign_many(config.replicas, Cloud.PRIVATE)

    simulator, network = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"paxos-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = PaxosReplica(
            node_id=replica_id,
            simulator=simulator,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        network.register(replica)
        replicas[replica_id] = replica

    client_config = paxos_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="cft",
        simulator=simulator,
        network=network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


def build_pbft(
    crash_tolerance: int = 0,
    byzantine_tolerance: int = 1,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the BFT baseline sized to tolerate ``f = c + m`` Byzantine failures."""
    workload = workload or microbenchmark("0/0")
    fault_tolerance = crash_tolerance + byzantine_tolerance
    config = PBFTConfig.build(
        fault_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    placement.assign_many(config.replicas, Cloud.PUBLIC)

    simulator, network = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"pbft-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = QuorumBFTReplica(
            node_id=replica_id,
            simulator=simulator,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        network.register(replica)
        replicas[replica_id] = replica

    client_config = pbft_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="bft",
        simulator=simulator,
        network=network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


def build_upright(
    crash_tolerance: int = 1,
    byzantine_tolerance: int = 1,
    workload: Optional[Workload] = None,
    num_clients: int = 1,
    seed: int = 0,
    cross_cloud_latency: Optional[float] = None,
    checkpoint_period: int = 128,
    request_timeout: float = 0.02,
    client_timeout: float = 0.2,
    cost_model: Optional[NodeCostModel] = None,
) -> Deployment:
    """Build the S-UpRight baseline (hybrid sizing, PBFT-like agreement)."""
    workload = workload or microbenchmark("0/0")
    config = UpRightConfig.build(
        crash_tolerance,
        byzantine_tolerance,
        checkpoint_period=checkpoint_period,
        request_timeout=request_timeout,
    )
    placement = Placement()
    # UpRight does not localise fault types; mimic the paper's layout by
    # putting 2c nodes alongside the private cloud and the rest in public,
    # which only matters when the cross-cloud latency is raised.
    private_count = 2 * crash_tolerance
    placement.assign_many(config.replicas[:private_count], Cloud.PRIVATE)
    placement.assign_many(config.replicas[private_count:], Cloud.PUBLIC)

    simulator, network = _build_fabric(placement, seed, cross_cloud_latency, cost_model)
    keystore = KeyStore(seed=f"upright-{seed}")
    for replica_id in config.replicas:
        keystore.register(replica_id)
    verifier = keystore.verifier()

    state_machine_factory = workload.state_machine_factory()
    replicas = {}
    for replica_id in config.replicas:
        replica = QuorumBFTReplica(
            node_id=replica_id,
            simulator=simulator,
            config=config,
            signer=keystore.signer_for(replica_id),
            verifier=verifier,
            state_machine=state_machine_factory(),
            cost_model=cost_model,
        )
        network.register(replica)
        replicas[replica_id] = replica

    client_config = upright_client_config(config, request_timeout=client_timeout)
    return _finish_deployment(
        protocol="s-upright",
        simulator=simulator,
        network=network,
        placement=placement,
        keystore=keystore,
        replicas=replicas,
        client_config=client_config,
        workload=workload,
        num_clients=num_clients,
        extras={"config": config},
    )


# -- registry ---------------------------------------------------------------------------------


_BUILDERS: Dict[str, Callable[..., Deployment]] = {
    "seemore-lion": lambda **kwargs: build_seemore(mode=Mode.LION, **kwargs),
    "seemore-dog": lambda **kwargs: build_seemore(mode=Mode.DOG, **kwargs),
    "seemore-peacock": lambda **kwargs: build_seemore(mode=Mode.PEACOCK, **kwargs),
    "cft": build_paxos,
    "bft": build_pbft,
    "s-upright": build_upright,
}


def builder_for(protocol: str) -> Callable[..., Deployment]:
    """Look up a deployment builder by protocol name.

    Valid names: ``seemore-lion``, ``seemore-dog``, ``seemore-peacock``,
    ``cft``, ``bft``, ``s-upright``.
    """
    try:
        return _BUILDERS[protocol]
    except KeyError:
        raise KeyError(
            f"unknown protocol {protocol!r}; choose one of {sorted(_BUILDERS)}"
        ) from None
