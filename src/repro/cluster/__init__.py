"""Experiment harness: deployment builders and runners.

This package stands up a complete simulated deployment -- network, replica
group, clients -- for any protocol in the repository, and runs the
measurement loops used by the benchmarks:

* :func:`~repro.cluster.builders.build_seemore` and the baseline builders
  create a :class:`~repro.cluster.deployment.Deployment`;
* :func:`~repro.cluster.runner.run_deployment` drives it for a stretch of
  simulated time and returns throughput/latency;
* :func:`~repro.cluster.runner.sweep_clients` repeats that for increasing
  client counts, producing the latency-throughput curves of Figures 2-3;
* :func:`~repro.cluster.runner.run_timeline` produces the per-bin
  throughput timeline of Figure 4.
"""

from repro.cluster.deployment import Deployment
from repro.cluster.builders import (
    build_paxos,
    build_pbft,
    build_seemore,
    build_sharded_seemore,
    build_upright,
    builder_for,
)
from repro.cluster.runner import (
    RunResult,
    ShardedRunResult,
    run_deployment,
    run_sharded_deployment,
    run_timeline,
    sweep_clients,
)

__all__ = [
    "Deployment",
    "build_seemore",
    "build_sharded_seemore",
    "build_paxos",
    "build_pbft",
    "build_upright",
    "builder_for",
    "RunResult",
    "ShardedRunResult",
    "run_deployment",
    "run_sharded_deployment",
    "sweep_clients",
    "run_timeline",
]
