"""A fully wired simulated deployment of one replication protocol."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.crypto.keys import KeyStore
from repro.net.network import Network
from repro.net.topology import Placement
from repro.runtime.api import Runtime
from repro.sim.simulator import Simulator
from repro.smr.ledger import CommitLedger, find_safety_violations
from repro.smr.replica import ReplicaBase
from repro.workload.client_pool import ClientPool
from repro.workload.metrics import MetricsCollector


@dataclass
class Deployment:
    """Everything needed to run one experiment.

    Attributes:
        protocol: human-readable protocol name (``"seemore-lion"``, ``"pbft"``...).
        simulator: the discrete-event simulator owning time.
        network: the message fabric connecting replicas and clients.
        placement: cloud placement of every node.
        keystore: key material for all nodes.
        replicas: replica id -> replica object.
        client_pool: the closed-loop clients driving load.
        metrics: shared completion collector.
        faulty_replicas: ids of replicas an experiment made faulty (crashed or
            Byzantine); excluded from safety checks.
        extras: protocol-specific configuration (e.g. the SeeMoRe config).
        runtime: the runtime facade the nodes were built against.  Builders
            always populate it; ``simulator``/``network`` stay as first-class
            fields because the scenario/adaptive/fault layers are sim-only
            tooling and reach into the discrete-event internals directly.
    """

    protocol: str
    simulator: Simulator
    network: Network
    placement: Placement
    keystore: KeyStore
    replicas: Dict[str, ReplicaBase]
    client_pool: ClientPool
    metrics: MetricsCollector
    faulty_replicas: set = field(default_factory=set)
    extras: Dict[str, Any] = field(default_factory=dict)
    runtime: Optional[Runtime] = None
    # Per-replica count of batch sizes already pulled into the metrics, so
    # collect_batch_sizes() can be called once per phase without re-counting.
    _batch_sizes_collected: Dict[str, int] = field(default_factory=dict)

    # -- convenience accessors -------------------------------------------------

    @property
    def clients(self) -> List:
        return self.client_pool.clients

    def replica(self, replica_id: str) -> ReplicaBase:
        return self.replicas[replica_id]

    def correct_replicas(self) -> List[ReplicaBase]:
        """Replicas that are neither crashed nor designated faulty."""
        return [
            replica
            for replica_id, replica in sorted(self.replicas.items())
            if replica_id not in self.faulty_replicas and not replica.crashed
        ]

    def correct_ledgers(self) -> List[CommitLedger]:
        return [replica.ledger for replica in self.correct_replicas()]

    def mark_faulty(self, replica_id: str) -> None:
        if replica_id not in self.replicas:
            raise KeyError(f"unknown replica: {replica_id!r}")
        self.faulty_replicas.add(replica_id)

    # -- invariants --------------------------------------------------------------

    def safety_violations(self) -> List:
        """Conflicting commits among correct replicas (must always be empty)."""
        return find_safety_violations(self.correct_ledgers())

    def assert_safe(self) -> None:
        violations = self.safety_violations()
        if violations:
            raise AssertionError(
                f"{self.protocol}: safety violated in {len(violations)} slot(s); "
                f"first conflict: {violations[0]}"
            )

    def total_completed(self) -> int:
        return self.metrics.completed

    def collect_batch_sizes(self) -> None:
        """Pull proposed-batch-size telemetry from replicas into the metrics.

        Idempotent: repeated calls (e.g. once per experiment phase) record
        only the batches proposed since the previous collection.  Only
        replicas with a batcher (SeeMoRe) report.
        """
        for replica_id, replica in sorted(self.replicas.items()):
            if replica_id in self.faulty_replicas:
                continue
            batcher = getattr(replica, "batcher", None)
            if batcher is None:
                continue
            offset = self._batch_sizes_collected.get(replica_id, 0)
            sizes = batcher.proposed_batch_sizes
            self.metrics.record_batches(sizes[offset:])
            self._batch_sizes_collected[replica_id] = len(sizes)

    def add_clients(self, count: int, window: Optional[int] = None, start: bool = True) -> List:
        """Spawn ``count`` extra closed-loop clients, optionally mid-run.

        New clients register with the network and keystore like the
        originals (the shared verifier sees late registrations, mirroring a
        PKI), so load can be ramped while the deployment is running.
        """
        created = self.client_pool.spawn(count, window=window)
        if start:
            for client in created:
                client.start()
        return created

    def start_clients(self) -> None:
        self.client_pool.start_all()

    def stop_clients(self) -> None:
        self.client_pool.stop_all()

    def run(self, duration: float) -> float:
        """Advance simulated time by ``duration`` seconds."""
        return self.simulator.run(until=self.simulator.now + duration)
