"""Experiment runners.

These functions implement the measurement methodology of Section 6:

* :func:`run_deployment` — start the clients, run for a stretch of
  simulated time, discard a warm-up window, and report throughput and
  latency over the measurement window;
* :func:`sweep_clients` — repeat that for increasing client counts to trace
  one latency-vs-throughput curve (one line of Figures 2 and 3);
* :func:`run_timeline` — run with an optional fault schedule and report
  throughput per time bin (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.deployment import Deployment
from repro.workload.metrics import LatencySummary, ShardLoadSummary, per_shard_load

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard -> cluster)
    from repro.shard.deployment import ShardedDeployment


@dataclass(frozen=True)
class RunResult:
    """Outcome of one measured run of one deployment."""

    protocol: str
    clients: int
    duration: float
    completed: int
    throughput: float
    latency: LatencySummary
    client_timeouts: int
    safety_violations: int

    @property
    def throughput_kreqs(self) -> float:
        """Throughput in thousands of requests per second (the paper's unit)."""
        return self.throughput / 1000.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency in milliseconds (the paper's unit)."""
        return self.latency.mean * 1000.0

    def as_row(self) -> Dict[str, float]:
        """Flat dict used by the benchmark harness to print tables."""
        return {
            "protocol": self.protocol,
            "clients": self.clients,
            "throughput_kreqs_per_s": round(self.throughput_kreqs, 3),
            "mean_latency_ms": round(self.mean_latency_ms, 3),
            "p99_latency_ms": round(self.latency.p99 * 1000.0, 3),
            "completed": self.completed,
            "timeouts": self.client_timeouts,
        }


def _run_measurement_window(deployment, duration: float, warmup: float) -> Tuple[float, float]:
    """Start clients, burn the warm-up, run the measured window, stop clients.

    Shared by the single-cluster and sharded runners so the warm-up
    discipline can never drift between them.  Returns the measurement
    window bounds in simulated time.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    simulator = deployment.simulator
    deployment.start_clients()
    start = simulator.now
    simulator.run(until=start + warmup)
    measure_start = simulator.now
    simulator.run(until=measure_start + duration)
    measure_end = simulator.now
    deployment.stop_clients()
    return measure_start, measure_end


def _assemble_run_result(
    deployment, measure_start: float, measure_end: float, safety_violations: int
) -> RunResult:
    """Build a :class:`RunResult` from a deployment's metrics over one window."""
    metrics = deployment.metrics
    return RunResult(
        protocol=deployment.protocol,
        clients=len(deployment.clients),
        duration=measure_end - measure_start,
        completed=metrics.completed,
        throughput=metrics.throughput(start=measure_start, end=measure_end),
        latency=metrics.latency(start=measure_start, end=measure_end),
        client_timeouts=deployment.client_pool.total_timeouts,
        safety_violations=safety_violations,
    )


def run_deployment(
    deployment: Deployment,
    duration: float = 2.0,
    warmup: float = 0.2,
    check_safety: bool = True,
) -> RunResult:
    """Run a deployment under client load and measure the steady state.

    Args:
        deployment: a freshly built deployment (clients not yet started).
        duration: measured window of simulated seconds (after warm-up).
        warmup: simulated seconds of load discarded before measuring.
        check_safety: verify that correct replicas' ledgers agree afterwards.
    """
    measure_start, measure_end = _run_measurement_window(deployment, duration, warmup)
    violations = deployment.safety_violations() if check_safety else []
    if check_safety and violations:
        raise AssertionError(
            f"{deployment.protocol}: safety violated during the run: {violations[:3]}"
        )
    return _assemble_run_result(deployment, measure_start, measure_end, len(violations))


@dataclass(frozen=True)
class ShardedRunResult:
    """Outcome of one measured run of a sharded deployment.

    ``aggregate`` covers every completion (single-shard operations *and*
    cross-shard transactions, each counted once at the client that issued
    it); ``per_shard`` covers the single-shard operations each shard
    served, so shard balance is visible next to the total.
    """

    aggregate: RunResult
    per_shard: Tuple[ShardLoadSummary, ...]
    transactions: Dict[str, int]
    atomicity_violations: int

    def shard_rows(self) -> List[Dict[str, object]]:
        """Flat per-shard rows for :func:`repro.analysis.report.format_sharded_results`."""
        return [summary.as_row() for summary in self.per_shard]


def run_sharded_deployment(
    deployment: "ShardedDeployment",
    duration: float = 2.0,
    warmup: float = 0.2,
    check_safety: bool = True,
) -> ShardedRunResult:
    """Run a sharded deployment under load; measure aggregate and per-shard.

    Shares :func:`run_deployment`'s measurement window (same warm-up
    discipline, same units) and additionally verifies the sharded safety
    story: every shard's ledger agreement plus cross-shard atomicity.
    """
    measure_start, measure_end = _run_measurement_window(deployment, duration, warmup)
    violations = deployment.safety_violations() if check_safety else []
    atomicity = deployment.atomicity_violations() if check_safety else []
    if check_safety and (violations or atomicity):
        raise AssertionError(
            f"{deployment.protocol}: safety violated during the run: "
            f"{violations[:3] if violations else atomicity[:3]}"
        )
    aggregate = _assemble_run_result(
        deployment, measure_start, measure_end, len(violations) + len(atomicity)
    )
    return ShardedRunResult(
        aggregate=aggregate,
        per_shard=tuple(
            per_shard_load(
                [shard.metrics for shard in deployment.shards],
                start=measure_start,
                end=measure_end,
            )
        ),
        transactions=deployment.transaction_stats(),
        atomicity_violations=len(atomicity),
    )


def sweep_clients(
    builder: Callable[..., Deployment],
    client_counts: Sequence[int],
    duration: float = 1.0,
    warmup: float = 0.2,
    **builder_kwargs,
) -> List[RunResult]:
    """Trace a latency-throughput curve by sweeping the client count."""
    results = []
    for count in client_counts:
        deployment = builder(num_clients=count, **builder_kwargs)
        results.append(run_deployment(deployment, duration=duration, warmup=warmup))
    return results


def peak_throughput(results: Sequence[RunResult]) -> float:
    """The highest throughput (requests/second) observed along a curve."""
    return max((result.throughput for result in results), default=0.0)


def run_timeline(
    deployment: Deployment,
    duration: float,
    bin_width: float,
    fault_schedule: Optional[Sequence[Tuple[float, Callable[[Deployment], None]]]] = None,
) -> List[Tuple[float, float]]:
    """Run a deployment and report throughput per time bin (Figure 4).

    Args:
        deployment: a freshly built deployment.
        duration: total simulated time to run.
        bin_width: width of each throughput bin in simulated seconds.
        fault_schedule: optional list of ``(at_time, action)`` pairs; each
            action is called with the deployment when simulated time reaches
            ``at_time`` (e.g. crash the primary).
    """
    simulator = deployment.simulator
    start = simulator.now
    for at_time, action in fault_schedule or []:
        simulator.call_at(start + at_time, lambda action=action: action(deployment))
    deployment.start_clients()
    simulator.run(until=start + duration)
    deployment.stop_clients()
    return deployment.metrics.timeline(bin_width=bin_width, start=start, end=start + duration)
