"""Experiment runners.

These functions implement the measurement methodology of Section 6:

* :func:`run_deployment` — start the clients, run for a stretch of
  simulated time, discard a warm-up window, and report throughput and
  latency over the measurement window;
* :func:`sweep_clients` — repeat that for increasing client counts to trace
  one latency-vs-throughput curve (one line of Figures 2 and 3);
* :func:`run_timeline` — run with an optional fault schedule and report
  throughput per time bin (Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.cluster.deployment import Deployment
from repro.workload.metrics import (
    LatencySummary,
    MetricsCollector,
    ShardLoadSummary,
    per_shard_load,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (shard -> cluster)
    from repro.shard.deployment import ShardedDeployment
    from repro.workload.openloop import OpenLoopDriver
    from repro.workload.slo import SloEvaluation, SloSpec


@runtime_checkable
class RunReport(Protocol):
    """The common surface every run-result type exposes.

    Every runner in this repo — single-cluster sim (:class:`RunResult`),
    sharded (:class:`ShardedRunResult`), multi-process
    (:class:`repro.runtime.proc.ProcResult`), and open-loop
    (:class:`OpenLoopRunResult`) — reports through this protocol, so
    analysis and test code can consume any of them without duck-typed
    attribute guessing:

    * ``committed`` — requests the run completed end to end;
    * ``metrics_collector`` — the completion collector, when the backend
      keeps one in-process (``None`` for the multi-process runtime, whose
      collectors die with the workers);
    * ``node_stats()`` — per-node introspection summaries;
    * ``violation_count`` — safety/atomicity/SLO violations observed;
    * ``report_row()`` — a flat dict for tables and JSON artifacts.
    """

    @property
    def committed(self) -> int: ...

    @property
    def metrics_collector(self) -> Optional[MetricsCollector]: ...

    def node_stats(self) -> Dict[str, Any]: ...

    @property
    def violation_count(self) -> int: ...

    def report_row(self) -> Dict[str, Any]: ...


@dataclass(frozen=True)
class RunResult:
    """Outcome of one measured run of one deployment."""

    protocol: str
    clients: int
    duration: float
    completed: int
    throughput: float
    latency: LatencySummary
    client_timeouts: int
    safety_violations: int
    # RunReport extras: populated by the runners, defaulted so positional
    # construction from older call sites keeps working.
    metrics_collector: Optional[MetricsCollector] = None
    node_summaries: Dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_kreqs(self) -> float:
        """Throughput in thousands of requests per second (the paper's unit)."""
        return self.throughput / 1000.0

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency in milliseconds (the paper's unit)."""
        return self.latency.mean * 1000.0

    # -- RunReport ----------------------------------------------------------

    @property
    def committed(self) -> int:
        return self.completed

    @property
    def violation_count(self) -> int:
        return self.safety_violations

    def node_stats(self) -> Dict[str, Any]:
        return dict(self.node_summaries)

    def as_row(self) -> Dict[str, float]:
        """Flat dict used by the benchmark harness to print tables."""
        return {
            "protocol": self.protocol,
            "clients": self.clients,
            "throughput_kreqs_per_s": round(self.throughput_kreqs, 3),
            "mean_latency_ms": round(self.mean_latency_ms, 3),
            "p99_latency_ms": round(self.latency.p99 * 1000.0, 3),
            "completed": self.completed,
            "timeouts": self.client_timeouts,
        }

    def report_row(self) -> Dict[str, Any]:
        return self.as_row()


def _run_measurement_window(deployment, duration: float, warmup: float) -> Tuple[float, float]:
    """Start clients, burn the warm-up, run the measured window, stop clients.

    Shared by the single-cluster and sharded runners so the warm-up
    discipline can never drift between them.  Returns the measurement
    window bounds in simulated time.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    simulator = deployment.simulator
    deployment.start_clients()
    start = simulator.now
    simulator.run(until=start + warmup)
    measure_start = simulator.now
    simulator.run(until=measure_start + duration)
    measure_end = simulator.now
    deployment.stop_clients()
    return measure_start, measure_end


def _assemble_run_result(
    deployment, measure_start: float, measure_end: float, safety_violations: int
) -> RunResult:
    """Build a :class:`RunResult` from a deployment's metrics over one window."""
    metrics = deployment.metrics
    return RunResult(
        protocol=deployment.protocol,
        clients=len(deployment.clients),
        duration=measure_end - measure_start,
        completed=metrics.completed,
        throughput=metrics.throughput(start=measure_start, end=measure_end),
        latency=metrics.latency(start=measure_start, end=measure_end),
        client_timeouts=deployment.client_pool.total_timeouts,
        safety_violations=safety_violations,
        metrics_collector=metrics,
        node_summaries=_node_summaries(deployment),
    )


def _node_summaries(deployment) -> Dict[str, Any]:
    """Per-replica ``state_summary()`` snapshots for :meth:`RunReport.node_stats`."""
    summaries: Dict[str, Any] = {}
    replicas = getattr(deployment, "replicas", None)
    if replicas is None:
        # Sharded deployments hold their replicas per shard.
        shards = getattr(deployment, "shards", None) or []
        replicas = {
            replica_id: replica
            for shard in shards
            for replica_id, replica in shard.replicas.items()
        }
    for replica_id in sorted(replicas):
        replica = replicas[replica_id]
        try:
            summaries[replica_id] = replica.state_summary()
        except Exception:  # pragma: no cover - introspection must not fail a run
            continue
    return summaries


def run_deployment(
    deployment: Deployment,
    duration: float = 2.0,
    warmup: float = 0.2,
    check_safety: bool = True,
) -> RunResult:
    """Run a deployment under client load and measure the steady state.

    Args:
        deployment: a freshly built deployment (clients not yet started).
        duration: measured window of simulated seconds (after warm-up).
        warmup: simulated seconds of load discarded before measuring.
        check_safety: verify that correct replicas' ledgers agree afterwards.
    """
    measure_start, measure_end = _run_measurement_window(deployment, duration, warmup)
    violations = deployment.safety_violations() if check_safety else []
    if check_safety and violations:
        raise AssertionError(
            f"{deployment.protocol}: safety violated during the run: {violations[:3]}"
        )
    return _assemble_run_result(deployment, measure_start, measure_end, len(violations))


@dataclass(frozen=True)
class ShardedRunResult:
    """Outcome of one measured run of a sharded deployment.

    ``aggregate`` covers every completion (single-shard operations *and*
    cross-shard transactions, each counted once at the client that issued
    it); ``per_shard`` covers the single-shard operations each shard
    served, so shard balance is visible next to the total.
    """

    aggregate: RunResult
    per_shard: Tuple[ShardLoadSummary, ...]
    transactions: Dict[str, int]
    atomicity_violations: int

    def shard_rows(self) -> List[Dict[str, object]]:
        """Flat per-shard rows for :func:`repro.analysis.report.format_sharded_results`."""
        return [summary.as_row() for summary in self.per_shard]

    # -- RunReport (delegating to the aggregate where the data lives) --------

    @property
    def committed(self) -> int:
        return self.aggregate.completed

    @property
    def metrics_collector(self) -> Optional[MetricsCollector]:
        return self.aggregate.metrics_collector

    def node_stats(self) -> Dict[str, Any]:
        return self.aggregate.node_stats()

    @property
    def violation_count(self) -> int:
        return self.aggregate.safety_violations + self.atomicity_violations

    def report_row(self) -> Dict[str, Any]:
        row = dict(self.aggregate.as_row())
        # Flattened (scalar) so every RunReport row fits a plain table.
        for counter in ("started", "committed", "aborted"):
            row[f"transactions_{counter}"] = self.transactions.get(counter, 0)
        row["atomicity_violations"] = self.atomicity_violations
        return row


def run_sharded_deployment(
    deployment: "ShardedDeployment",
    duration: float = 2.0,
    warmup: float = 0.2,
    check_safety: bool = True,
) -> ShardedRunResult:
    """Run a sharded deployment under load; measure aggregate and per-shard.

    Shares :func:`run_deployment`'s measurement window (same warm-up
    discipline, same units) and additionally verifies the sharded safety
    story: every shard's ledger agreement plus cross-shard atomicity.
    """
    measure_start, measure_end = _run_measurement_window(deployment, duration, warmup)
    violations = deployment.safety_violations() if check_safety else []
    atomicity = deployment.atomicity_violations() if check_safety else []
    if check_safety and (violations or atomicity):
        raise AssertionError(
            f"{deployment.protocol}: safety violated during the run: "
            f"{violations[:3] if violations else atomicity[:3]}"
        )
    aggregate = _assemble_run_result(
        deployment, measure_start, measure_end, len(violations) + len(atomicity)
    )
    return ShardedRunResult(
        aggregate=aggregate,
        per_shard=tuple(
            per_shard_load(
                [shard.metrics for shard in deployment.shards],
                start=measure_start,
                end=measure_end,
            )
        ),
        transactions=deployment.transaction_stats(),
        atomicity_violations=len(atomicity),
    )


@dataclass(frozen=True)
class OpenLoopRunResult:
    """Outcome of one open-loop run: served latency plus the overload story.

    Unlike the closed-loop :class:`RunResult`, offered load and served load
    can differ: ``offered`` arrivals were generated, of which ``dropped``
    never left the driver (backlog full), ``shed`` were abandoned after
    repeated signed ``Busy`` rejects, and ``completed`` finished end to
    end.  ``latency`` covers completions only — served latency stays
    honest, and the excess is visible in the counters, exactly the split an
    SLO report needs.
    """

    protocol: str
    duration: float
    offered: int
    completed: int
    dropped: int
    shed: int
    busy_rejects: int
    throughput: float
    latency: LatencySummary
    safety_violations: int
    slo: Optional["SloEvaluation"] = None
    metrics_collector: Optional[MetricsCollector] = None
    node_summaries: Dict[str, Any] = field(default_factory=dict)

    @property
    def offered_rate(self) -> float:
        """Arrivals per second of measured time."""
        if self.duration <= 0:
            return 0.0
        return self.offered / self.duration

    @property
    def slo_holds(self) -> Optional[bool]:
        """Whether the SLO held (``None`` when no SLO was evaluated)."""
        if self.slo is None:
            return None
        return self.slo.holds

    # -- RunReport ----------------------------------------------------------

    @property
    def committed(self) -> int:
        return self.completed

    @property
    def violation_count(self) -> int:
        slo_violated = 1 if self.slo is not None and not self.slo.holds else 0
        return self.safety_violations + slo_violated

    def node_stats(self) -> Dict[str, Any]:
        return dict(self.node_summaries)

    def report_row(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "protocol": self.protocol,
            "offered_rate_reqs_per_s": round(self.offered_rate, 1),
            "throughput_kreqs_per_s": round(self.throughput / 1000.0, 3),
            "p50_latency_ms": round(self.latency.p50 * 1000.0, 3),
            "p99_latency_ms": round(self.latency.p99 * 1000.0, 3),
            "p999_latency_ms": round(self.latency.p999 * 1000.0, 3),
            "completed": self.completed,
            "offered": self.offered,
            "dropped": self.dropped,
            "shed": self.shed,
            "busy_rejects": self.busy_rejects,
        }
        if self.slo is not None:
            row["slo_holds"] = self.slo.holds
            row["slo_violating_bins"] = self.slo.violating_bins
        return row


def run_open_loop(
    deployment: Deployment,
    driver: "OpenLoopDriver",
    duration: float = 2.0,
    warmup: float = 0.2,
    slo: Optional["SloSpec"] = None,
    check_safety: bool = True,
) -> OpenLoopRunResult:
    """Run a deployment under an open-loop driver and measure the window.

    Same warm-up discipline as :func:`run_deployment`, but the load comes
    from ``driver`` (a :class:`~repro.workload.openloop.OpenLoopDriver`
    feeding a modeled population through a bounded connection pool) and the
    result separates offered from served load.  When ``slo`` is given the
    measured window is judged against it bin by bin.
    """
    from repro.workload.slo import evaluate_slo

    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    simulator = deployment.simulator
    driver.start()
    start = simulator.now
    simulator.run(until=start + warmup)
    measure_start = simulator.now
    offered_before = driver.offered
    completed_before = driver.completed
    dropped_before = driver.dropped
    shed_before = driver.shed
    rejects_before = driver.busy_rejects
    simulator.run(until=measure_start + duration)
    measure_end = simulator.now
    driver.stop()
    violations = deployment.safety_violations() if check_safety else []
    if check_safety and violations:
        raise AssertionError(
            f"{deployment.protocol}: safety violated during the run: {violations[:3]}"
        )
    metrics = deployment.metrics
    evaluation = (
        evaluate_slo(slo, metrics, start=measure_start, end=measure_end)
        if slo is not None
        else None
    )
    return OpenLoopRunResult(
        protocol=deployment.protocol,
        duration=measure_end - measure_start,
        offered=driver.offered - offered_before,
        completed=driver.completed - completed_before,
        dropped=driver.dropped - dropped_before,
        shed=driver.shed - shed_before,
        busy_rejects=driver.busy_rejects - rejects_before,
        throughput=metrics.throughput(start=measure_start, end=measure_end),
        latency=metrics.latency(start=measure_start, end=measure_end),
        safety_violations=len(violations),
        slo=evaluation,
        metrics_collector=metrics,
        node_summaries=_node_summaries(deployment),
    )


def sweep_clients(
    builder: Callable[..., Deployment],
    client_counts: Sequence[int],
    duration: float = 1.0,
    warmup: float = 0.2,
    **builder_kwargs,
) -> List[RunResult]:
    """Trace a latency-throughput curve by sweeping the client count."""
    results = []
    for count in client_counts:
        deployment = builder(num_clients=count, **builder_kwargs)
        results.append(run_deployment(deployment, duration=duration, warmup=warmup))
    return results


def peak_throughput(results: Sequence[RunResult]) -> float:
    """The highest throughput (requests/second) observed along a curve."""
    return max((result.throughput for result in results), default=0.0)


def run_timeline(
    deployment: Deployment,
    duration: float,
    bin_width: float,
    fault_schedule: Optional[Sequence[Tuple[float, Callable[[Deployment], None]]]] = None,
) -> List[Tuple[float, float]]:
    """Run a deployment and report throughput per time bin (Figure 4).

    Args:
        deployment: a freshly built deployment.
        duration: total simulated time to run.
        bin_width: width of each throughput bin in simulated seconds.
        fault_schedule: optional list of ``(at_time, action)`` pairs; each
            action is called with the deployment when simulated time reaches
            ``at_time`` (e.g. crash the primary).
    """
    simulator = deployment.simulator
    start = simulator.now
    for at_time, action in fault_schedule or []:
        simulator.call_at(start + at_time, lambda action=action: action(deployment))
    deployment.start_clients()
    simulator.run(until=start + duration)
    deployment.stop_clients()
    return deployment.metrics.timeline(bin_width=bin_width, start=start, end=start + duration)
