"""Closed-loop replicated-service client.

The client behaviour follows Section 5 of the paper:

* it sends each request to the node(s) it believes can order it (the
  primary in the Lion/Dog modes and in Paxos; the primary proxy in the
  Peacock mode and PBFT);
* it accepts a result once it has *matching* replies from enough distinct
  replicas -- one signed reply from a trusted replica, or a quorum of
  matching replies from untrusted ones, depending on the protocol/mode;
* if no acceptable reply arrives within a timeout it retransmits the same
  request to a wider set of replicas, which is also what eventually exposes
  a faulty primary and triggers a view change.

The client is *closed loop*: it keeps a fixed window of requests
outstanding and issues the next one as soon as a previous one completes.
With the default ``window=1`` this is exactly the load model used in the
paper's experiments (each client "waits for the reply before sending a
subsequent request"); a larger window pipelines several requests, which is
how the batching benchmarks offer enough concurrent load for primaries to
fill their batches without simulating thousands of client objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import sha256
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.adaptive.evidence import EvidenceKind, EvidenceLog
from repro.crypto.digest import (
    DIGEST_CACHE_ATTR,
    HAS_CACHE_FLAG,
    WIRE_SIZE_CACHE_ATTR,
)
from repro.crypto.signatures import Signer, Verifier, WindowVerifier
from repro.net.costs import NodeCostModel
from repro.net.node import Node
from repro.smr.messages import _HEADER_BYTES, _SIGNATURE_BYTES, Busy, Reply, Request
from repro.smr.state_machine import Operation
from repro.wire.primitives import encode_request

#: Fixed per-request wire overhead (header + client signature), matching
#: ``Request.wire_size``.
_REQUEST_OVERHEAD = _HEADER_BYTES + _SIGNATURE_BYTES

TargetSelector = Callable[[int, int], List[str]]
OperationFactory = Callable[[int], Operation]


@dataclass
class ClientConfig:
    """How a client talks to a particular protocol deployment.

    Attributes:
        request_targets: ``(view, mode) -> node ids`` to send new requests to.
        replies_needed: matching replies required to accept a result.
        trusted_replicas: replicas whose single signed reply is sufficient
            (the private cloud in SeeMoRe's Lion mode, the leader in Paxos).
        retransmit_targets: ``(view, mode) -> node ids`` for retransmissions
            after a timeout; defaults to the request targets.
        retransmit_replies_needed: matching replies required after a
            retransmission (e.g. m+1 in the Lion and Dog modes); defaults to
            ``replies_needed``.
        untrusted_replies_needed: minimum matching replies to accept a
            result from *untrusted* replicas in a mode that has trusted
            repliers (m+1 in SeeMoRe's Lion mode, per the paper's client
            rule); defaults to ``retransmit_replies_needed``.  Irrelevant
            when ``trusted_replicas`` (and the per-mode overrides) are
            empty.
        request_timeout: seconds to wait before retransmitting.
        initial_mode: protocol mode id assumed before the first reply.
        replies_by_mode: optional per-mode override of ``replies_needed``;
            used when the deployment can switch modes dynamically.
        trusted_by_mode: optional per-mode override of ``trusted_replicas``.
        busy_backoff_base: first re-send delay after a signed ``Busy``
            reject from an admission-controlled primary; doubles per
            consecutive reject of the same request.
        busy_backoff_cap: upper bound on the per-request backoff delay.
        max_busy_retries: give up on a request after this many consecutive
            ``Busy`` rejects (the request is *shed*: dropped and counted,
            never completed).  ``None`` — the closed-loop default — retries
            forever; open-loop populations set a small bound so offered
            load actually drops during overload instead of queueing at the
            clients.
    """

    request_targets: TargetSelector
    replies_needed: int
    trusted_replicas: FrozenSet[str] = frozenset()
    retransmit_targets: Optional[TargetSelector] = None
    retransmit_replies_needed: Optional[int] = None
    untrusted_replies_needed: Optional[int] = None
    request_timeout: float = 0.05
    initial_mode: int = 0
    replies_by_mode: Optional[Dict[int, int]] = None
    trusted_by_mode: Optional[Dict[int, FrozenSet[str]]] = None
    busy_backoff_base: float = 0.005
    busy_backoff_cap: float = 0.08
    max_busy_retries: Optional[int] = None

    def targets_for_retransmit(self, view: int, mode: int) -> List[str]:
        selector = self.retransmit_targets or self.request_targets
        return selector(view, mode)

    def replies_for_mode(self, mode: int) -> int:
        if self.replies_by_mode and mode in self.replies_by_mode:
            return self.replies_by_mode[mode]
        return self.replies_needed

    def trusted_for_mode(self, mode: int) -> FrozenSet[str]:
        if self.trusted_by_mode and mode in self.trusted_by_mode:
            return self.trusted_by_mode[mode]
        return self.trusted_replicas

    @property
    def replies_needed_after_retransmit(self) -> int:
        if self.retransmit_replies_needed is None:
            return self.replies_needed
        return self.retransmit_replies_needed

    @property
    def untrusted_reply_floor(self) -> int:
        if self.untrusted_replies_needed is None:
            return self.replies_needed_after_retransmit
        return self.untrusted_replies_needed


@dataclass
class CompletedRequest:
    """Latency record for one completed request."""

    timestamp: int
    sent_at: float
    completed_at: float
    retransmitted: bool

    @property
    def latency(self) -> float:
        return self.completed_at - self.sent_at


@dataclass
class _PendingRequest:
    """One in-flight request and the reply votes gathered for it."""

    request: Request
    sent_at: float
    last_sent_at: float
    retransmitted: bool = False
    votes: Dict[str, set] = field(default_factory=dict)
    busy_attempts: int = 0


class Client(Node):
    """A closed-loop client of a replicated service."""

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        signer: Signer,
        verifier: Verifier,
        config: ClientConfig,
        operation_factory: OperationFactory,
        recorder: Optional[Any] = None,
        max_requests: Optional[int] = None,
        cost_model: Optional[NodeCostModel] = None,
        window: int = 1,
    ) -> None:
        super().__init__(node_id, runtime, cost_model=cost_model)
        if window < 1:
            raise ValueError(f"client window must be at least 1: {window}")
        self.signer = signer
        self.verifier = verifier
        # Replies arrive per-replica; the window verifier amortizes their
        # signature checks into per-sender transcript windows.
        self._window_verifier = WindowVerifier(verifier)
        self.config = config
        self.operation_factory = operation_factory
        self.recorder = recorder
        self.max_requests = max_requests
        self.window = window

        self.known_view = 0
        self.known_mode = config.initial_mode
        self.completed: List[CompletedRequest] = []
        self.timeouts = 0
        # Admission-control interactions: rejects received, and requests
        # abandoned after ``max_busy_retries`` consecutive rejects.
        self.busy_rejects = 0
        self.shed_requests = 0
        # Fault evidence this client observed (signed replies carrying a
        # result the accepted quorum contradicts); consumed by the adaptive
        # controller.
        self.evidence = EvidenceLog(node_id, self.runtime)

        self._next_timestamp = 0
        # Acceptance rules memoized per mode id: (trusted set, quorum,
        # quorum after retransmission).  The config's per-mode lookups run
        # once per reply otherwise, and the config never changes mid-run.
        self._mode_rules_cache: Dict[int, tuple] = {}
        # Insertion-ordered map of timestamp -> pending request (oldest first).
        self._pending: Dict[int, _PendingRequest] = {}
        # timestamp -> simulated time at which to re-send after a Busy
        # reject; served by a dedicated timer so backoff delays (which
        # shrink and grow per request) never disturb the retransmit timer's
        # oldest-deadline bookkeeping.
        self._busy_resends: Dict[int, float] = {}
        self._busy_timer = self.create_timer(self._on_busy_resend, label="busy-backoff")
        self._timer = self.create_timer(self._on_timeout, label="request-timeout")
        # Deadline the timer is currently armed for; lets completions skip
        # re-arming when the oldest outstanding transmission is unchanged.
        self._armed_deadline: Optional[float] = None
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Begin the closed loop (fills the request window immediately)."""
        self._stopped = False
        self._fill_window()

    def stop(self) -> None:
        """Stop issuing new requests (outstanding ones may still finish)."""
        self._stopped = True
        self._timer.stop()
        self._busy_timer.stop()

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    @property
    def outstanding_count(self) -> int:
        return len(self._pending)

    @property
    def outstanding_timestamp(self) -> Optional[int]:
        """Oldest in-flight timestamp (None when nothing is outstanding)."""
        return next(iter(self._pending), None)

    # -- issuing ------------------------------------------------------------

    def _fill_window(self) -> None:
        while self._issue_next():
            pass

    def _issue_next(self) -> bool:
        if self._stopped or self.crashed:
            return False
        if len(self._pending) >= self.window:
            return False
        if self.max_requests is not None and self._next_timestamp >= self.max_requests:
            return False
        operation = self._next_operation(self._next_timestamp + 1)
        if operation is None:
            return False
        self._next_timestamp += 1
        timestamp = self._next_timestamp
        request = Request(
            operation=operation, timestamp=timestamp, client_id=self.node_id
        )
        # Fused signing path (mirrors ReplicaBase.send_reply): one request
        # goes out per completion in the closed loop, so the wire frame,
        # content digest, wire size, and signature are built in one pass and
        # seeded into the message's cache slots — exactly what
        # ``request.sign(self.signer)`` would compute through three lazy
        # layers (sign -> digest_of -> wire_slice -> signing_bytes).
        frame = encode_request(
            timestamp, self.node_id, operation.kind, operation.args, operation.payload
        )
        content_digest = sha256(frame).hexdigest()
        request.__dict__.update({
            "_wire_slice": frame,
            DIGEST_CACHE_ATTR: content_digest,
            WIRE_SIZE_CACHE_ATTR: _REQUEST_OVERHEAD + operation.wire_size(),
            HAS_CACHE_FLAG: True,
            "signature": self.signer.sign_digest(content_digest),
        })
        now = self.now
        self._pending[timestamp] = _PendingRequest(
            request=request, sent_at=self._sent_time(), last_sent_at=now
        )
        targets = self.config.request_targets(self.known_view, self.known_mode)
        if len(targets) == 1:
            # The steady-state Lion/Dog/Peacock client sends to exactly one
            # primary; skip the dedup pass of _send_request.
            self.send(targets[0], request)
        else:
            self._send_request(targets, request)
        # A newly issued request's deadline (now + timeout) can never be
        # earlier than the armed deadline (the min over older requests), so
        # an active timer needs no re-arming — only arm from cold.
        if not self._timer.active:
            self._schedule_timer()
        return True

    def _next_operation(self, timestamp: int) -> Optional[Operation]:
        """The operation the next request should carry (``None`` = nothing).

        Closed-loop default: ask the operation factory, which always has a
        next operation.  The open-loop connection overrides this to pull
        from its driver's arrival backlog, which may be empty.
        """
        return self.operation_factory(timestamp)

    def _sent_time(self) -> float:
        """When the request being issued counts as sent, for latency records.

        The open-loop connection overrides this to return the request's
        *arrival* time, so queueing behind the bounded connection pool
        counts toward the measured latency.
        """
        return self.now

    def _send_request(self, targets: Sequence[str], request: Request) -> None:
        unique_targets = list(dict.fromkeys(targets))
        if len(unique_targets) == 1:
            self.send(unique_targets[0], request)
        else:
            self.multicast(unique_targets, request)

    def _schedule_timer(self) -> None:
        """Arm the timer for the oldest outstanding transmission's deadline.

        One timer serves the whole window, but each request keeps its own
        deadline (``last_sent_at + timeout``), so a request issued moments
        before the timer fires is not retransmitted prematurely.
        """
        if not self._pending or self._stopped:
            self._timer.stop()
            return
        if self.timeouts or self.busy_rejects:
            # After any retransmission (or Busy backoff, which parks
            # last_sent_at in the future), per-entry deadlines are no longer
            # monotone in insertion order: scan for the minimum.  Plain
            # loop — a genexpr frame per window entry is measurable at
            # high request rates.
            oldest = None
            for pending in self._pending.values():
                sent_at = pending.last_sent_at
                if oldest is None or sent_at < oldest:
                    oldest = sent_at
        else:
            # No retransmission has ever happened, so every entry's
            # last_sent_at is its issue time, which is monotone in the
            # insertion-ordered pending map: the oldest outstanding
            # transmission is the first entry.
            oldest = next(iter(self._pending.values())).last_sent_at
        next_deadline = oldest + self.config.request_timeout
        if next_deadline == self._armed_deadline and self._timer.active:
            # Completing a mid-window request leaves the oldest deadline
            # unchanged; the armed timer is still exactly right.
            return
        self._armed_deadline = next_deadline
        self._timer.start(max(0.0, next_deadline - self.now))

    def _on_timeout(self) -> None:
        self._armed_deadline = None  # the armed event just fired
        if not self._pending or self._stopped:
            return
        targets = self.config.targets_for_retransmit(self.known_view, self.known_mode)
        overdue = [
            pending
            for pending in self._pending.values()
            if self.now - pending.last_sent_at >= self.config.request_timeout - 1e-12
        ]
        if overdue:
            self.timeouts += 1
            for pending in overdue:
                pending.retransmitted = True
                pending.last_sent_at = self.now
                self._send_request(targets, pending.request)
        self._schedule_timer()

    # -- replies ------------------------------------------------------------

    def handle_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, Reply):
            self._on_reply(src, payload)
        elif isinstance(payload, Busy):
            self._on_busy(src, payload)

    # -- admission-control backoff -------------------------------------------

    def _on_busy(self, src: str, busy: Busy) -> None:
        """Handle a signed admission-control reject from the primary.

        The request stays pending but is re-sent only after a capped
        exponential backoff; with ``max_busy_retries`` configured the
        request is abandoned (shed) once the primary has rejected it that
        many times in a row.
        """
        pending = self._pending.get(busy.timestamp)
        if pending is None:
            return
        if busy.client_id != self.node_id:
            return
        if busy.replica_id != src:
            return
        if not self._window_verifier.verify(busy.replica_id, busy):
            return
        self.busy_rejects += 1
        pending.busy_attempts += 1
        limit = self.config.max_busy_retries
        if limit is not None and pending.busy_attempts > limit:
            self._shed(pending)
            return
        delay = min(
            self.config.busy_backoff_cap,
            self.config.busy_backoff_base * (2 ** (pending.busy_attempts - 1)),
        )
        resend_at = self.now + delay
        self._busy_resends[busy.timestamp] = resend_at
        # Park the retransmit deadline past the resend time so the regular
        # timeout path cannot fire a wide retransmission mid-backoff (the
        # overdue check sees a negative age and skips the entry).
        pending.last_sent_at = resend_at
        self._schedule_timer()
        self._arm_busy_timer()

    def _arm_busy_timer(self) -> None:
        if not self._busy_resends or self._stopped:
            self._busy_timer.stop()
            return
        earliest = min(self._busy_resends.values())
        self._busy_timer.start(max(0.0, earliest - self.now))

    def _on_busy_resend(self) -> None:
        now = self.now
        due = [ts for ts, when in self._busy_resends.items() if when <= now + 1e-12]
        for timestamp in due:
            del self._busy_resends[timestamp]
            pending = self._pending.get(timestamp)
            if pending is None:
                continue
            pending.last_sent_at = now
            targets = self.config.request_targets(self.known_view, self.known_mode)
            self._send_request(targets, pending.request)
        self._arm_busy_timer()
        self._schedule_timer()

    def _shed(self, pending: _PendingRequest) -> None:
        """Abandon a request the primary keeps rejecting (load shedding).

        The request never completes and records no latency sample — it is
        counted in :attr:`shed_requests` instead, which is exactly what
        keeps an overloaded system's *served* latency honest: the excess
        shows up as sheds, not as samples that would drown the percentile.
        """
        timestamp = pending.request.timestamp
        self.shed_requests += 1
        del self._pending[timestamp]
        self._busy_resends.pop(timestamp, None)
        self.on_shed(timestamp)
        self._schedule_timer()
        self._fill_window()

    def on_shed(self, timestamp: int) -> None:
        """Hook: called when a request is abandoned after repeated rejects."""

    def _on_reply(self, src: str, reply: Reply) -> None:
        pending = self._pending.get(reply.timestamp)
        if pending is None:
            return
        if reply.client_id != self.node_id:
            return
        if not self._window_verifier.verify(reply.replica_id, reply):
            return
        if reply.replica_id != src:
            # A replica relaying someone else's reply is not acceptable.
            return

        result_key = reply.__dict__.get("_result_digest") or reply.result_digest()
        voters = pending.votes.setdefault(result_key, set())
        voters.add(reply.replica_id)

        if self._is_acceptable(reply, voters, pending):
            self._complete(reply, pending)

    def _is_acceptable(self, reply: Reply, voters: set, pending: _PendingRequest) -> bool:
        rules = self._mode_rules_cache.get(reply.mode)
        if rules is None:
            rules = self._mode_rules(reply.mode)
        trusted, quorum, retransmit_quorum = rules
        if reply.replica_id in trusted:
            return True
        return len(voters) >= (retransmit_quorum if pending.retransmitted else quorum)

    def _mode_rules(self, mode: int) -> tuple:
        """Memoized acceptance rules for ``mode``.

        Precomputes exactly what :meth:`_untrusted_reply_quorum` derives per
        reply: the trusted-replica set and the untrusted quorum before and
        after retransmission (both floored at ``untrusted_reply_floor`` when
        the mode has trusted repliers).
        """
        config = self.config
        trusted = config.trusted_for_mode(mode)
        quorum = config.replies_for_mode(mode)
        retransmit_quorum = config.replies_needed_after_retransmit
        if trusted:
            floor = config.untrusted_reply_floor
            quorum = max(quorum, floor)
            retransmit_quorum = max(retransmit_quorum, floor)
        rules = (trusted, quorum, retransmit_quorum)
        self._mode_rules_cache[mode] = rules
        return rules

    @staticmethod
    def _untrusted_reply_quorum(config: ClientConfig, reply: Reply, pending) -> int:
        """Matching *untrusted* replies needed to accept under ``config``.

        A mode whose normal-case quorum is one *trusted* reply (Lion: the
        private primary) must never extend that shortcut to an untrusted
        replica: per the paper's Lion rule, public-cloud results are only
        acceptable as ``untrusted_reply_floor`` (m+1) matching replies, or
        a single forged reply racing the primary's would be accepted.
        Shared with the sharded client, which judges each reply against
        its shard's own config.
        """
        needed = (
            config.replies_needed_after_retransmit
            if pending.retransmitted
            else config.replies_for_mode(reply.mode)
        )
        if config.trusted_for_mode(reply.mode):
            needed = max(needed, config.untrusted_reply_floor)
        return needed

    def _flag_minority_replies(self, reply: Reply, pending) -> None:
        """Evidence: replicas whose signed result the accepted quorum contradicts.

        Any replica that signed a *different* result for this request is
        provably faulty once a result is accepted; called from every
        completion path before the pending entry (and its votes) is
        dropped.
        """
        votes = pending.votes
        accepted_key = reply.result_digest()
        if len(votes) == 1 and accepted_key in votes:
            # Fast path: every reply agreed (the accepted key is always in
            # the vote map — _on_reply records it before completing).
            return
        for result_key, voters in votes.items():
            if result_key == accepted_key:
                continue
            for suspect in sorted(voters):
                self.evidence.record(
                    EvidenceKind.FORGED_REPLY,
                    suspect=suspect,
                    detail=f"timestamp={pending.request.timestamp}",
                )

    def _complete(self, reply: Reply, pending: _PendingRequest) -> None:
        self._flag_minority_replies(reply, pending)
        record = CompletedRequest(
            timestamp=pending.request.timestamp,
            sent_at=pending.sent_at,
            completed_at=self.now,
            retransmitted=pending.retransmitted,
        )
        self.completed.append(record)
        if self.recorder is not None:
            self.recorder.record_completion(
                client_id=self.node_id,
                timestamp=record.timestamp,
                sent_at=record.sent_at,
                completed_at=record.completed_at,
            )
        # Track the view/mode the service reports so future requests go to
        # the right primary after view changes and mode switches.
        self.known_view = max(self.known_view, reply.view)
        self.known_mode = reply.mode
        del self._pending[pending.request.timestamp]
        if self._busy_resends:
            self._busy_resends.pop(pending.request.timestamp, None)
        self._schedule_timer()
        self._fill_window()
