"""Common replica machinery shared by SeeMoRe and the baseline protocols.

:class:`ReplicaBase` couples a network node with the SMR substrate: an
ordered executor over a state machine, a commit ledger for safety checking,
a slot log, crypto material, and the client bookkeeping needed for
exactly-once replies.  Concrete protocols (SeeMoRe's three modes, Paxos,
PBFT, S-UpRight) subclass it and register handlers for their message types.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type

from repro.adaptive.evidence import EvidenceKind, EvidenceLog
from repro.crypto.digest import digest_of
from repro.crypto.signatures import Signer, Verifier
from repro.net.costs import NodeCostModel
from repro.net.node import Node
from repro.sim.simulator import Simulator
from repro.smr.executor import ExecutionResult, OrderedExecutor
from repro.smr.ledger import CommitLedger, LedgerEntry
from repro.smr.messages import Reply, Request, requests_of
from repro.smr.slots import SlotLog
from repro.smr.state_machine import StateMachine


def request_digest(request) -> str:
    """Canonical digest of a slot payload (``D(µ)``): a request or a batch.

    Delegates to the content-addressed cache, so each payload object is
    canonicalized and hashed once — not once per replica per hop.
    """
    return digest_of(request)


class ReplicaBase(Node):
    """Base class for every protocol replica.

    Subclasses register message handlers with :meth:`register_handler` and
    drive ordering; this class owns execution, replies, and safety records.
    """

    def __init__(
        self,
        node_id: str,
        simulator: Simulator,
        signer: Signer,
        verifier: Verifier,
        state_machine: StateMachine,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        super().__init__(node_id, simulator, cost_model=cost_model)
        self.signer = signer
        self.verifier = verifier
        self.executor = OrderedExecutor(state_machine)
        self.ledger = CommitLedger(node_id)
        self.slots = SlotLog()
        self.view = 0
        self._handlers: Dict[Type, Callable[[str, Any], None]] = {}
        # Requests we have seen, keyed by (client, timestamp); needed to
        # answer client retransmissions and to build replies after execution.
        self._known_requests: Dict[tuple, Request] = {}
        self.replies_sent = 0
        # Runtime fault evidence this replica observed (timeouts, conflicting
        # votes, invalid signatures...); consumed by the adaptive controller.
        self.evidence = EvidenceLog(node_id, simulator)

    # -- dispatch -----------------------------------------------------------

    def register_handler(self, message_type: Type, handler: Callable[[str, Any], None]) -> None:
        """Route messages of ``message_type`` to ``handler(src, message)``."""
        self._handlers[message_type] = handler

    def handle_message(self, src: str, payload: Any) -> None:
        handler = self._handlers.get(type(payload))
        if handler is None:
            self.on_unhandled_message(src, payload)
            return
        handler(src, payload)

    def on_unhandled_message(self, src: str, payload: Any) -> None:
        """Hook for unexpected message types; default is to ignore them."""

    def verify_message(self, src: str, message: Any) -> bool:
        """Verify a signed message from ``src``, flagging forgeries as evidence.

        A verification failure on a message that names its signer is proof
        the channel peer tampered with it (channels are authenticated, so
        ``src`` attribution stands); the record feeds the adaptive
        controller's Byzantine accounting.
        """
        if message.verify(self.verifier, expected_signer=src):
            return True
        self.evidence.record(
            EvidenceKind.INVALID_SIGNATURE, suspect=src, detail=type(message).__name__
        )
        return False

    # -- request bookkeeping -------------------------------------------------

    def remember_request(self, request: Request) -> None:
        self._known_requests[(request.client_id, request.timestamp)] = request

    def known_request(self, client_id: str, timestamp: int) -> Optional[Request]:
        return self._known_requests.get((client_id, timestamp))

    def request_is_valid(self, request: Request) -> bool:
        """Validate the client's signature and freshness of a request."""
        if not request.verify(self.verifier, expected_signer=request.client_id):
            return False
        cached = self.executor.cached_reply(request.client_id, request.timestamp)
        # A request that was already executed is still "valid" -- the caller
        # decides whether to re-reply from the cache.
        return True if cached is None else True

    # -- execution and replies ------------------------------------------------

    def commit_slot(
        self,
        sequence: int,
        request: Request,
        view: int,
        send_reply: bool,
        mode_id: int = 0,
    ) -> List[ExecutionResult]:
        """Record a commit and execute whatever became ready.

        Args:
            sequence: the committed sequence number.
            request: the slot payload committed in that slot — one client
                request or a batch of them.
            view: the view in which the commit happened (for the ledger).
            send_reply: whether this replica should reply to the client for
                executions performed now (primaries/proxies do, passive
                replicas do not).  Replies fan out per inner request.
            mode_id: protocol mode identifier carried in replies.

        Returns:
            The executions performed as a result of this commit.
        """
        inner = requests_of(request)
        known = self._known_requests
        entries = []
        for each in inner:
            client_id, timestamp = each.client_id, each.timestamp
            known[(client_id, timestamp)] = each
            entries.append((client_id, timestamp, each.operation))
        self.ledger.record(
            LedgerEntry(
                sequence=sequence,
                digest=request_digest(request),
                view=view,
                client_id=request.client_id,
                timestamp=request.timestamp,
            )
        )
        slot = self.slots.slot(sequence)
        slot.committed = True
        executions = self.executor.commit_batch(sequence, entries)
        for execution in executions:
            executed_slot = self.slots.existing_slot(execution.sequence)
            if executed_slot is not None:
                executed_slot.executed = True
            if send_reply:
                self._reply_for_execution(execution, mode_id)
        return executions

    def _reply_for_execution(self, execution: ExecutionResult, mode_id: int) -> None:
        known = self.known_request(execution.client_id, execution.timestamp)
        client_id = known.client_id if known else execution.client_id
        self.send_reply(client_id, execution.timestamp, execution.result, mode_id)

    def send_reply(self, client_id: str, timestamp: int, result: Any, mode_id: int = 0) -> None:
        """Send a signed reply to the client."""
        reply = Reply(
            mode=mode_id,
            view=self.view,
            timestamp=timestamp,
            client_id=client_id,
            replica_id=self.node_id,
            result=result,
        )
        reply.sign(self.signer)
        self.replies_sent += 1
        self.send(client_id, reply)

    def resend_cached_reply(self, request: Request, mode_id: int = 0) -> bool:
        """Reply from the executor's cache if the request was already executed.

        Returns ``True`` when a cached reply existed and was re-sent.
        """
        cached = self.executor.cached_reply(request.client_id, request.timestamp)
        if cached is None:
            return False
        self.send_reply(request.client_id, request.timestamp, cached, mode_id)
        return True

    # -- introspection ---------------------------------------------------------

    @property
    def last_executed(self) -> int:
        return self.executor.last_executed

    @property
    def committed_count(self) -> int:
        return len(self.ledger)

    def state_summary(self) -> Dict[str, Any]:
        """Small status dict used by tests and examples."""
        return {
            "replica": self.node_id,
            "view": self.view,
            "last_executed": self.last_executed,
            "committed": self.committed_count,
            "crashed": self.crashed,
        }
