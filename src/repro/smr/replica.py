"""Common replica machinery shared by SeeMoRe and the baseline protocols.

:class:`ReplicaBase` couples a network node with the SMR substrate: an
ordered executor over a state machine, a commit ledger for safety checking,
a slot log, crypto material, and the client bookkeeping needed for
exactly-once replies.  Concrete protocols (SeeMoRe's three modes, Paxos,
PBFT, S-UpRight) subclass it and register handlers for their message types.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Type

from hashlib import sha256

from repro.adaptive.evidence import EvidenceKind, EvidenceLog
from repro.crypto.digest import (
    DIGEST_CACHE_ATTR,
    HAS_CACHE_FLAG,
    WIRE_SIZE_CACHE_ATTR,
    digest_of,
)
from repro.crypto.signatures import Signer, Verifier, WindowVerifier
from repro.net.costs import NodeCostModel
from repro.net.node import Node
from repro.smr.executor import ExecutionResult, OrderedExecutor
from repro.smr.ledger import CommitLedger, LedgerEntry
from repro.smr.messages import Reply, Request, _result_digest, requests_of
from repro.smr.slots import SlotLog
from repro.smr.state_machine import StateMachine
from repro.wire.primitives import encode_reply


def request_digest(request) -> str:
    """Canonical digest of a slot payload (``D(µ)``): a request or a batch.

    Delegates to the content-addressed cache, so each payload object is
    canonicalized and hashed once — not once per replica per hop.
    """
    return digest_of(request)


class ReplicaBase(Node):
    """Base class for every protocol replica.

    Subclasses register message handlers with :meth:`register_handler` and
    drive ordering; this class owns execution, replies, and safety records.
    """

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        signer: Signer,
        verifier: Verifier,
        state_machine: StateMachine,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        super().__init__(node_id, runtime, cost_model=cost_model)
        self.signer = signer
        self.verifier = verifier
        # Batch-amortized front for the verifier: rolling per-sender
        # transcript MACs with per-message fallback (see WindowVerifier).
        self.window_verifier = WindowVerifier(verifier)
        self.executor = OrderedExecutor(state_machine)
        self.ledger = CommitLedger(node_id)
        self.slots = SlotLog()
        self.view = 0
        self._handlers: Dict[Type, Callable[[str, Any], None]] = {}
        # Requests we have seen, keyed by (client, timestamp); needed to
        # answer client retransmissions and to build replies after execution.
        self._known_requests: Dict[tuple, Request] = {}
        self.replies_sent = 0
        # Runtime fault evidence this replica observed (timeouts, conflicting
        # votes, invalid signatures...); consumed by the adaptive controller.
        self.evidence = EvidenceLog(node_id, self.runtime)

    # -- dispatch -----------------------------------------------------------

    def register_handler(self, message_type: Type, handler: Callable[[str, Any], None]) -> None:
        """Route messages of ``message_type`` to ``handler(src, message)``."""
        self._handlers[message_type] = handler

    def handle_message(self, src: str, payload: Any) -> None:
        handler = self._handlers.get(type(payload))
        if handler is None:
            self.on_unhandled_message(src, payload)
            return
        handler(src, payload)

    def on_unhandled_message(self, src: str, payload: Any) -> None:
        """Hook for unexpected message types; default is to ignore them."""

    def verify_message(self, src: str, message: Any) -> bool:
        """Verify a signed message from ``src``, flagging forgeries as evidence.

        A verification failure on a message that names its signer is proof
        the channel peer tampered with it (channels are authenticated, so
        ``src`` attribution stands); the record feeds the adaptive
        controller's Byzantine accounting.  Goes through the window
        verifier's amortized path, which returns exactly the per-message
        verdicts, so the evidence emitted here is unchanged from
        per-message verification.
        """
        if self.window_verifier.verify(src, message):
            return True
        self.evidence.record(
            EvidenceKind.INVALID_SIGNATURE, suspect=src, detail=type(message).__name__
        )
        return False

    # -- request bookkeeping -------------------------------------------------

    def remember_request(self, request: Request) -> None:
        self._known_requests[(request.client_id, request.timestamp)] = request

    def known_request(self, client_id: str, timestamp: int) -> Optional[Request]:
        return self._known_requests.get((client_id, timestamp))

    def request_is_valid(self, request: Request) -> bool:
        """Validate the client's signature on a request.

        A request that was already executed is still "valid" — the caller
        decides whether to re-reply from the cache.  No evidence is emitted
        here: an invalid client signature on a relayed request does not
        incriminate the relaying channel peer.
        """
        return self.window_verifier.verify(request.client_id, request)

    # -- execution and replies ------------------------------------------------

    def commit_slot(
        self,
        sequence: int,
        request: Request,
        view: int,
        send_reply: bool,
        mode_id: int = 0,
    ) -> List[ExecutionResult]:
        """Record a commit and execute whatever became ready.

        Args:
            sequence: the committed sequence number.
            request: the slot payload committed in that slot — one client
                request or a batch of them.
            view: the view in which the commit happened (for the ledger).
            send_reply: whether this replica should reply to the client for
                executions performed now (primaries/proxies do, passive
                replicas do not).  Replies fan out per inner request.
            mode_id: protocol mode identifier carried in replies.

        Returns:
            The executions performed as a result of this commit.
        """
        inner = requests_of(request)
        known = self._known_requests
        entries = []
        for each in inner:
            client_id, timestamp = each.client_id, each.timestamp
            known[(client_id, timestamp)] = each
            entries.append((client_id, timestamp, each.operation))
        self.ledger.record(
            LedgerEntry(
                sequence=sequence,
                digest=request_digest(request),
                view=view,
                client_id=request.client_id,
                timestamp=request.timestamp,
            )
        )
        slot = self.slots.slot(sequence)
        slot.committed = True
        executions = self.executor.commit_batch(sequence, entries, owned=True)
        # All executions of one drained sequence share their slot, so the
        # slot probe is hoisted out of the per-request loop; replies go
        # straight to send_reply (the execution's client_id/timestamp key
        # is exactly what the known-request indirection would return).
        marked_sequence = None
        for execution in executions:
            executed_sequence = execution.sequence
            if executed_sequence != marked_sequence:
                marked_sequence = executed_sequence
                executed_slot = self.slots.existing_slot(executed_sequence)
                if executed_slot is not None:
                    executed_slot.executed = True
            if send_reply:
                self.send_reply(
                    execution.client_id, execution.timestamp, execution.result, mode_id
                )
        return executions

    def send_reply(self, client_id: str, timestamp: int, result: Any, mode_id: int = 0) -> None:
        """Send a signed reply to the client.

        Fused hot path: one reply goes out per executed request per replying
        replica, so the wire frame, content digest, wire size, and signature
        are built in a single pass here and seeded into the message's cache
        slots — exactly the values ``sign()``/``wire_slice()`` would compute
        lazily, without the intermediate frames.
        """
        result_digest = _result_digest(result)
        frame = encode_reply(
            mode_id, self.view, timestamp, client_id, self.node_id, result_digest
        )
        content_digest = sha256(frame).hexdigest()
        payload = result.get("payload", "") if type(result) is dict else None
        reply = Reply(
            mode=mode_id,
            view=self.view,
            timestamp=timestamp,
            client_id=client_id,
            replica_id=self.node_id,
            result=result,
        )
        reply.__dict__.update({
            "_result_digest": result_digest,
            "_wire_slice": frame,
            DIGEST_CACHE_ATTR: content_digest,
            WIRE_SIZE_CACHE_ATTR: 128 + (len(payload) if type(payload) is str else 0),
            HAS_CACHE_FLAG: True,
            "signature": self.signer.sign_digest(content_digest),
        })
        self.replies_sent += 1
        self.send(client_id, reply)

    def resend_cached_reply(self, request: Request, mode_id: int = 0) -> bool:
        """Reply from the executor's cache if the request was already executed.

        Returns ``True`` when a cached reply existed and was re-sent.
        """
        cached = self.executor.cached_reply(request.client_id, request.timestamp)
        if cached is None:
            return False
        self.send_reply(request.client_id, request.timestamp, cached, mode_id)
        return True

    # -- introspection ---------------------------------------------------------

    @property
    def last_executed(self) -> int:
        return self.executor.last_executed

    @property
    def committed_count(self) -> int:
        return len(self.ledger)

    def state_summary(self) -> Dict[str, Any]:
        """Small status dict used by tests and examples."""
        return {
            "replica": self.node_id,
            "view": self.view,
            "last_executed": self.last_executed,
            "committed": self.committed_count,
            "crashed": self.crashed,
        }
