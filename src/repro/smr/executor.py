"""Ordered execution of committed requests.

A consensus protocol may commit sequence numbers out of order (e.g. a
replica learns about n=7 before n=6 arrives).  The executor buffers such
gaps and applies operations to the state machine strictly in order, which
is the property that guarantees all correct replicas converge.

It also implements the exactly-once client semantics from Section 5.1: the
client timestamp identifies a request, and re-executing a request that was
already executed returns the cached reply instead of mutating state twice.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.smr.state_machine import Operation, StateMachine

# One client request inside a committed slot: (client_id, timestamp, operation).
BatchEntry = Tuple[str, int, Operation]

# Sentinel distinguishing "no cached reply" from a cached ``None`` reply.
_MISSING = object()


class ExecutionResult(NamedTuple):
    """Outcome of executing one committed request.

    With batching several results share one ``sequence``: every request in a
    batch executes under its slot's sequence number, in batch order.  (A
    named tuple rather than a frozen dataclass: one is allocated per
    executed request, and tuple construction is several times cheaper than
    per-field ``object.__setattr__``.)
    """

    sequence: int
    client_id: str
    timestamp: int
    result: Any


class OrderedExecutor:
    """Applies committed operations in strict sequence-number order."""

    def __init__(self, state_machine: StateMachine, execute_cost: float = 0.0) -> None:
        self._state_machine = state_machine
        self._execute_cost = execute_cost
        self._pending: Dict[int, List[BatchEntry]] = {}
        self._next_sequence = 1
        self._reply_cache: Dict[Tuple[str, int], Any] = {}
        self._executed: List[ExecutionResult] = []
        self._checkpoint_interval: Optional[int] = None
        self._checkpoint_callback: Optional[Any] = None

    @property
    def state_machine(self) -> StateMachine:
        """The replicated application this executor drives.

        Exposed read-only for invariant checkers (e.g. the cross-shard
        atomicity checker inspects transaction decisions recorded by a
        :class:`~repro.smr.state_machine.TransactionalKeyValueStore`).
        """
        return self._state_machine

    def set_checkpoint_hook(self, interval: int, callback) -> None:
        """Invoke ``callback(sequence)`` the moment execution crosses each
        ``interval`` boundary.

        The hook fires *inside* the drain, so the state the callback observes
        is exactly the state after ``sequence`` — even when a single commit
        fills a gap and drains several buffered sequences at once.  Replicas
        use this to produce checkpoint digests that match across replicas
        regardless of commit arrival order.
        """
        if interval < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got {interval}")
        self._checkpoint_interval = interval
        self._checkpoint_callback = callback

    @property
    def state_machine(self) -> StateMachine:
        return self._state_machine

    @property
    def next_sequence(self) -> int:
        """The lowest sequence number not yet executed."""
        return self._next_sequence

    @property
    def last_executed(self) -> int:
        return self._next_sequence - 1

    @property
    def executed(self) -> List[ExecutionResult]:
        """Every execution in order (grows; callers must not mutate)."""
        return self._executed

    def already_executed(self, client_id: str, timestamp: int) -> bool:
        return (client_id, timestamp) in self._reply_cache

    def cached_reply(self, client_id: str, timestamp: int) -> Optional[Any]:
        """Reply previously produced for this client request, if any."""
        return self._reply_cache.get((client_id, timestamp))

    def commit(
        self, sequence: int, client_id: str, timestamp: int, operation: Operation
    ) -> List[ExecutionResult]:
        """Record that ``sequence`` is committed and execute whatever is ready.

        Returns the list of executions performed by this call (possibly
        empty when there is still a gap, possibly several when this commit
        fills one).
        """
        return self.commit_batch(sequence, [(client_id, timestamp, operation)])

    def commit_batch(
        self, sequence: int, entries: Sequence[BatchEntry], owned: bool = False
    ) -> List[ExecutionResult]:
        """Record that ``sequence`` committed a batch of requests.

        All requests of the batch execute under the same sequence number, in
        batch order, once every earlier sequence has executed.  Requests the
        replica already executed (client retransmissions that slipped into a
        later batch) are served from the reply cache instead of mutating
        state twice.  Callers that hand over a freshly built list they will
        never touch again pass ``owned=True`` to skip the defensive copy.
        """
        if sequence < 1:
            raise ValueError(f"sequence numbers start at 1, got {sequence}")
        if not entries:
            raise ValueError("a committed slot must contain at least one request")
        if sequence < self._next_sequence:
            return []
        if sequence in self._pending:
            return []
        self._pending[sequence] = entries if owned else list(entries)
        return self._drain()

    def _drain(self) -> List[ExecutionResult]:
        performed: List[ExecutionResult] = []
        pending = self._pending
        reply_cache = self._reply_cache
        executed = self._executed
        apply = self._state_machine.apply
        record = performed.append
        record_all = executed.append
        # tuple.__new__ bypasses the namedtuple's generated __new__ (an
        # eval'd lambda with keyword binding): one ExecutionResult is
        # allocated per executed request per replica, the single hottest
        # allocation in the repository.
        tuple_new = tuple.__new__
        result_cls = ExecutionResult
        while self._next_sequence in pending:
            sequence = self._next_sequence
            for client_id, timestamp, operation in pending.pop(sequence):
                key = (client_id, timestamp)
                result = reply_cache.get(key, _MISSING)
                if result is _MISSING:
                    result = apply(operation)
                    reply_cache[key] = result
                execution = tuple_new(result_cls, (sequence, client_id, timestamp, result))
                record_all(execution)
                record(execution)
            self._next_sequence += 1
            if (
                self._checkpoint_callback is not None
                and sequence % self._checkpoint_interval == 0
            ):
                self._checkpoint_callback(sequence)
        return performed

    # -- checkpoint support -------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """State-machine snapshot plus reply cache, for state transfer."""
        return {
            "next_sequence": self._next_sequence,
            "state": self._state_machine.snapshot(),
            "replies": dict(self._reply_cache),
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Jump to a checkpointed state (used by lagging replicas)."""
        target = snapshot["next_sequence"]
        if target < self._next_sequence:
            return
        self._next_sequence = target
        self._state_machine.restore(snapshot["state"])
        self._reply_cache = dict(snapshot["replies"])
        self._pending = {seq: item for seq, item in self._pending.items() if seq >= target}

    def discard_below(self, sequence: int) -> None:
        """Drop buffered commits below ``sequence`` (post-checkpoint GC)."""
        self._pending = {seq: item for seq, item in self._pending.items() if seq >= sequence}
