"""State machine replication substrate.

The consensus protocols in this repository (SeeMoRe, Paxos, PBFT,
S-UpRight) agree on an *order* of client requests; this package provides
everything that sits above the ordering:

* :class:`~repro.smr.state_machine.StateMachine` — the deterministic
  application interface (with a key-value store, a counter, and a no-op
  machine used by the micro-benchmarks);
* :class:`~repro.smr.executor.OrderedExecutor` — executes committed
  requests strictly in sequence-number order, buffering gaps, with an
  exactly-once reply cache keyed by client timestamp;
* :class:`~repro.smr.ledger.CommitLedger` — the append-only record of what
  each replica committed, used by tests to assert safety across replicas.
"""

from repro.smr.state_machine import (
    Counter,
    KeyValueStore,
    NullStateMachine,
    Operation,
    StateMachine,
)
from repro.smr.executor import ExecutionResult, OrderedExecutor
from repro.smr.ledger import CommitLedger, LedgerEntry
from repro.smr.messages import ProtocolMessage, Reply, Request
from repro.smr.slots import Slot, SlotLog
from repro.smr.replica import ReplicaBase, request_digest
from repro.smr.client import Client, ClientConfig, CompletedRequest

__all__ = [
    "StateMachine",
    "KeyValueStore",
    "Counter",
    "NullStateMachine",
    "Operation",
    "OrderedExecutor",
    "ExecutionResult",
    "CommitLedger",
    "LedgerEntry",
    "ProtocolMessage",
    "Request",
    "Reply",
    "Slot",
    "SlotLog",
    "ReplicaBase",
    "request_digest",
    "Client",
    "ClientConfig",
    "CompletedRequest",
]
