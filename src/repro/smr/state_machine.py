"""Deterministic application state machines.

Per Section 5 of the paper, operations must be *atomic* and *deterministic*:
the same operation applied to the same state always yields the same result,
and every replica starts from the same initial state.  Three machines are
provided:

* :class:`KeyValueStore` — the application used by the examples (put / get /
  delete / scan), representative of the replicated storage layer a system
  such as Spanner would place on top of the protocol.
* :class:`Counter` — minimal machine used in unit tests.
* :class:`NullStateMachine` — executes nothing; used by the 0/0, 0/4, 4/0
  micro-benchmarks where only payload sizes matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Operation:
    """A client-issued state machine operation.

    Attributes:
        kind: operation name understood by the target state machine.
        args: positional arguments.
        payload: opaque bytes-equivalent payload; only its size matters to
            the micro-benchmarks but it is carried through execution.
    """

    kind: str
    args: Tuple[Any, ...] = ()
    payload: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": self.kind, "args": list(self.args), "payload_len": len(self.payload)}

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        size = 16 + len(self.payload)
        for arg in self.args:
            # Same value as len(str(arg)) without the str() round trip for
            # the overwhelmingly common string argument.
            size += len(arg) if type(arg) is str else len(str(arg))
        return size


class StateMachine:
    """Interface all replicated applications implement."""

    def apply(self, operation: Operation) -> Any:
        """Execute one operation and return its result.

        Must be deterministic: no randomness, no wall-clock reads.
        """
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Return a serializable snapshot of the full state (for checkpoints)."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Replace the state with a previously taken snapshot."""
        raise NotImplementedError


class KeyValueStore(StateMachine):
    """A replicated key-value store supporting put/get/delete/scan."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.operations_applied = 0

    def apply(self, operation: Operation) -> Any:
        self.operations_applied += 1
        kind = operation.kind
        if kind == "put":
            key, value = operation.args
            self._data[key] = value
            return {"ok": True}
        if kind == "get":
            (key,) = operation.args
            return {"ok": True, "value": self._data.get(key)}
        if kind == "delete":
            (key,) = operation.args
            existed = key in self._data
            self._data.pop(key, None)
            return {"ok": True, "existed": existed}
        if kind == "scan":
            prefix = operation.args[0] if operation.args else ""
            matches = sorted(k for k in self._data if k.startswith(prefix))
            return {"ok": True, "keys": matches}
        if kind == "noop":
            return {"ok": True}
        raise ValueError(f"unsupported key-value operation: {kind!r}")

    def get(self, key: str) -> Optional[Any]:
        """Local (non-replicated) read used by tests and examples."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self._data = dict(snapshot)


#: Transaction decision outcomes recorded by the participant state machine.
TXN_COMMIT = "commit"
TXN_ABORT = "abort"


class TransactionalKeyValueStore(KeyValueStore):
    """A key-value store that can participate in cross-shard transactions.

    On top of the plain put/get/delete/scan operations it understands the
    records of the deterministic two-phase commit used by the sharded
    deployment.  All three records are ordinary client operations, so each
    shard *orders them through its own consensus instance* — atomicity
    across shards therefore inherits each shard's agreement guarantees:

    * ``txn`` — an atomic multi-write confined to this shard (the
      single-shard fast path: no coordination needed, the writes apply in
      one deterministic step);
    * ``txn_prepare(txn_id, writes)`` — stage the transaction's writes for
      this shard and vote.  The vote is *no* when a decision for the
      transaction is already recorded — the abort-before-prepare tombstone:
      a coordinator that timed out and aborted may have its abort ordered
      before a retransmitted prepare, and that late prepare must not
      resurrect the transaction;
    * ``txn_decide(txn_id, outcome)`` — record the coordinator's decision.
      ``commit`` applies the staged writes; ``abort`` discards them.  The
      first decision for a transaction wins; duplicates are reported as
      such and change nothing (re-proposals are additionally absorbed by
      the executor's reply cache).

    Staged writes and decisions are part of :meth:`snapshot`, so a replica
    that catches up via state transfer resumes with the same transaction
    state every other correct replica has.
    """

    def __init__(self) -> None:
        super().__init__()
        self._staged: Dict[str, Tuple[Tuple[Any, ...], ...]] = {}
        self.txn_decisions: Dict[str, str] = {}
        self.txns_committed = 0
        self.txns_aborted = 0

    def _apply_write(self, write: Tuple[Any, ...]) -> None:
        kind = write[0]
        if kind == "put":
            _, key, value = write
            self._data[key] = value
        elif kind == "delete":
            self._data.pop(write[1], None)
        else:
            raise ValueError(f"unsupported transactional write: {kind!r}")

    def apply(self, operation: Operation) -> Any:
        kind = operation.kind
        if kind == "txn":
            self.operations_applied += 1
            for write in operation.args:
                self._apply_write(tuple(write))
            return {"ok": True, "writes": len(operation.args)}
        if kind == "txn_prepare":
            self.operations_applied += 1
            txn_id, writes = operation.args
            if txn_id in self.txn_decisions:
                return {"ok": True, "txn": txn_id, "vote": "no"}
            self._staged[txn_id] = tuple(tuple(write) for write in writes)
            return {"ok": True, "txn": txn_id, "vote": "yes"}
        if kind == "txn_decide":
            self.operations_applied += 1
            txn_id, outcome = operation.args
            previous = self.txn_decisions.get(txn_id)
            if previous is not None:
                return {"ok": True, "txn": txn_id, "outcome": previous, "duplicate": True}
            if outcome not in (TXN_COMMIT, TXN_ABORT):
                raise ValueError(f"unsupported transaction outcome: {outcome!r}")
            self.txn_decisions[txn_id] = outcome
            staged = self._staged.pop(txn_id, None)
            if outcome == TXN_COMMIT:
                self.txns_committed += 1
                if staged is None:
                    # Should be unreachable under the coordinator protocol
                    # (commit is only decided after every participant voted
                    # yes, and the vote is ordered before the decision);
                    # reported rather than raised so the atomicity checker
                    # surfaces it as an invariant violation.
                    return {"ok": False, "txn": txn_id, "outcome": outcome,
                            "error": "commit-without-prepare"}
                for write in staged:
                    self._apply_write(write)
            else:
                self.txns_aborted += 1
            return {"ok": True, "txn": txn_id, "outcome": outcome}
        return super().apply(operation)

    def staged_transactions(self) -> List[str]:
        """Transaction ids prepared on this shard but not yet decided."""
        return sorted(self._staged)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "data": dict(self._data),
            "staged": {txn_id: list(map(list, writes)) for txn_id, writes in self._staged.items()},
            "decisions": dict(self.txn_decisions),
            "committed": self.txns_committed,
            "aborted": self.txns_aborted,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self._data = dict(snapshot["data"])
        self._staged = {
            txn_id: tuple(tuple(write) for write in writes)
            for txn_id, writes in snapshot["staged"].items()
        }
        self.txn_decisions = dict(snapshot["decisions"])
        self.txns_committed = snapshot["committed"]
        self.txns_aborted = snapshot["aborted"]


class Counter(StateMachine):
    """A single replicated integer supporting add/read."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, operation: Operation) -> Any:
        if operation.kind == "add":
            (amount,) = operation.args
            self.value += amount
            return {"ok": True, "value": self.value}
        if operation.kind == "read":
            return {"ok": True, "value": self.value}
        if operation.kind == "noop":
            return {"ok": True}
        raise ValueError(f"unsupported counter operation: {operation.kind!r}")

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot


@dataclass
class NullStateMachine(StateMachine):
    """Executes nothing; optionally echoes a fixed-size reply payload.

    The reply payload size models the paper's x/y micro-benchmarks where the
    reply carries y KB.  Every execution returns the *same* (conventionally
    immutable) result object: results are already shared through the
    executor's reply cache, and a single instance lets the reply-digest memo
    hit by identity instead of re-hashing an identical dict per reply.
    """

    reply_payload_size: int = 0
    operations_applied: int = field(default=0)

    def __post_init__(self) -> None:
        self._reply = {"ok": True, "payload": "x" * self.reply_payload_size}
        # Explicit opt-in to identity-keyed digest memoization: this object
        # is shared across every apply() and never mutated.
        from repro.smr.messages import register_stable_result

        register_stable_result(self._reply)

    def apply(self, operation: Operation) -> Any:
        self.operations_applied += 1
        return self._reply

    def snapshot(self) -> int:
        return self.operations_applied

    def restore(self, snapshot: int) -> None:
        self.operations_applied = snapshot
