"""Deterministic application state machines.

Per Section 5 of the paper, operations must be *atomic* and *deterministic*:
the same operation applied to the same state always yields the same result,
and every replica starts from the same initial state.  Three machines are
provided:

* :class:`KeyValueStore` — the application used by the examples (put / get /
  delete / scan), representative of the replicated storage layer a system
  such as Spanner would place on top of the protocol.
* :class:`Counter` — minimal machine used in unit tests.
* :class:`NullStateMachine` — executes nothing; used by the 0/0, 0/4, 4/0
  micro-benchmarks where only payload sizes matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Operation:
    """A client-issued state machine operation.

    Attributes:
        kind: operation name understood by the target state machine.
        args: positional arguments.
        payload: opaque bytes-equivalent payload; only its size matters to
            the micro-benchmarks but it is carried through execution.
    """

    kind: str
    args: Tuple[Any, ...] = ()
    payload: str = ""

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": self.kind, "args": list(self.args), "payload_len": len(self.payload)}

    def wire_size(self) -> int:
        """Approximate serialized size in bytes."""
        return 16 + sum(len(str(arg)) for arg in self.args) + len(self.payload)


class StateMachine:
    """Interface all replicated applications implement."""

    def apply(self, operation: Operation) -> Any:
        """Execute one operation and return its result.

        Must be deterministic: no randomness, no wall-clock reads.
        """
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Return a serializable snapshot of the full state (for checkpoints)."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Replace the state with a previously taken snapshot."""
        raise NotImplementedError


class KeyValueStore(StateMachine):
    """A replicated key-value store supporting put/get/delete/scan."""

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.operations_applied = 0

    def apply(self, operation: Operation) -> Any:
        self.operations_applied += 1
        kind = operation.kind
        if kind == "put":
            key, value = operation.args
            self._data[key] = value
            return {"ok": True}
        if kind == "get":
            (key,) = operation.args
            return {"ok": True, "value": self._data.get(key)}
        if kind == "delete":
            (key,) = operation.args
            existed = key in self._data
            self._data.pop(key, None)
            return {"ok": True, "existed": existed}
        if kind == "scan":
            prefix = operation.args[0] if operation.args else ""
            matches = sorted(k for k in self._data if k.startswith(prefix))
            return {"ok": True, "keys": matches}
        if kind == "noop":
            return {"ok": True}
        raise ValueError(f"unsupported key-value operation: {kind!r}")

    def get(self, key: str) -> Optional[Any]:
        """Local (non-replicated) read used by tests and examples."""
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> Dict[str, Any]:
        return dict(self._data)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self._data = dict(snapshot)


class Counter(StateMachine):
    """A single replicated integer supporting add/read."""

    def __init__(self) -> None:
        self.value = 0

    def apply(self, operation: Operation) -> Any:
        if operation.kind == "add":
            (amount,) = operation.args
            self.value += amount
            return {"ok": True, "value": self.value}
        if operation.kind == "read":
            return {"ok": True, "value": self.value}
        if operation.kind == "noop":
            return {"ok": True}
        raise ValueError(f"unsupported counter operation: {operation.kind!r}")

    def snapshot(self) -> int:
        return self.value

    def restore(self, snapshot: int) -> None:
        self.value = snapshot


@dataclass
class NullStateMachine(StateMachine):
    """Executes nothing; optionally echoes a fixed-size reply payload.

    The reply payload size models the paper's x/y micro-benchmarks where the
    reply carries y KB.  Every execution returns the *same* (conventionally
    immutable) result object: results are already shared through the
    executor's reply cache, and a single instance lets the reply-digest memo
    hit by identity instead of re-hashing an identical dict per reply.
    """

    reply_payload_size: int = 0
    operations_applied: int = field(default=0)

    def __post_init__(self) -> None:
        self._reply = {"ok": True, "payload": "x" * self.reply_payload_size}
        # Explicit opt-in to identity-keyed digest memoization: this object
        # is shared across every apply() and never mutated.
        from repro.smr.messages import register_stable_result

        register_stable_result(self._reply)

    def apply(self, operation: Operation) -> Any:
        self.operations_applied += 1
        return self._reply

    def snapshot(self) -> int:
        return self.operations_applied

    def restore(self, snapshot: int) -> None:
        self.operations_applied = snapshot
