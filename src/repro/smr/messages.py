"""Messages shared by every replication protocol in the repository.

Client-facing messages (``REQUEST`` and ``REPLY``) have the same structure in
SeeMoRe, Paxos, PBFT, and S-UpRight, so they live here in the SMR substrate.
Protocol-internal messages (prepare/accept/commit/...) are defined by each
protocol package.

Every message class provides:

* ``signed`` — whether the receiver must verify a public-key signature
  (drives the CPU cost model in :mod:`repro.net.costs`);
* ``wire_size()`` — approximate serialized size in bytes (drives bandwidth
  and hashing costs);
* ``signing_content()`` — the canonical content covered by the signature,
  as a dict (the legacy JSON canonical form, kept as the reference the
  differential codec tests compare against and as the only form for cold
  types such as view changes);
* ``signing_bytes()`` — for hot types only: the compact binary wire frame
  (see :mod:`repro.wire`), which is what actually feeds the digest, frozen
  per object as :meth:`ProtocolMessage.wire_slice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.crypto.digest import (
    DIGEST_CACHE_ATTR,
    HAS_CACHE_FLAG,
    WIRE_SIZE_CACHE_ATTR,
    _canonical_bytes,
    digest_of,
)
from repro.crypto.signatures import Signature, Signer, Verifier
from repro.smr.state_machine import Operation
from repro.wire.primitives import encode_batch, encode_reply, encode_request

_HEADER_BYTES = 48
_SIGNATURE_BYTES = 64
_DIGEST_BYTES = 32

#: Instance-``__dict__`` keys holding derived wire-form state.  They are
#: dropped by ``copy.copy`` (see ``ProtocolMessage.__copy__``) so a copied
#: message — the first step of every mutate-and-resend Byzantine twist —
#: always recomputes its canonical form, digest, and size.
_WIRE_CACHE_ATTRS = (
    DIGEST_CACHE_ATTR,
    "_wire_form",
    "_wire_slice",
    WIRE_SIZE_CACHE_ATTR,
    "_result_digest",
    HAS_CACHE_FLAG,
)

#: Field separator in flat text ``signing_bytes`` canonical forms, still
#: used by the baseline protocols (:mod:`repro.baselines.messages`).  The
#: SeeMoRe hot types moved to the binary frames of :mod:`repro.wire`.
_SEP = "\x1f"


class ProtocolMessage:
    """Mixin with the signing helpers every protocol message uses.

    Messages freeze their *wire form*: the canonical signing-content dict,
    its SHA-256 digest, and the serialized size estimate are each computed
    at most once per object lifetime and cached on the instance.  Because
    the simulator passes message objects by reference, every replica that
    touches a request, batch, or vote reuses the same cached forms instead
    of re-canonicalizing per hop.  The cache invalidates two ways:

    * assigning any field other than ``signature`` (which no message ever
      covers with its own signing content) drops the cached forms, so a
      top-level in-place tamper is re-canonicalized and detected;
    * ``copy.copy`` drops every cached form, so the copy-then-mutate
      pattern of the Byzantine twists never inherits a digest the mutated
      content no longer matches — even when the mutation happens *inside* a
      nested payload, where ``__setattr__`` on the outer message cannot see
      it.

    The contract deliberately does NOT cover mutating a *container* held by
    an already-canonicalized message in place (``batch.requests[0] = ...``,
    ``reply.result["ok"] = ...``): no field assignment fires and the stale
    digest would still verify.  Messages are frozen by convention once
    built; code that must mutate nested state on a live message (none in
    this repository does) has to call :meth:`invalidate_wire_caches`
    explicitly — attack helpers instead copy the message *and* rebuild the
    nested payload, which is also what a real attacker serializing fresh
    bytes would do.
    """

    signed: bool = False
    signature: Optional[Signature] = None

    def signing_content(self) -> Dict[str, Any]:
        """Canonical dict covered by this message's signature."""
        raise NotImplementedError

    def wire_form(self) -> Dict[str, Any]:
        """The frozen signing content: computed once, cached on the message.

        Callers must treat the returned dict as immutable.
        """
        cached = self.__dict__.get("_wire_form")
        if cached is None:
            cached = self.signing_content()
            self.__dict__["_wire_form"] = cached
            self.__dict__[HAS_CACHE_FLAG] = True
        return cached

    def wire_slice(self) -> bytes:
        """The frozen signed byte form of this message, cached.

        For hot types ``signing_bytes`` *is* the binary codec frame; cold
        types (view changes and friends) fall back to the canonical JSON
        bytes of their signing content, so every message exposes one frozen
        byte slice for digesting.  Invalidated with the other wire caches
        on content mutation or copy.  Callers must treat the returned bytes
        as immutable.
        """
        cached = self.__dict__.get("_wire_slice")
        if cached is None:
            signing_bytes = getattr(self, "signing_bytes", None)
            if signing_bytes is not None:
                cached = signing_bytes()
            else:
                cached = _canonical_bytes(self.wire_form())
            self.__dict__["_wire_slice"] = cached
            self.__dict__[HAS_CACHE_FLAG] = True
        return cached

    def content_digest(self) -> str:
        """Content-addressed digest of :meth:`wire_form` (``D(µ)``), cached."""
        return digest_of(self)

    def invalidate_wire_caches(self) -> None:
        """Drop every cached wire form (for deliberate in-place mutation)."""
        for attr in _WIRE_CACHE_ATTRS:
            self.__dict__.pop(attr, None)

    def __setattr__(self, name: str, value: Any) -> None:
        # Mutating any content field invalidates the frozen wire form.
        # ``signature`` is exempt: signatures cover content, never
        # themselves, and :meth:`sign` runs right after the digest is
        # cached — invalidating there would defeat the cache entirely.
        # The guard-flag probe keeps the no-cache case (field assignment
        # during dataclass ``__init__``) to a single dict lookup.
        instance_dict = self.__dict__
        if HAS_CACHE_FLAG in instance_dict and name != "signature" and not name.startswith("_"):
            for attr in _WIRE_CACHE_ATTRS:
                if attr in instance_dict:
                    del instance_dict[attr]
        instance_dict[name] = value

    def __copy__(self) -> "ProtocolMessage":
        clone = self.__class__.__new__(self.__class__)
        clone.__dict__.update(self.__dict__)
        for attr in _WIRE_CACHE_ATTRS:
            clone.__dict__.pop(attr, None)
        return clone

    def sign(self, signer: Signer) -> "ProtocolMessage":
        """Attach a signature by ``signer`` over :meth:`signing_content`."""
        # Inline cache probe: sign/verify are the two hottest digest users.
        content_digest = self.__dict__.get(DIGEST_CACHE_ATTR) or digest_of(self)
        self.signature = signer.sign_digest(content_digest)
        return self

    def verify(self, verifier: Verifier, expected_signer: Optional[str] = None) -> bool:
        """Check the attached signature (and optionally who produced it)."""
        if not self.signed:
            return True
        signature = self.signature
        if signature is None:
            return False
        if expected_signer is not None and signature.signer_id != expected_signer:
            return False
        content_digest = self.__dict__.get(DIGEST_CACHE_ATTR) or digest_of(self)
        return verifier.verify_digest(content_digest, signature)

    def wire_size(self) -> int:
        raise NotImplementedError

    def cached_wire_size(self) -> int:
        """:meth:`wire_size`, computed once and cached on the message."""
        cached = self.__dict__.get(WIRE_SIZE_CACHE_ATTR)
        if cached is None:
            cached = int(self.wire_size())
            self.__dict__[WIRE_SIZE_CACHE_ATTR] = cached
            self.__dict__[HAS_CACHE_FLAG] = True
        return cached


@dataclass(init=False)
class Request(ProtocolMessage):
    """Client request: ``<REQUEST, op, ts, client>`` signed by the client."""

    operation: Operation
    timestamp: int
    client_id: str
    signed: bool = True
    signature: Optional[Signature] = None

    def __init__(
        self,
        operation: Operation,
        timestamp: int,
        client_id: str,
        signed: bool = True,
        signature: Optional[Signature] = None,
    ) -> None:
        # Hot constructor: bulk-populating the instance dict skips the
        # per-field ``__setattr__`` cache guard (no caches can exist yet).
        self.__dict__.update({
            "operation": operation,
            "timestamp": timestamp,
            "client_id": client_id,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "REQUEST",
            "op": self.operation.to_wire(),
            "timestamp": self.timestamp,
            "client": self.client_id,
        }

    def signing_bytes(self) -> bytes:
        """The binary wire frame (:mod:`repro.wire` Request layout).

        Strictly finer than the legacy text form: the frame covers the full
        payload content where the legacy form covered only its length, so
        any two requests the legacy canonical form distinguished are still
        distinguished on the wire.
        """
        operation = self.operation
        return encode_request(
            self.timestamp, self.client_id, operation.kind, operation.args, operation.payload
        )

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + self.operation.wire_size()


@dataclass(init=False)
class Reply(ProtocolMessage):
    """Reply to a client: ``<REPLY, mode, view, ts, result>`` signed by the replica."""

    mode: int
    view: int
    timestamp: int
    client_id: str
    replica_id: str
    result: Any
    signed: bool = True
    signature: Optional[Signature] = None

    def __init__(
        self,
        mode: int,
        view: int,
        timestamp: int,
        client_id: str,
        replica_id: str,
        result: Any,
        signed: bool = True,
        signature: Optional[Signature] = None,
    ) -> None:
        self.__dict__.update({
            "mode": mode,
            "view": view,
            "timestamp": timestamp,
            "client_id": client_id,
            "replica_id": replica_id,
            "result": result,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "REPLY",
            "mode": self.mode,
            "view": self.view,
            "timestamp": self.timestamp,
            "client": self.client_id,
            "replica": self.replica_id,
            "result_digest": _result_digest(self.result),
        }

    def signing_bytes(self) -> bytes:
        """Binary wire frame; carries the result as its digest only."""
        return encode_reply(
            self.mode,
            self.view,
            self.timestamp,
            self.client_id,
            self.replica_id,
            self.result_digest(),
        )

    def result_digest(self) -> str:
        """Digest of the execution result (what clients match replies on).

        Cached on the reply (computed at sign time, reused by the client);
        invalidated with the other wire caches on mutation or copy.
        """
        instance_dict = self.__dict__
        cached = instance_dict.get("_result_digest")
        if cached is None:
            cached = _result_digest(self.result)
            instance_dict["_result_digest"] = cached
            instance_dict[HAS_CACHE_FLAG] = True
        return cached

    def result_payload_size(self) -> int:
        if isinstance(self.result, dict):
            payload = self.result.get("payload", "")
            if isinstance(payload, str):
                return len(payload)
        return 0

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + 16 + self.result_payload_size()


@dataclass(init=False)
class Busy(ProtocolMessage):
    """Admission-control reject: the primary shed this request under load.

    Sent instead of ordering the request when the primary's queue-depth /
    in-flight watermark is exceeded (see ``repro.core.admission``).  Signed
    by the rejecting replica so a Byzantine node cannot forge rejects to
    starve a client of an honest primary — clients verify before backing
    off.  A cold type: it signs over its canonical JSON content via the
    :meth:`ProtocolMessage.wire_slice` fallback, so it needs no binary
    codec entry (the aio/proc envelope pickles cold types).
    """

    mode: int
    view: int
    timestamp: int
    client_id: str
    replica_id: str
    queue_depth: int
    signed: bool = True
    signature: Optional[Signature] = None

    def __init__(
        self,
        mode: int,
        view: int,
        timestamp: int,
        client_id: str,
        replica_id: str,
        queue_depth: int,
        signed: bool = True,
        signature: Optional[Signature] = None,
    ) -> None:
        self.__dict__.update({
            "mode": mode,
            "view": view,
            "timestamp": timestamp,
            "client_id": client_id,
            "replica_id": replica_id,
            "queue_depth": queue_depth,
            "signed": signed,
            "signature": signature,
        })

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BUSY",
            "mode": self.mode,
            "view": self.view,
            "timestamp": self.timestamp,
            "client": self.client_id,
            "replica": self.replica_id,
            "queue_depth": self.queue_depth,
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + 8


# Execution results repeat heavily — every no-op of an x/y micro-benchmark
# returns the *same object* (see ``NullStateMachine``), and key-value reads
# repeat values — so result digests are memoized at two levels:
#
# * by object identity, but ONLY for results explicitly registered via
#   :func:`register_stable_result` — the StateMachine interface does not
#   promise immutable results, so pinning a digest to an arbitrary dict's
#   id would go stale if a state machine returned (and later mutated) an
#   internally held dict.  Registered entries hold a strong reference, so
#   an id can never be reused while cached.
# * by value, for everything else with hashable contents.  The type name
#   rides along in the key because ``True`` and ``1`` hash identically but
#   canonicalize differently.
#
# Both memos are bounded: once full, uncommon results just fall through to
# a fresh digest.
_RESULT_DIGEST_BY_ID: Dict[int, tuple] = {}
_RESULT_DIGEST_MEMO: Dict[tuple, str] = {}
_RESULT_DIGEST_MEMO_MAX = 4096


def register_stable_result(result: Any) -> str:
    """Pin a conventionally-immutable result object's digest by identity.

    Callers promise never to mutate ``result`` after registration (state
    machines that return one shared result object per apply, like
    ``NullStateMachine``).  Returns the digest.
    """
    digest_value = _result_digest(result)
    if len(_RESULT_DIGEST_BY_ID) < _RESULT_DIGEST_MEMO_MAX:
        _RESULT_DIGEST_BY_ID[id(result)] = (result, digest_value)
    return digest_value


def _result_digest(result: Any) -> str:
    from repro.crypto.digest import digest

    carried = getattr(result, "result_digest", None)
    if isinstance(carried, str):
        # An OpaqueResult (a decoded reply's placeholder) carries the
        # original result digest itself; hashing the placeholder would
        # diverge from the digest the frame was built over.
        return carried
    if isinstance(result, dict):
        by_id = _RESULT_DIGEST_BY_ID.get(id(result))
        if by_id is not None:
            return by_id[1]
        try:
            items = sorted(result.items())
        except TypeError:
            return digest(result)
        key_items = []
        for name, value in items:
            # Only flat scalar values are memo-keyable: inside a container,
            # equal-but-differently-canonicalized elements ((1,) vs (True,))
            # would collide.  Floats key by repr so 0.0 and -0.0 (equal,
            # same hash, different canonical JSON) stay distinct.  Anything
            # else skips the memo.
            value_type = type(value)
            if value_type is float:
                key_items.append((name, "float", repr(value)))
            elif value is None or value_type in (str, int, bool):
                key_items.append((name, value_type.__name__, value))
            else:
                return digest(result)
        key = tuple(key_items)
        cached = _RESULT_DIGEST_MEMO.get(key)
        if cached is None:
            cached = digest(result)
            if len(_RESULT_DIGEST_MEMO) < _RESULT_DIGEST_MEMO_MAX:
                _RESULT_DIGEST_MEMO[key] = cached
        return cached
    return digest(result)


@dataclass(init=False)
class Batch(ProtocolMessage):
    """An ordered group of client requests proposed in one consensus slot.

    Batching amortizes the per-slot agreement cost (ordering messages,
    signatures, quorum bookkeeping) over many client requests, which is the
    standard PBFT-style throughput lever.  The batch itself is unsigned: the
    ordering message that carries it (``PREPARE`` / ``PRE-PREPARE``) is
    signed by the primary, and each inner request keeps its own client
    signature.  Replicas commit the batch as a unit and fan replies out per
    request after execution.
    """

    requests: List[Request]
    signed: bool = False
    signature: Optional[Signature] = None

    def __init__(
        self,
        requests: Optional[List[Request]] = None,
        signed: bool = False,
        signature: Optional[Signature] = None,
    ) -> None:
        if not requests:
            raise ValueError("a batch must contain at least one request")
        self.__dict__.update({
            "requests": requests,
            "signed": signed,
            "signature": signature,
        })

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def client_id(self) -> str:
        """Lead request's client id (keeps slot-level bookkeeping uniform)."""
        return self.requests[0].client_id

    @property
    def timestamp(self) -> int:
        """Lead request's timestamp (keeps slot-level bookkeeping uniform)."""
        return self.requests[0].timestamp

    def signing_content(self) -> Dict[str, Any]:
        # Inner digests go through the content-addressed cache: a request
        # that already crossed the wire on its own is not re-canonicalized
        # when it is batched, and vice versa.
        return {
            "type": "BATCH",
            "count": len(self.requests),
            "digests": [digest_of(request) for request in self.requests],
        }

    def signing_bytes(self) -> bytes:
        # The batch frame embeds each request's own frozen frame, so a
        # request that already crossed the wire alone contributes its
        # cached slice here (and vice versa), and the batch round-trips
        # through the codec with full request content.
        return encode_batch([request.wire_slice() for request in self.requests])

    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(request.cached_wire_size() for request in self.requests)


def requests_of(payload: Any) -> List[Request]:
    """The client requests inside a slot payload (a batch or a bare request)."""
    if isinstance(payload, Batch):
        return payload.requests
    return [payload]


__all__ = [
    "ProtocolMessage",
    "Request",
    "Reply",
    "Busy",
    "Batch",
    "requests_of",
    "_HEADER_BYTES",
    "_SIGNATURE_BYTES",
    "_DIGEST_BYTES",
]
