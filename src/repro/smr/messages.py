"""Messages shared by every replication protocol in the repository.

Client-facing messages (``REQUEST`` and ``REPLY``) have the same structure in
SeeMoRe, Paxos, PBFT, and S-UpRight, so they live here in the SMR substrate.
Protocol-internal messages (prepare/accept/commit/...) are defined by each
protocol package.

Every message class provides:

* ``signed`` — whether the receiver must verify a public-key signature
  (drives the CPU cost model in :mod:`repro.net.costs`);
* ``wire_size()`` — approximate serialized size in bytes (drives bandwidth
  and hashing costs);
* ``signing_content()`` — the canonical content covered by the signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.crypto.signatures import Signature, Signer, Verifier
from repro.smr.state_machine import Operation

_HEADER_BYTES = 48
_SIGNATURE_BYTES = 64
_DIGEST_BYTES = 32


class ProtocolMessage:
    """Mixin with the signing helpers every protocol message uses."""

    signed: bool = False
    signature: Optional[Signature] = None

    def signing_content(self) -> Dict[str, Any]:
        """Canonical dict covered by this message's signature."""
        raise NotImplementedError

    def sign(self, signer: Signer) -> "ProtocolMessage":
        """Attach a signature by ``signer`` over :meth:`signing_content`."""
        self.signature = signer.sign(self.signing_content())
        return self

    def verify(self, verifier: Verifier, expected_signer: Optional[str] = None) -> bool:
        """Check the attached signature (and optionally who produced it)."""
        if not self.signed:
            return True
        if self.signature is None:
            return False
        if expected_signer is not None and self.signature.signer_id != expected_signer:
            return False
        return verifier.verify(self.signing_content(), self.signature)

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass
class Request(ProtocolMessage):
    """Client request: ``<REQUEST, op, ts, client>`` signed by the client."""

    operation: Operation
    timestamp: int
    client_id: str
    signed: bool = True
    signature: Optional[Signature] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "REQUEST",
            "op": self.operation.to_wire(),
            "timestamp": self.timestamp,
            "client": self.client_id,
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + self.operation.wire_size()


@dataclass
class Reply(ProtocolMessage):
    """Reply to a client: ``<REPLY, mode, view, ts, result>`` signed by the replica."""

    mode: int
    view: int
    timestamp: int
    client_id: str
    replica_id: str
    result: Any
    signed: bool = True
    signature: Optional[Signature] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "REPLY",
            "mode": self.mode,
            "view": self.view,
            "timestamp": self.timestamp,
            "client": self.client_id,
            "replica": self.replica_id,
            "result_digest": _result_digest(self.result),
        }

    def result_payload_size(self) -> int:
        if isinstance(self.result, dict):
            payload = self.result.get("payload", "")
            if isinstance(payload, str):
                return len(payload)
        return 0

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + 16 + self.result_payload_size()


def _result_digest(result: Any) -> str:
    from repro.crypto.digest import digest

    return digest(result)


@dataclass
class Batch(ProtocolMessage):
    """An ordered group of client requests proposed in one consensus slot.

    Batching amortizes the per-slot agreement cost (ordering messages,
    signatures, quorum bookkeeping) over many client requests, which is the
    standard PBFT-style throughput lever.  The batch itself is unsigned: the
    ordering message that carries it (``PREPARE`` / ``PRE-PREPARE``) is
    signed by the primary, and each inner request keeps its own client
    signature.  Replicas commit the batch as a unit and fan replies out per
    request after execution.
    """

    requests: List[Request] = field(default_factory=list)
    signed: bool = False
    signature: Optional[Signature] = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("a batch must contain at least one request")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def client_id(self) -> str:
        """Lead request's client id (keeps slot-level bookkeeping uniform)."""
        return self.requests[0].client_id

    @property
    def timestamp(self) -> int:
        """Lead request's timestamp (keeps slot-level bookkeeping uniform)."""
        return self.requests[0].timestamp

    def signing_content(self) -> Dict[str, Any]:
        from repro.crypto.digest import digest

        return {
            "type": "BATCH",
            "count": len(self.requests),
            "digests": [digest(request.signing_content()) for request in self.requests],
        }

    def wire_size(self) -> int:
        return _HEADER_BYTES + sum(request.wire_size() for request in self.requests)


def requests_of(payload: Any) -> List[Request]:
    """The client requests inside a slot payload (a batch or a bare request)."""
    if isinstance(payload, Batch):
        return payload.requests
    return [payload]


__all__ = [
    "ProtocolMessage",
    "Request",
    "Reply",
    "Batch",
    "requests_of",
    "_HEADER_BYTES",
    "_SIGNATURE_BYTES",
    "_DIGEST_BYTES",
]
