"""Commit ledgers: the ground truth used to check safety.

Every replica appends an entry to its ledger when it commits a sequence
number.  Safety (the paper's property (1): all correct servers execute the
same requests in the same order) is asserted by comparing ledgers of
correct replicas: for every sequence number committed by two correct
replicas, the request digests must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class LedgerEntry:
    """One committed slot on one replica."""

    sequence: int
    digest: str
    view: int
    client_id: str
    timestamp: int


class CommitLedger:
    """Append-only record of a replica's committed sequence numbers."""

    def __init__(self, replica_id: str) -> None:
        self.replica_id = replica_id
        self._entries: Dict[int, LedgerEntry] = {}

    def record(self, entry: LedgerEntry) -> None:
        """Record a commit; re-recording the same digest is a no-op.

        Raises:
            ValueError: if the slot was already committed with a *different*
                digest -- that is a local safety violation and should never
                happen for a correct replica.
        """
        existing = self._entries.get(entry.sequence)
        if existing is not None:
            if existing.digest != entry.digest:
                raise ValueError(
                    f"replica {self.replica_id}: sequence {entry.sequence} committed twice "
                    f"with different digests ({existing.digest[:8]} vs {entry.digest[:8]})"
                )
            return
        self._entries[entry.sequence] = entry

    def digest_at(self, sequence: int) -> Optional[str]:
        entry = self._entries.get(sequence)
        return entry.digest if entry else None

    def entry_at(self, sequence: int) -> Optional[LedgerEntry]:
        return self._entries.get(sequence)

    def entries_since(self, offset: int) -> List[LedgerEntry]:
        """Entries recorded after the first ``offset``, in commit order.

        The ledger is append-only, so a caller can scan it incrementally by
        remembering ``len(ledger)`` between calls (continuous safety
        checkers do this to avoid re-comparing already-verified slots).
        """
        if offset >= len(self._entries):
            return []
        return list(islice(self._entries.values(), offset, None))

    @property
    def committed_sequences(self) -> List[int]:
        return sorted(self._entries)

    @property
    def highest_committed(self) -> int:
        return max(self._entries) if self._entries else 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sequence: int) -> bool:
        return sequence in self._entries


def find_safety_violations(ledgers: Iterable[CommitLedger]) -> List[Tuple[int, str, str, str, str]]:
    """Compare ledgers pairwise and return conflicting commits.

    Returns a list of ``(sequence, replica_a, digest_a, replica_b, digest_b)``
    tuples, one per conflicting pair.  An empty list means the execution was
    safe (with respect to the replicas provided -- callers must pass only
    *correct* replicas' ledgers, since Byzantine replicas may record
    anything).
    """
    violations: List[Tuple[int, str, str, str, str]] = []
    ledger_list = list(ledgers)
    for index, first in enumerate(ledger_list):
        for second in ledger_list[index + 1:]:
            shared = set(first.committed_sequences) & set(second.committed_sequences)
            for sequence in sorted(shared):
                digest_a = first.digest_at(sequence)
                digest_b = second.digest_at(sequence)
                if digest_a != digest_b:
                    violations.append(
                        (
                            sequence,
                            first.replica_id,
                            digest_a or "",
                            second.replica_id,
                            digest_b or "",
                        )
                    )
    return violations


def assert_ledgers_consistent(ledgers: Iterable[CommitLedger]) -> None:
    """Raise ``AssertionError`` when any two ledgers conflict."""
    violations = find_safety_violations(ledgers)
    if violations:
        sequence, replica_a, digest_a, replica_b, digest_b = violations[0]
        raise AssertionError(
            f"safety violation at sequence {sequence}: "
            f"{replica_a} committed {digest_a[:8]} but {replica_b} committed {digest_b[:8]} "
            f"({len(violations)} total conflicts)"
        )
