"""Per-sequence-number bookkeeping shared by the consensus protocols.

Each protocol orders client requests into numbered *slots*.  A slot collects
the request itself, the ordering message from the primary, and the votes
received in each phase (accept/prepare/commit/inform, depending on the
protocol and mode).  The protocols differ only in which phases exist and how
many matching votes they need -- the bookkeeping is identical, so it lives
here in the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.smr.messages import Request, requests_of


@dataclass
class Slot:
    """State of one sequence number on one replica.

    ``request`` holds the slot's whole payload: a bare client request or a
    :class:`~repro.smr.messages.Batch` — agreement never looks inside it.
    """

    sequence: int
    view: int = 0
    digest: Optional[str] = None
    request: Optional[Request] = None
    ordering_message: Optional[Any] = None
    votes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    committed: bool = False
    executed: bool = False
    # Generation of the replica's client-bookkeeping maps when this slot's
    # payload was last walked (see SeeMoReReplica.prepare_slot); lets the
    # commit path skip re-recording a batch it already recorded.
    bookkept_generation: int = -1

    @property
    def request_count(self) -> int:
        """Client requests carried by this slot (0 while the payload is unknown)."""
        if self.request is None:
            return 0
        return len(requests_of(self.request))

    def record_vote(
        self, phase: str, sender: str, message: Any, digest: Optional[str] = None
    ) -> int:
        """Record one vote for ``phase`` from ``sender``.

        Votes are keyed by sender so duplicates never inflate the count.  If
        ``digest`` is given, only votes matching the slot's digest (once
        known) should be counted; mismatching votes are still stored so view
        changes can inspect them, but they are kept under a shadow key.

        Returns:
            The number of votes now recorded for ``phase`` that match the
            slot digest (or all votes when the slot digest is unknown).
        """
        phase_votes = self.votes.setdefault(phase, {})
        phase_votes[sender] = (message, digest)
        return self.vote_count(phase)

    def vote_count(self, phase: str) -> int:
        """Number of distinct voters for ``phase`` whose digest matches the slot."""
        phase_votes = self.votes.get(phase)
        if not phase_votes:
            return 0
        slot_digest = self.digest
        if slot_digest is None:
            return len(phase_votes)
        # Plain loop, not a genexpr: this runs on every vote received and
        # the per-element generator frame shows up in profiles.
        count = 0
        for _, vote_digest in phase_votes.values():
            if vote_digest is None or vote_digest == slot_digest:
                count += 1
        return count

    def voters(self, phase: str) -> List[str]:
        """Distinct voter ids whose digest matches the slot digest."""
        phase_votes = self.votes.get(phase, {})
        if self.digest is None:
            return sorted(phase_votes)
        return sorted(
            sender
            for sender, (_, vote_digest) in phase_votes.items()
            if vote_digest is None or vote_digest == self.digest
        )

    def has_vote_from(self, phase: str, sender: str) -> bool:
        return sender in self.votes.get(phase, {})


class SlotLog:
    """All slots known to a replica, with watermark-based garbage collection."""

    def __init__(self) -> None:
        self._slots: Dict[int, Slot] = {}
        self._low_watermark = 0

    @property
    def low_watermark(self) -> int:
        """Sequence numbers at or below this are garbage collected."""
        return self._low_watermark

    def slot(self, sequence: int) -> Slot:
        """Return (creating if needed) the slot for ``sequence``."""
        if sequence <= self._low_watermark:
            # Stale slot: return a throwaway so callers need no special case.
            return Slot(sequence=sequence)
        existing = self._slots.get(sequence)
        if existing is None:
            existing = Slot(sequence=sequence)
            self._slots[sequence] = existing
        return existing

    def existing_slot(self, sequence: int) -> Optional[Slot]:
        return self._slots.get(sequence)

    def __contains__(self, sequence: int) -> bool:
        return sequence in self._slots

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def sequences(self) -> List[int]:
        return sorted(self._slots)

    def slots_above(self, sequence: int) -> List[Slot]:
        """All live slots with sequence strictly greater than ``sequence``."""
        return [self._slots[seq] for seq in sorted(self._slots) if seq > sequence]

    def uncommitted_slots(self) -> List[Slot]:
        return [self._slots[seq] for seq in sorted(self._slots) if not self._slots[seq].committed]

    def has_pending_proposal(self) -> bool:
        """Whether any slot holds an ordered-but-uncommitted proposal.

        Equivalent to scanning :meth:`uncommitted_slots` for a slot with a
        request and an ordering message, but without sorting or building a
        list — the request-timer update runs this on every commit.  Scans
        newest-first: under pipelining the youngest slots are almost always
        the in-flight ones, so the typical probe is O(1) instead of walking
        the long committed prefix awaiting checkpoint GC.
        """
        for slot in reversed(self._slots.values()):
            if (
                not slot.committed
                and slot.request is not None
                and slot.ordering_message is not None
            ):
                return True
        return False

    def highest_sequence(self) -> int:
        return max(self._slots) if self._slots else self._low_watermark

    def collect_below(self, watermark: int) -> int:
        """Garbage collect slots at or below ``watermark``.

        Returns the number of slots discarded.  Called when a checkpoint
        becomes stable (Section 5.1, "State Transfer").
        """
        if watermark <= self._low_watermark:
            return 0
        stale = [seq for seq in self._slots if seq <= watermark]
        for seq in stale:
            del self._slots[seq]
        self._low_watermark = watermark
        return len(stale)
