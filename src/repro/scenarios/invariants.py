"""Continuously checked invariants for fault scenarios.

Each checker implements a small protocol:

* :meth:`attach` is called once, before the clients start (a checker may
  instrument deployment objects here);
* :meth:`check` is called periodically on the simulator clock while the
  scenario runs, so a violation is caught close to the moment it happens;
* :meth:`finalize` is called once after the run settles.

All methods return a list of human-readable violation strings (empty when
the invariant holds).  The four standard checkers cover the paper's safety
claims:

* committed prefixes never fork across correct replicas
  (:class:`CommittedPrefixAgreement`);
* no correct client accepts a reply that no correct replica produced
  (:class:`NoForgedReplies`);
* each request id executes to exactly one result, agreed on by every
  correct replica that executed it (:class:`ExactlyOnceExecution`);
* stable checkpoint digests agree across correct replicas
  (:class:`CheckpointAgreement`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.cluster.deployment import Deployment
from repro.smr.ledger import find_safety_violations


class InvariantChecker:
    """Base class; subclasses override any of the three hooks."""

    name = "invariant"

    def attach(self, deployment: Deployment) -> None:
        """Instrument the deployment before clients start."""

    def check(self, deployment: Deployment) -> List[str]:
        """Periodic mid-run check; return violation descriptions."""
        return []

    def finalize(self, deployment: Deployment) -> List[str]:
        """End-of-run check; return violation descriptions."""
        return self.check(deployment)


class CommittedPrefixAgreement(InvariantChecker):
    """Correct replicas never commit conflicting requests at one sequence.

    This is the paper's safety property (1), checked *during* the run (not
    only at the end) so a transient fork that a later state transfer would
    paper over is still caught.  The periodic check scans each append-only
    ledger incrementally (new entries only) against the first recorded
    digest per sequence; the final check additionally runs the full
    pairwise comparison as a belt-and-braces pass.
    """

    name = "committed-prefix-agreement"

    def __init__(self) -> None:
        self._offsets: Dict[str, int] = {}
        # sequence -> (first replica to commit it while correct, digest)
        self._agreed: Dict[int, Tuple[str, str]] = {}
        # Structural keys of reported conflicts, so the final pairwise pass
        # does not re-report a fork the incremental scan already flagged
        # with the replicas phrased in the opposite order.
        self._reported: set = set()
        self._violations: List[str] = []

    def _report(self, sequence, replica_a, digest_a, replica_b, digest_b) -> None:
        key = (sequence, frozenset({(replica_a, digest_a), (replica_b, digest_b)}))
        if key in self._reported:
            return
        self._reported.add(key)
        self._violations.append(
            f"sequence {sequence}: {replica_a} committed {digest_a[:8]} "
            f"but {replica_b} committed {digest_b[:8]}"
        )

    def check(self, deployment: Deployment) -> List[str]:
        for replica in deployment.correct_replicas():
            ledger = replica.ledger
            for entry in ledger.entries_since(self._offsets.get(replica.node_id, 0)):
                seen = self._agreed.get(entry.sequence)
                if seen is None:
                    self._agreed[entry.sequence] = (replica.node_id, entry.digest)
                elif seen[1] != entry.digest and seen[0] != replica.node_id:
                    self._report(
                        entry.sequence, replica.node_id, entry.digest, seen[0], seen[1]
                    )
            self._offsets[replica.node_id] = len(ledger)
        return list(self._violations)

    def finalize(self, deployment: Deployment) -> List[str]:
        self.check(deployment)
        for sequence, replica_a, digest_a, replica_b, digest_b in find_safety_violations(
            deployment.correct_ledgers()
        ):
            self._report(sequence, replica_a, digest_a, replica_b, digest_b)
        return list(self._violations)


class NoForgedReplies(InvariantChecker):
    """No correct client ever accepts a result forged by a Byzantine replica.

    The checker wraps every client's completion path to record the result
    each accepted reply carried, then verifies each accepted result against
    the reply caches of correct replicas: some correct replica must have
    executed the request, and every correct replica that executed it must
    have produced exactly the accepted result.
    """

    name = "no-forged-replies"

    def __init__(self) -> None:
        # (client_id, timestamp) -> the result the client accepted.
        self._accepted: Dict[Tuple[str, int], Any] = {}
        self._violations: List[str] = []

    def attach(self, deployment: Deployment) -> None:
        for client in deployment.clients:
            self._instrument(client)
        # Clients spawned mid-run (a ClientSurge event) must be instrumented
        # too; wrap the pool's spawn to catch them.
        pool = deployment.client_pool
        original_spawn = pool.spawn

        def spawning(*args, **kwargs):
            created = original_spawn(*args, **kwargs)
            for client in created:
                self._instrument(client)
            return created

        pool.spawn = spawning  # type: ignore[method-assign]

    def _instrument(self, client) -> None:
        original_complete = client._complete

        def completing(reply, pending):
            key = (client.node_id, pending.request.timestamp)
            if key in self._accepted and self._accepted[key] != reply.result:
                self._violations.append(
                    f"client {client.node_id} accepted two different results "
                    f"for timestamp {key[1]}"
                )
            self._accepted[key] = reply.result
            original_complete(reply, pending)

        client._complete = completing  # type: ignore[method-assign]

    def finalize(self, deployment: Deployment) -> List[str]:
        violations = list(self._violations)
        correct = deployment.correct_replicas()
        for (client_id, timestamp), accepted in sorted(self._accepted.items()):
            executed = [
                replica.executor.cached_reply(client_id, timestamp)
                for replica in correct
                if replica.executor.already_executed(client_id, timestamp)
            ]
            if not executed:
                violations.append(
                    f"client {client_id} accepted a reply for timestamp {timestamp} "
                    f"that no correct replica ever executed"
                )
            elif not any(result == accepted for result in executed):
                violations.append(
                    f"client {client_id} accepted a forged result for timestamp "
                    f"{timestamp}: no correct replica produced it"
                )
        return violations


class ExactlyOnceExecution(InvariantChecker):
    """Each request id maps to exactly one result, everywhere.

    Re-proposals across view changes may legitimately re-*commit* a request
    in a second slot, but the executor must serve the duplicate from its
    reply cache: on any single correct replica all executions of one
    ``(client, timestamp)`` must carry the same result, and all correct
    replicas must agree on that result.
    """

    name = "exactly-once-execution"

    def __init__(self) -> None:
        # Incremental scan state, so the periodic check only pays for
        # executions performed since the previous sample.
        self._offsets: Dict[str, int] = {}
        self._local: Dict[str, Dict[Tuple[str, int], Any]] = {}
        self._agreed: Dict[Tuple[str, int], Tuple[str, Any]] = {}
        self._violations: List[str] = []

    def check(self, deployment: Deployment) -> List[str]:
        for replica in deployment.correct_replicas():
            executed = replica.executor.executed
            local = self._local.setdefault(replica.node_id, {})
            for execution in executed[self._offsets.get(replica.node_id, 0):]:
                key = (execution.client_id, execution.timestamp)
                if key in local and local[key] != execution.result:
                    self._violations.append(
                        f"{replica.node_id} executed {key} twice with different "
                        f"results (duplicate not served from the reply cache)"
                    )
                local[key] = execution.result
                seen = self._agreed.get(key)
                if seen is None:
                    self._agreed[key] = (replica.node_id, execution.result)
                elif seen[1] != execution.result and seen[0] != replica.node_id:
                    self._violations.append(
                        f"{replica.node_id} and {seen[0]} disagree on the result of {key}"
                    )
            self._offsets[replica.node_id] = len(executed)
        return list(self._violations)


class CheckpointAgreement(InvariantChecker):
    """Stable checkpoints at the same sequence have the same state digest.

    The checker samples every correct replica's stable checkpoint each
    period and accumulates a history, so replicas that stabilise the same
    sequence at different times are still compared.
    """

    name = "checkpoint-agreement"

    def __init__(self) -> None:
        # sequence -> (replica that set it, digest)
        self._seen: Dict[int, Tuple[str, str]] = {}
        self._violations: List[str] = []

    def check(self, deployment: Deployment) -> List[str]:
        for replica in deployment.correct_replicas():
            checkpoints = getattr(replica, "checkpoints", None)
            if checkpoints is None or checkpoints.stable_sequence == 0:
                continue
            sequence = checkpoints.stable_sequence
            state_digest = checkpoints.stable_digest
            seen = self._seen.get(sequence)
            if seen is None:
                self._seen[sequence] = (replica.node_id, state_digest)
            elif seen[1] != state_digest:
                message = (
                    f"checkpoint at sequence {sequence}: {replica.node_id} has digest "
                    f"{state_digest[:8]} but {seen[0]} has {seen[1][:8]}"
                )
                if message not in self._violations:
                    self._violations.append(message)
        return list(self._violations)


def default_checkers() -> List[InvariantChecker]:
    """A fresh instance of every standard checker."""
    return [
        CommittedPrefixAgreement(),
        NoForgedReplies(),
        ExactlyOnceExecution(),
        CheckpointAgreement(),
    ]


__all__ = [
    "InvariantChecker",
    "CommittedPrefixAgreement",
    "NoForgedReplies",
    "ExactlyOnceExecution",
    "CheckpointAgreement",
    "default_checkers",
]
