"""Fault scenarios for sharded deployments.

The single-cluster scenario engine exercises one SeeMoRe group; this
module lifts the same declarative style to
:class:`~repro.shard.deployment.ShardedDeployment`:

* **events** — :class:`OnShard` replays any single-cluster event (crash,
  Byzantine strategy, mode switch, ...) against one shard;
  :class:`IsolateShard` partitions a whole shard's replica group away from
  every other node (clients included), the coarse failure a sharded system
  must absorb;
* **checkers** — every shard runs the standard single-cluster invariant
  checkers, and two sharded checkers run globally:
  :class:`CrossShardAtomicity` (no shard commits a transaction another
  shard aborted — the two-phase protocol's contract) and
  :class:`ShardedNoForgedReplies` (a client accepts only results some
  correct replica of the *owning* shard produced);
* **engine** — :func:`run_sharded_scenario` builds the deployment, drives
  the events on the simulator clock, samples the checkers continuously,
  and returns a result with a pass/fail verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.builders import build_sharded_seemore
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.scenarios.events import Byzantine, Crash, ModeSwitch, Recover, ScenarioEvent
from repro.scenarios.invariants import InvariantChecker, default_checkers
from repro.shard.deployment import ShardedDeployment, ShardSpec
from repro.workload.generator import Workload, WorkloadSpec

# -- events -----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardedScenarioEvent:
    """Base class: one timed action against a running sharded deployment."""

    at: float

    def apply(self, deployment: ShardedDeployment) -> None:
        raise NotImplementedError

    @property
    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class OnShard(ShardedScenarioEvent):
    """Apply a single-cluster scenario event to one shard.

    The wrapped event's own ``at`` is ignored — the wrapper's ``at`` is the
    schedule — so any event from :mod:`repro.scenarios.events` composes
    unchanged (targets resolve against the shard's config, e.g.
    ``"primary"`` is *that shard's* current primary).
    """

    shard: int = 0
    event: Optional[ScenarioEvent] = None

    def apply(self, deployment: ShardedDeployment) -> None:
        if self.event is None:
            raise ValueError("OnShard needs a wrapped event")
        self.event.apply(deployment.shards[self.shard])

    @property
    def label(self) -> str:
        inner = self.event.label if self.event is not None else "?"
        return f"s{self.shard}:{inner}"


@dataclass(frozen=True)
class IsolateShard(ShardedScenarioEvent):
    """Cut one shard's replicas off from every other node, clients included.

    Cross-shard transactions touching the shard stall in prepare (and, with
    a coordinator timeout, abort); single-shard traffic for the other
    shards must keep flowing.  Replaces any existing partition.
    """

    shard: int = 0

    def apply(self, deployment: ShardedDeployment) -> None:
        isolated = set(deployment.shards[self.shard].replicas)
        everyone_else = set(deployment.all_node_ids()) - isolated
        deployment.network.conditions.partition(isolated, everyone_else)

    @property
    def label(self) -> str:
        return f"isolate-shard({self.shard})"


@dataclass(frozen=True)
class HealShards(ShardedScenarioEvent):
    """Remove every partition."""

    def apply(self, deployment: ShardedDeployment) -> None:
        deployment.network.conditions.heal_partition()

    @property
    def label(self) -> str:
        return "heal-shards"


@dataclass(frozen=True)
class SurgeShardedClients(ShardedScenarioEvent):
    """Ramp load by spawning extra *sharded* (router-aware) clients.

    The single-cluster ``ClientSurge`` must not be used through
    ``OnShard`` — an unrouted client would aim every key at one shard —
    so sharded scenarios surge through the deployment's own pool.
    """

    count: int = 2
    window: Optional[int] = None

    def apply(self, deployment: ShardedDeployment) -> None:
        deployment.add_clients(self.count, window=self.window)

    @property
    def label(self) -> str:
        return f"sharded-client-surge(+{self.count})"


# -- checkers ---------------------------------------------------------------------


class ShardedInvariantChecker:
    """Base class: the sharded counterpart of ``InvariantChecker``."""

    name = "sharded-invariant"

    def attach(self, deployment: ShardedDeployment) -> None:
        """Instrument the deployment before clients start."""

    def check(self, deployment: ShardedDeployment) -> List[str]:
        return []

    def finalize(self, deployment: ShardedDeployment) -> List[str]:
        return self.check(deployment)


class PerShardInvariants(ShardedInvariantChecker):
    """Run the full single-cluster checker set independently on every shard.

    Committed-prefix agreement, exactly-once execution, and checkpoint
    agreement are all *per-shard* properties — each shard is its own
    replicated state machine — so each shard gets a fresh checker set and
    violations are reported with the shard index.
    """

    name = "per-shard-invariants"

    def __init__(self, checker_factory=default_checkers) -> None:
        self._checker_factory = checker_factory
        self._checkers: Dict[int, List[InvariantChecker]] = {}

    def attach(self, deployment: ShardedDeployment) -> None:
        for index, shard in enumerate(deployment.shards):
            self._checkers[index] = list(self._checker_factory())
            for checker in self._checkers[index]:
                checker.attach(shard)

    def _collect(self, deployment: ShardedDeployment, final: bool) -> List[str]:
        violations = []
        for index, shard in enumerate(deployment.shards):
            for checker in self._checkers.get(index, ()):
                found = checker.finalize(shard) if final else checker.check(shard)
                violations.extend(f"shard {index} [{checker.name}] {v}" for v in found)
        return violations

    def check(self, deployment: ShardedDeployment) -> List[str]:
        return self._collect(deployment, final=False)

    def finalize(self, deployment: ShardedDeployment) -> List[str]:
        return self._collect(deployment, final=True)


class CrossShardAtomicity(ShardedInvariantChecker):
    """No shard commits a cross-shard transaction another shard aborted.

    Checked continuously — a transient split-decision that some later
    repair would paper over is still caught at the sample closest to the
    moment it happened.
    """

    name = "cross-shard-atomicity"

    def check(self, deployment: ShardedDeployment) -> List[str]:
        return deployment.atomicity_violations()


class ShardedNoForgedReplies(ShardedInvariantChecker):
    """Accepted results must come from the owning shard's correct replicas.

    Wraps every sharded client's completion path to record, per accepted
    reply, which shard served it and what result was accepted; at the end
    of the run each accepted result is validated against the reply caches
    of that shard's correct replicas.
    """

    name = "sharded-no-forged-replies"

    def __init__(self) -> None:
        # (client_id, timestamp) -> (shard_id, accepted result)
        self._accepted: Dict[Tuple[str, int], Tuple[int, Any]] = {}

    def attach(self, deployment: ShardedDeployment) -> None:
        for client in deployment.clients:
            self._instrument(client)
        pool = deployment.client_pool
        original_spawn = pool.spawn

        def spawning(*args, **kwargs):
            created = original_spawn(*args, **kwargs)
            for client in created:
                self._instrument(client)
            return created

        pool.spawn = spawning  # type: ignore[method-assign]

    def _instrument(self, client) -> None:
        original_complete = client._complete

        def completing(reply, pending):
            timestamp = pending.request.timestamp
            meta = client._meta.get(timestamp)
            if meta is not None:
                self._accepted[(client.node_id, timestamp)] = (meta.shard_id, reply.result)
            original_complete(reply, pending)

        client._complete = completing  # type: ignore[method-assign]

    def finalize(self, deployment: ShardedDeployment) -> List[str]:
        violations = []
        correct_by_shard = {
            index: shard.correct_replicas() for index, shard in enumerate(deployment.shards)
        }
        for (client_id, timestamp), (shard_id, accepted) in sorted(self._accepted.items()):
            executed = [
                replica.executor.cached_reply(client_id, timestamp)
                for replica in correct_by_shard[shard_id]
                if replica.executor.already_executed(client_id, timestamp)
            ]
            if not executed:
                violations.append(
                    f"client {client_id} accepted a reply for timestamp {timestamp} "
                    f"that no correct replica of shard {shard_id} ever executed"
                )
            elif not any(result == accepted for result in executed):
                violations.append(
                    f"client {client_id} accepted a forged result for timestamp "
                    f"{timestamp}: no correct replica of shard {shard_id} produced it"
                )
        return violations


def default_sharded_checkers() -> List[ShardedInvariantChecker]:
    """A fresh instance of every standard sharded checker."""
    return [PerShardInvariants(), CrossShardAtomicity(), ShardedNoForgedReplies()]


# -- the scenario -----------------------------------------------------------------


@dataclass(frozen=True)
class ShardedScenario:
    """One named, declarative fault scenario over a sharded deployment.

    ``modes`` assigns each shard its SeeMoRe mode (and implicitly the shard
    count); uniform fault thresholds keep the definition compact.  The
    workload is always the sharded key-value mix, with
    ``cross_shard_fraction`` of operations running the two-phase path.
    """

    name: str
    description: str
    modes: Tuple[Mode, ...] = (Mode.LION, Mode.LION)
    events: Tuple[ShardedScenarioEvent, ...] = ()
    duration: float = 1.0
    settle: float = 0.3
    num_clients: int = 3
    client_window: int = 2
    crash_tolerance: int = 1
    byzantine_tolerance: int = 1
    checkpoint_period: int = 128
    batch_policy: Optional[BatchPolicy] = None
    cross_shard_fraction: float = 0.2
    read_fraction: float = 0.5
    key_space: int = 200
    key_distribution: str = "uniform"
    partition_policy: str = "hash"
    txn_timeout: Optional[float] = 0.3
    seed: int = 7
    client_timeout: float = 0.1
    min_completed: int = 10
    min_committed_txns: int = 1
    expect_aborts: bool = False
    check_interval: float = 0.05

    @property
    def num_shards(self) -> int:
        return len(self.modes)


@dataclass
class ShardedScenarioResult:
    """Everything one sharded scenario run produced, with a verdict."""

    scenario: str
    protocol: str
    shard_modes: Tuple[str, ...]
    duration: float
    completed: int
    per_shard_completed: Tuple[int, ...]
    transactions: Dict[str, int]
    client_timeouts: int
    events_applied: List[Tuple[float, str]] = field(default_factory=list)
    invariant_violations: Dict[str, List[str]] = field(default_factory=dict)
    expectation_failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.invariant_violations and not self.expectation_failures

    def failures(self) -> List[str]:
        lines = []
        for checker, violations in sorted(self.invariant_violations.items()):
            lines.extend(f"[{checker}] {violation}" for violation in violations)
        lines.extend(f"[expectation] {failure}" for failure in self.expectation_failures)
        return lines

    def assert_ok(self) -> None:
        if not self.ok:
            details = "\n  ".join(self.failures())
            raise AssertionError(
                f"sharded scenario {self.scenario!r}: "
                f"{len(self.failures())} failure(s):\n  {details}"
            )

    def as_row(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "shards": "/".join(mode.lower() for mode in self.shard_modes),
            "completed": self.completed,
            "txns_committed": self.transactions.get("committed", 0),
            "txns_aborted": self.transactions.get("aborted", 0),
            "timeouts": self.client_timeouts,
            "failures": len(self.failures()),
            "verdict": "ok" if self.ok else "FAIL",
        }


# -- running ----------------------------------------------------------------------


def build_sharded_scenario_deployment(scenario: ShardedScenario, **overrides) -> ShardedDeployment:
    """Stand up the deployment one sharded scenario runs against."""
    specs = tuple(
        ShardSpec(
            mode=mode,
            crash_tolerance=scenario.crash_tolerance,
            byzantine_tolerance=scenario.byzantine_tolerance,
            checkpoint_period=scenario.checkpoint_period,
            batch_policy=scenario.batch_policy,
        )
        for mode in scenario.modes
    )
    workload = Workload.build(
        WorkloadSpec(
            kind="sharded-kv",
            key_space=scenario.key_space,
            read_fraction=scenario.read_fraction,
            seed=scenario.seed,
            cross_shard_fraction=scenario.cross_shard_fraction,
            key_distribution=scenario.key_distribution,
        )
    )
    build_kwargs = dict(
        shard_specs=specs,
        workload=workload,
        num_clients=scenario.num_clients,
        seed=scenario.seed,
        partition_policy=scenario.partition_policy,
        client_timeout=scenario.client_timeout,
        client_window=scenario.client_window,
        txn_timeout=scenario.txn_timeout,
    )
    build_kwargs.update(overrides)
    return build_sharded_seemore(**build_kwargs)


def run_sharded_scenario(
    scenario: ShardedScenario,
    checkers: Optional[List[ShardedInvariantChecker]] = None,
    deployment: Optional[ShardedDeployment] = None,
    **overrides,
) -> ShardedScenarioResult:
    """Run one sharded scenario and return its result (no assertion).

    A pre-built ``deployment`` may be supplied when the caller needs to
    inspect it after the run (e.g. adaptive-controller expectations);
    builder ``overrides`` are rejected in that case since they could not
    apply.
    """
    if deployment is None:
        deployment = build_sharded_scenario_deployment(scenario, **overrides)
    elif overrides:
        raise TypeError(
            "run_sharded_scenario() got both a pre-built deployment and builder "
            f"overrides {sorted(overrides)}; apply the overrides when building"
        )
    active_checkers = list(checkers) if checkers is not None else default_sharded_checkers()
    for checker in active_checkers:
        checker.attach(deployment)

    simulator = deployment.simulator
    start = simulator.now
    end = start + scenario.duration

    events_applied: List[Tuple[float, str]] = []
    for event in scenario.events:
        if event.at > scenario.duration:
            raise ValueError(
                f"sharded scenario {scenario.name!r}: event {event.label} at "
                f"t={event.at} never fires (duration is {scenario.duration})"
            )

        def fire(event: ShardedScenarioEvent = event) -> None:
            events_applied.append((round(simulator.now - start, 6), event.label))
            event.apply(deployment)

        simulator.call_at(start + event.at, fire, label=f"sharded-scenario:{event.label}")

    violations: Dict[str, List[str]] = {}
    seen: set = set()

    def record(checker_name: str, messages: List[str]) -> None:
        for message in messages:
            if (checker_name, message) not in seen:
                seen.add((checker_name, message))
                violations.setdefault(checker_name, []).append(message)

    def sample() -> None:
        for checker in active_checkers:
            record(checker.name, checker.check(deployment))
        if simulator.now < end:
            simulator.call_later(scenario.check_interval, sample, label="sharded-scenario:check")

    simulator.call_later(scenario.check_interval, sample, label="sharded-scenario:check")

    deployment.start_clients()
    simulator.run(until=end)
    deployment.stop_clients()
    simulator.run(until=end + scenario.settle)

    for checker in active_checkers:
        record(checker.name, checker.finalize(deployment))
    deployment.collect_batch_sizes()

    transactions = deployment.transaction_stats()
    expectation_failures: List[str] = []
    if deployment.metrics.completed < scenario.min_completed:
        expectation_failures.append(
            f"only {deployment.metrics.completed} requests completed over the whole "
            f"run (liveness floor {scenario.min_completed})"
        )
    if transactions["committed"] < scenario.min_committed_txns:
        expectation_failures.append(
            f"only {transactions['committed']} cross-shard transactions committed "
            f"(expected >= {scenario.min_committed_txns})"
        )
    if scenario.expect_aborts and transactions["aborted"] < 1:
        expectation_failures.append(
            "the scenario expected at least one aborted cross-shard transaction"
        )

    return ShardedScenarioResult(
        scenario=scenario.name,
        protocol=deployment.protocol,
        shard_modes=tuple(mode.name for mode in scenario.modes),
        duration=scenario.duration,
        completed=deployment.metrics.completed,
        per_shard_completed=tuple(deployment.per_shard_completed()),
        transactions=transactions,
        client_timeouts=deployment.client_pool.total_timeouts,
        events_applied=events_applied,
        invariant_violations=violations,
        expectation_failures=expectation_failures,
    )


def run_sharded_scenario_matrix(
    scenarios: Optional[List[ShardedScenario]] = None, **overrides
) -> List[ShardedScenarioResult]:
    """Run every (or the given) library scenario; returns all results."""
    if scenarios is None:
        scenarios = list(SHARDED_SCENARIOS.values())
    return [run_sharded_scenario(scenario, **overrides) for scenario in scenarios]


# -- the library ------------------------------------------------------------------


SHARD_PRIMARY_CRASH = ShardedScenario(
    name="shard-primary-crash-mid-traffic",
    description="One shard's primary crashes under mixed single/cross-shard load; "
    "that shard must view-change while the others keep serving, and every "
    "cross-shard transaction must stay atomic.",
    modes=(Mode.LION, Mode.LION, Mode.LION),
    events=(OnShard(at=0.15, shard=1, event=Crash(at=0.0, target="primary")),),
    duration=0.9,
    min_committed_txns=3,
)

SHARD_ISOLATED_THEN_HEALS = ShardedScenario(
    name="shard-isolated-then-heals",
    description="A whole shard is partitioned away mid-traffic; transactions "
    "touching it abort on the coordinator timeout (atomically), the rest of "
    "the keyspace keeps serving, and the shard rejoins after the heal.",
    modes=(Mode.LION, Mode.LION),
    events=(IsolateShard(at=0.15, shard=1), HealShards(at=0.45)),
    duration=1.0,
    settle=0.4,
    cross_shard_fraction=0.3,
    txn_timeout=0.12,
    expect_aborts=True,
)

MIXED_MODE_SHARDS = ShardedScenario(
    name="mixed-mode-shards-under-load",
    description="Three shards running Lion, Dog, and Peacock serve one keyspace; "
    "cross-shard transactions span trust domains and must commit atomically.",
    modes=(Mode.LION, Mode.DOG, Mode.PEACOCK),
    cross_shard_fraction=0.25,
    duration=0.8,
    min_committed_txns=5,
)

SHARD_BYZANTINE_BACKUP = ShardedScenario(
    name="shard-byzantine-backup-lies",
    description="A public-cloud replica of one shard forges results under load; "
    "no client may accept a reply its shard's correct replicas did not produce.",
    modes=(Mode.LION, Mode.LION),
    events=(
        OnShard(at=0.12, shard=0, event=Byzantine(at=0.0, target="public-backup", strategy="lie")),
    ),
    duration=0.7,
)

SHARD_CRASH_RECOVER_WITH_MODE_SWITCH = ShardedScenario(
    name="shard-crash-recover-mode-switch",
    description="One shard loses a private backup and recovers it while another "
    "shard switches modes mid-traffic; both local repairs must stay invisible "
    "to cross-shard atomicity.",
    modes=(Mode.LION, Mode.LION),
    events=(
        OnShard(at=0.1, shard=0, event=Crash(at=0.0, target="private:1")),
        OnShard(at=0.2, shard=1, event=ModeSwitch(at=0.0, new_mode="next")),
        OnShard(at=0.35, shard=0, event=Recover(at=0.0, target="private:1")),
    ),
    duration=0.9,
)


#: The sharded scenario library, in presentation order.
SHARDED_SCENARIOS: Dict[str, ShardedScenario] = {
    scenario.name: scenario
    for scenario in (
        SHARD_PRIMARY_CRASH,
        SHARD_ISOLATED_THEN_HEALS,
        MIXED_MODE_SHARDS,
        SHARD_BYZANTINE_BACKUP,
        SHARD_CRASH_RECOVER_WITH_MODE_SWITCH,
    )
}


__all__ = [
    "ShardedScenarioEvent",
    "OnShard",
    "IsolateShard",
    "HealShards",
    "SurgeShardedClients",
    "ShardedInvariantChecker",
    "PerShardInvariants",
    "CrossShardAtomicity",
    "ShardedNoForgedReplies",
    "default_sharded_checkers",
    "ShardedScenario",
    "ShardedScenarioResult",
    "build_sharded_scenario_deployment",
    "run_sharded_scenario",
    "run_sharded_scenario_matrix",
    "SHARDED_SCENARIOS",
]
