"""Declarative, schedulable fault-scenario events.

Every event is a frozen dataclass with an ``at`` time (simulated seconds
from scenario start) and an :meth:`apply` method that mutates a running
:class:`~repro.cluster.deployment.Deployment`.  The scenario engine
schedules events on the simulator clock, so a scenario is a pure function
of its inputs — the same scenario with the same seed produces the same
trace every time.

Targets are *roles*, resolved at fire time (not at scenario-definition
time), because the replica filling a role changes as views change:

* ``"primary"`` — the primary of the lowest correct view right now;
* ``"public-primary"`` — the current primary when it lives in the public
  cloud (the Peacock mode), otherwise the first public replica that is not
  the primary — i.e. the most primary-like replica that is *allowed* to be
  Byzantine under the paper's hybrid fault model;
* ``"public-backup"`` — the first public-cloud replica that is not the
  current primary;
* ``"private:i"`` / ``"public:i"`` — the i-th replica of that cloud;
* anything else — a literal replica id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.deployment import Deployment
from repro.core.modes import Mode
from repro.faults.byzantine import make_byzantine, restore_honest
from repro.faults.crash import crash_replica, current_primary_id, recover_replica

#: Cycle used by ``ModeSwitch("next")``: each switch moves one step.
_MODE_CYCLE = (Mode.LION, Mode.DOG, Mode.PEACOCK)


def resolve_target(deployment: Deployment, target: str) -> str:
    """Resolve a role name (see module docstring) to a replica id."""
    config = deployment.extras["config"]
    if target == "primary":
        return current_primary_id(deployment)
    if target in ("public-primary", "public-backup"):
        primary = current_primary_id(deployment)
        if target == "public-primary" and primary in config.public_replicas:
            return primary
        resolved = next((r for r in config.public_replicas if r != primary), None)
        if resolved is None:
            raise KeyError(
                f"cannot resolve {target!r}: no public replica other than the "
                f"current primary in this deployment"
            )
        return resolved
    for cloud, members in (
        ("private", config.private_replicas),
        ("public", config.public_replicas),
    ):
        prefix = f"{cloud}:"
        if target.startswith(prefix):
            return members[int(target[len(prefix):])]
    if target not in deployment.replicas:
        raise KeyError(f"unknown scenario target {target!r}")
    return target


def _current_mode(deployment: Deployment) -> Mode:
    """The mode the group is operating in (or moving toward).

    Uses the most-progressed correct replica (highest view), so a
    ``ModeSwitch("next")`` that fires while an earlier switch is still
    installing cycles from the mode being installed, not a stale one.
    """
    correct = deployment.correct_replicas()
    if not correct:
        return deployment.extras.get("mode", Mode.LION)
    return max(correct, key=lambda replica: replica.view).mode


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class: one timed action against a running deployment."""

    at: float

    def apply(self, deployment: Deployment) -> None:
        raise NotImplementedError

    @property
    def label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Crash(ScenarioEvent):
    """Fail-stop a replica (role-resolved at fire time)."""

    target: str = "primary"

    def apply(self, deployment: Deployment) -> None:
        crash_replica(deployment, resolve_target(deployment, self.target))

    @property
    def label(self) -> str:
        return f"crash({self.target})"


@dataclass(frozen=True)
class Recover(ScenarioEvent):
    """Bring a crashed replica back online."""

    target: str = "primary"

    def apply(self, deployment: Deployment) -> None:
        recover_replica(deployment, resolve_target(deployment, self.target))

    @property
    def label(self) -> str:
        return f"recover({self.target})"


@dataclass(frozen=True)
class Byzantine(ScenarioEvent):
    """Activate a named Byzantine strategy on a public-cloud replica."""

    target: str = "public-backup"
    strategy: str = "silent"

    def apply(self, deployment: Deployment) -> None:
        make_byzantine(deployment, resolve_target(deployment, self.target), self.strategy)

    @property
    def label(self) -> str:
        return f"byzantine({self.target}, {self.strategy})"


@dataclass(frozen=True)
class RestoreHonest(ScenarioEvent):
    """End Byzantine behaviour: the attack subsides.

    Drops the attack rewiring of ``target`` -- or, with the default
    ``target=None``, of *every* replica in the faulty set, which is robust
    to role-resolved targets pointing at a different replica after the
    view changes the attack provoked.  Restored replicas stay in the
    faulty set for conservative safety accounting (like a recovered
    crash); they merely stop producing fresh evidence, which is what lets
    an adaptive controller de-escalate.
    """

    target: Optional[str] = None

    def apply(self, deployment: Deployment) -> None:
        if self.target is None:
            targets = sorted(deployment.faulty_replicas)
        else:
            targets = [resolve_target(deployment, self.target)]
        for replica_id in targets:
            restore_honest(deployment, replica_id)

    @property
    def label(self) -> str:
        return f"restore-honest({self.target or 'all-faulty'})"


@dataclass(frozen=True)
class Partition(ScenarioEvent):
    """Split the network into groups that can only talk internally.

    Groups are tuples of role names/ids, or the shorthand strings
    ``"private"`` / ``"public"`` for a whole cloud.  Nodes named in no
    group (e.g. clients) keep talking to everyone.
    """

    groups: Tuple[Tuple[str, ...], ...] = (("private",), ("public",))

    def _resolve_group(self, deployment: Deployment, group: Tuple[str, ...]) -> set:
        config = deployment.extras["config"]
        members: set = set()
        for name in group:
            if name == "private":
                members.update(config.private_replicas)
            elif name == "public":
                members.update(config.public_replicas)
            else:
                members.add(resolve_target(deployment, name))
        return members

    def apply(self, deployment: Deployment) -> None:
        resolved = [self._resolve_group(deployment, group) for group in self.groups]
        deployment.network.conditions.partition(*resolved)

    @property
    def label(self) -> str:
        return f"partition({'|'.join('+'.join(g) for g in self.groups)})"


@dataclass(frozen=True)
class HealPartition(ScenarioEvent):
    """Remove every partition."""

    def apply(self, deployment: Deployment) -> None:
        deployment.network.conditions.heal_partition()

    @property
    def label(self) -> str:
        return "heal-partition"


@dataclass(frozen=True)
class LinkDegradation(ScenarioEvent):
    """Add a fixed extra delay to every replica↔replica link of a class.

    ``link_class`` is ``"cross"`` (private↔public, the paper's
    geo-distribution knob), ``"intra"`` (within each cloud), or ``"all"``.
    """

    delay: float = 0.002
    link_class: str = "cross"

    def apply(self, deployment: Deployment) -> None:
        config = deployment.extras["config"]
        conditions = deployment.network.conditions
        private = set(config.private_replicas)
        for src in config.all_replicas:
            for dst in config.all_replicas:
                if src == dst:
                    continue
                crosses = (src in private) != (dst in private)
                if self.link_class == "all" or (
                    crosses if self.link_class == "cross" else not crosses
                ):
                    conditions.set_extra_delay(src, dst, self.delay)

    @property
    def label(self) -> str:
        return f"link-degradation({self.link_class}, +{self.delay}s)"


@dataclass(frozen=True)
class ClearLinkDegradation(ScenarioEvent):
    """Remove every extra per-link delay."""

    def apply(self, deployment: Deployment) -> None:
        deployment.network.conditions.clear_extra_delays()

    @property
    def label(self) -> str:
        return "clear-link-degradation"


@dataclass(frozen=True)
class ModeSwitch(ScenarioEvent):
    """Have a live trusted replica initiate a dynamic mode switch.

    ``new_mode`` is a :class:`Mode` or ``"next"``, which cycles
    Lion → Dog → Peacock → Lion from the mode the deployment is currently
    in — so one scenario definition exercises a different transition in
    each leg of the mode-parametrized matrix.
    """

    new_mode: object = "next"

    def apply(self, deployment: Deployment) -> None:
        config = deployment.extras["config"]
        current = _current_mode(deployment)
        target = self.new_mode
        if target == "next":
            target = _MODE_CYCLE[(_MODE_CYCLE.index(current) + 1) % len(_MODE_CYCLE)]
        initiator = next(
            (
                deployment.replicas[replica_id]
                for replica_id in config.private_replicas
                if not deployment.replicas[replica_id].crashed
            ),
            None,
        )
        if initiator is not None:
            initiator.request_mode_switch(target)

    @property
    def label(self) -> str:
        name = self.new_mode if isinstance(self.new_mode, str) else self.new_mode.name
        return f"mode-switch({name})"


@dataclass(frozen=True)
class ClientSurge(ScenarioEvent):
    """Ramp client load by spawning (and starting) additional clients."""

    count: int = 2
    window: Optional[int] = None

    def apply(self, deployment: Deployment) -> None:
        deployment.add_clients(self.count, window=self.window)

    @property
    def label(self) -> str:
        return f"client-surge(+{self.count})"


__all__ = [
    "ScenarioEvent",
    "Crash",
    "Recover",
    "Byzantine",
    "RestoreHonest",
    "Partition",
    "HealPartition",
    "LinkDegradation",
    "ClearLinkDegradation",
    "ModeSwitch",
    "ClientSurge",
    "resolve_target",
]
