"""Fault scenarios that gate the adaptive mode controller.

Every scenario here runs a deployment with a live
:class:`~repro.adaptive.AdaptiveModeController` attached (via the
builders' ``adaptive=`` wiring) and holds the *controller* to account with
declarative expectations layered on the PR 2 scenario engine:

* :data:`ESCALATE_ON_EQUIVOCATION` -- an injected equivocator must drive
  Lion → Peacock, with zero safety violations along the way;
* :data:`DEESCALATE_AFTER_QUIET_PERIOD` -- once the attack subsides, a full
  quiet period must bring the group back to Lion (the full
  escalate→de-escalate cycle of the acceptance criterion);
* :data:`OSCILLATING_ATTACKER_MUST_NOT_FLAP` -- an attacker toggling on and
  off faster than the quiet period must produce *one* escalation, not a
  mode oscillation (hysteresis + cooldown);
* :data:`CONTROLLER_UNDER_VIEW_CHANGE_STORM` -- successive primary crashes
  are churn, not malice: the controller may off-load to Dog but must never
  read the storm as Byzantine evidence and jump to Peacock;
* :data:`PER_SHARD_DIVERGENT_ENVIRONMENTS` -- in a sharded deployment only
  the attacked shard escalates; the clean shard's controller must not
  move.

All scenarios start in the Lion mode (the cheap steady state the paper de-
escalates to); the standard invariant checkers run throughout, so every
controller decision is made under the same safety scrutiny as any other
fault scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.adaptive import AdaptivePolicy
from repro.core.modes import Mode
from repro.scenarios.engine import (
    Expectation,
    ProgressAfter,
    Scenario,
    ScenarioResult,
    run_scenario,
)
from repro.scenarios.events import Byzantine, Crash, Recover, RestoreHonest
from repro.scenarios.sharded import (
    OnShard,
    ShardedScenario,
    ShardedScenarioResult,
    build_sharded_scenario_deployment,
    run_sharded_scenario,
)

#: Policy used by the library scenarios.  Mirrors the defaults but is named
#: so tests, the perf harness, and the README can reference one object.
LIBRARY_POLICY = AdaptivePolicy()


def _controller_of(deployment):
    controller = deployment.extras.get("adaptive")
    if controller is None:
        raise AssertionError(
            "adaptive scenario ran against a deployment without a controller; "
            "run it through run_adaptive_scenario (or pass adaptive=...)"
        )
    return controller


# -- controller expectations ------------------------------------------------------


@dataclass(frozen=True)
class ControllerEscalated(Expectation):
    """The controller initiated -- and the group completed -- a switch to ``to_mode``."""

    to_mode: Mode = Mode.PEACOCK

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        controller = _controller_of(deployment)
        if any(d.to_mode is self.to_mode and d.applied for d in controller.decisions):
            return []
        return [
            f"controller never completed a switch to {self.to_mode.name} "
            f"(decisions: {controller.decision_rows()})"
        ]


@dataclass(frozen=True)
class FinalModeIs(Expectation):
    """Every correct replica ends the run in ``mode`` (absolute, not cycled)."""

    mode: Mode = Mode.LION

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        wrong = {
            replica.node_id: replica.mode.name
            for replica in deployment.correct_replicas()
            if replica.mode is not self.mode
        }
        if wrong:
            return [f"replicas not in mode {self.mode.name}: {wrong}"]
        return []


@dataclass(frozen=True)
class ModeCycleCompleted(Expectation):
    """The group entered ``through`` and later returned to ``back_to``."""

    through: Mode = Mode.PEACOCK
    back_to: Mode = Mode.LION

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        controller = _controller_of(deployment)
        entered = [to for (_, _, to) in controller.mode_transitions]
        if self.through not in entered:
            return [
                f"group never entered {self.through.name} "
                f"(transitions: {controller.mode_transitions})"
            ]
        index = entered.index(self.through)
        if self.back_to not in entered[index + 1:]:
            return [
                f"group never returned to {self.back_to.name} after "
                f"{self.through.name} (transitions: {controller.mode_transitions})"
            ]
        return []


@dataclass(frozen=True)
class TransitionsAtMost(Expectation):
    """No flapping: at most ``limit`` observed mode transitions."""

    limit: int = 2

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        controller = _controller_of(deployment)
        if len(controller.mode_transitions) <= self.limit:
            return []
        return [
            f"mode flapped: {len(controller.mode_transitions)} transitions "
            f"(limit {self.limit}): {controller.mode_transitions}"
        ]


@dataclass(frozen=True)
class NeverEntered(Expectation):
    """The group never transitioned into ``mode``."""

    mode: Mode = Mode.PEACOCK

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        controller = _controller_of(deployment)
        entered = [to for (_, _, to) in controller.mode_transitions]
        if self.mode in entered or any(
            d.to_mode is self.mode for d in controller.decisions
        ):
            return [
                f"controller moved toward {self.mode.name} "
                f"(decisions: {controller.decision_rows()})"
            ]
        return []


# -- single-cluster scenarios -----------------------------------------------------

ESCALATE_ON_EQUIVOCATION = Scenario(
    name="adaptive-escalate-on-equivocation",
    description="An equivocating public replica attacks a quiet Lion group; the "
    "controller must read the conflicting-vote evidence and escalate to Peacock.",
    events=(Byzantine(at=0.1, target="public-backup", strategy="equivocate"),),
    expectations=(
        ControllerEscalated(to_mode=Mode.PEACOCK),
        FinalModeIs(mode=Mode.PEACOCK),
        ProgressAfter(at=0.45),
    ),
    duration=0.7,
    # Settle must stay below the policy's quiet period: once the clients
    # stop, evidence dries up by construction, and a longer settle would
    # let the controller (correctly) de-escalate before the final check.
    settle=0.2,
    num_clients=3,
)

DEESCALATE_AFTER_QUIET_PERIOD = Scenario(
    name="adaptive-de-escalate-after-quiet-period",
    description="The attack subsides mid-run; after a full quiet period the "
    "controller must bring the group back to Lion -- the complete "
    "escalate→de-escalate cycle.",
    events=(
        Byzantine(at=0.1, target="public-backup", strategy="equivocate"),
        RestoreHonest(at=0.35),
    ),
    expectations=(
        ModeCycleCompleted(through=Mode.PEACOCK, back_to=Mode.LION),
        FinalModeIs(mode=Mode.LION),
        ProgressAfter(at=0.8),
    ),
    duration=1.1,
    settle=0.3,
    num_clients=3,
)

OSCILLATING_ATTACKER_MUST_NOT_FLAP = Scenario(
    name="adaptive-oscillating-attacker-must-not-flap",
    description="An attacker toggles on and off faster than the quiet period; "
    "hysteresis and cooldown must hold the group in Peacock instead of "
    "oscillating with the attacker.",
    # public-3 is the last replica the rotating Peacock primary role reaches,
    # so the attacker stays an ordinary proxy whose vote equivocation is
    # continuously wire-visible; an attacker that becomes the Peacock
    # primary is deposed by the first view change and goes silent, which
    # would end the oscillation the scenario is about.
    events=(
        Byzantine(at=0.1, target="public-3", strategy="equivocate"),
        RestoreHonest(at=0.25),
        Byzantine(at=0.4, target="public-3", strategy="equivocate"),
        RestoreHonest(at=0.55),
        Byzantine(at=0.7, target="public-3", strategy="equivocate"),
        RestoreHonest(at=0.85),
    ),
    expectations=(
        ControllerEscalated(to_mode=Mode.PEACOCK),
        TransitionsAtMost(limit=2),
        ProgressAfter(at=0.6),
    ),
    duration=1.0,
    settle=0.2,
    num_clients=3,
)

CONTROLLER_UNDER_VIEW_CHANGE_STORM = Scenario(
    name="adaptive-controller-under-view-change-storm",
    description="Two successive primaries crash: pure churn.  The controller may "
    "off-load agreement to Dog but must never mistake the storm for Byzantine "
    "evidence and jump to Peacock.",
    crash_tolerance=2,
    byzantine_tolerance=2,
    events=(
        Crash(at=0.1, target="primary"),
        Crash(at=0.3, target="primary"),
        Recover(at=0.55, target="private:0"),
        Recover(at=0.6, target="private:1"),
    ),
    expectations=(
        NeverEntered(mode=Mode.PEACOCK),
        ProgressAfter(at=0.75),
    ),
    duration=1.0,
    settle=0.3,
    num_clients=3,
)


#: Single-cluster adaptive scenarios, in presentation order.
ADAPTIVE_SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        ESCALATE_ON_EQUIVOCATION,
        DEESCALATE_AFTER_QUIET_PERIOD,
        OSCILLATING_ATTACKER_MUST_NOT_FLAP,
        CONTROLLER_UNDER_VIEW_CHANGE_STORM,
    )
}


def run_adaptive_scenario(
    scenario: Scenario,
    mode: Mode = Mode.LION,
    policy: Optional[AdaptivePolicy] = None,
    **overrides,
) -> ScenarioResult:
    """Run one adaptive scenario with a controller attached.

    ``mode`` defaults to Lion -- the steady state the paper's deployment
    de-escalates to, and where every library scenario starts its cycle.
    """
    overrides.setdefault("adaptive", policy if policy is not None else LIBRARY_POLICY)
    return run_scenario(scenario, mode, **overrides)


# -- the sharded scenario ----------------------------------------------------------

PER_SHARD_DIVERGENT_ENVIRONMENTS = ShardedScenario(
    name="adaptive-per-shard-divergent-environments",
    description="Two Lion shards, one attacked by an equivocator: the attacked "
    "shard's controller must escalate it to Peacock while the clean shard's "
    "controller holds it in Lion.",
    modes=(Mode.LION, Mode.LION),
    events=(
        OnShard(
            at=0.1,
            shard=0,
            event=Byzantine(at=0.0, target="public-backup", strategy="equivocate"),
        ),
    ),
    duration=0.8,
    # Below the quiet period: evidence stops with the clients, and a longer
    # settle would let the attacked shard de-escalate before the check.
    settle=0.2,
)


def run_per_shard_divergence(
    policy: Optional[AdaptivePolicy] = None, **overrides
) -> ShardedScenarioResult:
    """Run the divergent-environments scenario and judge both controllers.

    The sharded engine's declarative expectations cover liveness and
    atomicity; the adaptive verdicts (attacked shard escalated, clean
    shard untouched) are appended to the result's expectation failures
    here, where the deployment is still in hand.
    """
    deployment = build_sharded_scenario_deployment(
        PER_SHARD_DIVERGENT_ENVIRONMENTS,
        adaptive=policy if policy is not None else LIBRARY_POLICY,
        **overrides,
    )
    result = run_sharded_scenario(PER_SHARD_DIVERGENT_ENVIRONMENTS, deployment=deployment)
    attacked, clean = deployment.adaptive_controllers()
    if attacked.current_mode() is not Mode.PEACOCK:
        result.expectation_failures.append(
            f"attacked shard never escalated to PEACOCK (mode: "
            f"{attacked.current_mode().name}, decisions: {attacked.decision_rows()})"
        )
    if clean.current_mode() is not Mode.LION:
        result.expectation_failures.append(
            f"clean shard left LION (mode: {clean.current_mode().name}, "
            f"decisions: {clean.decision_rows()})"
        )
    if clean.mode_transitions:
        result.expectation_failures.append(
            f"clean shard switched modes without local evidence: "
            f"{clean.mode_transitions}"
        )
    return result


__all__ = [
    "LIBRARY_POLICY",
    "ControllerEscalated",
    "FinalModeIs",
    "ModeCycleCompleted",
    "TransitionsAtMost",
    "NeverEntered",
    "ESCALATE_ON_EQUIVOCATION",
    "DEESCALATE_AFTER_QUIET_PERIOD",
    "OSCILLATING_ATTACKER_MUST_NOT_FLAP",
    "CONTROLLER_UNDER_VIEW_CHANGE_STORM",
    "PER_SHARD_DIVERGENT_ENVIRONMENTS",
    "ADAPTIVE_SCENARIOS",
    "run_adaptive_scenario",
    "run_per_shard_divergence",
]
