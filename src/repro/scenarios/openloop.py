"""Open-loop surge scenarios: millions of modeled users against one cluster.

A closed-loop scenario (:mod:`repro.scenarios.engine`) can only offer as
much load as its clients' windows allow, so overload never shows up as
latency — it shows up as a slower client loop.  The scenarios here use the
open-loop machinery instead: a :class:`~repro.workload.openloop.ClientPopulation`
models millions of virtual users as an arrival process, multiplexed over a
small pool of real connections, and latency is stamped from *arrival*
time, so queueing anywhere in the pipeline counts against the SLO.

The pair of library scenarios tells the admission-control story end to
end on the same surge:

* ``surge-admission-on`` — the primary sheds load past its watermark with
  signed ``Busy`` rejects, connections give up after a few retries, and
  the served-latency SLO **holds** through the surge;
* ``surge-admission-off`` — the same surge with no admission control
  builds a deep primary queue, served latency blows through the bound,
  and the :class:`~repro.workload.slo.SlaViolation` checker **fires**.

Both runs shed or drop the excess somewhere — the difference is whether
the excess also poisons the latency of the requests that *are* served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.builders import build_seemore
from repro.cluster.deployment import Deployment
from repro.cluster.runner import OpenLoopRunResult, run_open_loop
from repro.core.admission import AdmissionPolicy
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.workload.generator import Workload
from repro.workload.openloop import BurstyArrivals, ClientPopulation, OpenLoopDriver
from repro.workload.slo import SlaViolation, SloSpec


@dataclass(frozen=True)
class OpenLoopScenario:
    """One named open-loop surge scenario — pure data, like :class:`Scenario`.

    The arrival process is bursty on-off: ``base_rate`` requests/s with
    surges to ``surge_rate`` for ``on_duration`` out of every
    ``on_duration + off_duration`` seconds, drawn from ``num_users``
    modeled users.  ``connections`` real connections with ``window``
    pipelined requests each bound the outstanding work (and the memory) at
    O(connections x window + backlog), never O(users).

    ``max_backlog`` is deliberately small: the point of the pair of
    library scenarios is primary-side queueing, so the driver queue is
    kept too short to dominate the latency story.
    """

    name: str
    description: str
    num_users: int = 1_000_000
    base_rate: float = 400.0
    surge_rate: float = 8_000.0
    on_duration: float = 0.5
    off_duration: float = 0.5
    connections: int = 32
    window: int = 16
    max_backlog: int = 32
    max_busy_retries: Optional[int] = 2
    admission: Optional[AdmissionPolicy] = None
    slo: SloSpec = field(default_factory=lambda: SloSpec(percentile=0.99, bound=0.1))
    duration: float = 2.0
    warmup: float = 0.5
    crash_tolerance: int = 1
    byzantine_tolerance: int = 1
    batch_size: int = 1
    batch_timeout: float = 0.0
    pipeline_depth: int = 1
    client_timeout: float = 30.0
    workload: str = "0/0"
    seed: int = 7


@dataclass
class OpenLoopScenarioResult:
    """One open-loop scenario run: the run result plus the checker verdict."""

    scenario: str
    mode: str
    result: OpenLoopRunResult
    checker_violations: List[str] = field(default_factory=list)

    @property
    def slo_held(self) -> bool:
        return self.result.slo is not None and self.result.slo.holds

    @property
    def checker_fired(self) -> bool:
        return bool(self.checker_violations)

    def as_row(self) -> Dict[str, object]:
        row = dict(self.result.report_row())
        row["scenario"] = self.scenario
        row["mode"] = self.mode
        row["checker_fired"] = self.checker_fired
        return row


def build_open_loop_deployment(
    scenario: OpenLoopScenario, mode: Mode = Mode.LION
) -> Tuple[Deployment, OpenLoopDriver]:
    """Stand up the deployment and driver one open-loop scenario runs against.

    The deployment is built with ``num_clients=0``; the connection pool
    comes from :meth:`~repro.workload.client_pool.ClientPool.spawn_open_loop`
    so the modeled population, not a closed loop, decides when requests
    arrive.  ``client_timeout`` is set far above the SLO bound so the
    plain retransmit timer stays out of the overload story — backpressure
    flows only through signed ``Busy`` rejects.
    """
    deployment = build_seemore(
        crash_tolerance=scenario.crash_tolerance,
        byzantine_tolerance=scenario.byzantine_tolerance,
        mode=mode,
        num_clients=0,
        seed=scenario.seed,
        client_timeout=scenario.client_timeout,
        batch_policy=BatchPolicy(
            max_batch=scenario.batch_size,
            linger=scenario.batch_timeout,
            pipeline_depth=scenario.pipeline_depth,
        ),
        admission=scenario.admission,
        workload=Workload.build(scenario.workload),
    )
    arrivals = BurstyArrivals(
        base_rate=scenario.base_rate,
        burst_rate=scenario.surge_rate,
        on_duration=scenario.on_duration,
        off_duration=scenario.off_duration,
        seed=scenario.seed,
    )
    population = ClientPopulation(
        num_users=scenario.num_users, arrivals=arrivals, seed=scenario.seed
    )
    driver = deployment.client_pool.spawn_open_loop(
        population,
        connections=scenario.connections,
        max_backlog=scenario.max_backlog,
        max_busy_retries=scenario.max_busy_retries,
        window=scenario.window,
    )
    return deployment, driver


def run_open_loop_scenario(
    scenario: OpenLoopScenario, mode: Mode = Mode.LION
) -> OpenLoopScenarioResult:
    """Run one open-loop scenario with a live :class:`SlaViolation` checker.

    The checker samples the latency timeline continuously on the simulator
    clock (every SLO bin), exactly as the scenario engine samples its
    invariant checkers, so a mid-run violation is caught as it happens —
    not just in the post-run evaluation.
    """
    deployment, driver = build_open_loop_deployment(scenario, mode)
    checker = SlaViolation(scenario.slo)
    checker.attach(deployment)
    simulator = deployment.simulator

    violations: List[str] = []
    seen: set = set()

    def record(messages: List[str]) -> None:
        for message in messages:
            if message not in seen:
                seen.add(message)
                violations.append(message)

    end = simulator.now + scenario.warmup + scenario.duration

    def sample() -> None:
        record(checker.check(deployment))
        if simulator.now < end:
            simulator.call_later(scenario.slo.bin_width, sample, label="slo:check")

    simulator.call_later(scenario.slo.bin_width, sample, label="slo:check")

    result = run_open_loop(
        deployment,
        driver,
        duration=scenario.duration,
        warmup=scenario.warmup,
        slo=scenario.slo,
    )
    record(checker.finalize(deployment))
    return OpenLoopScenarioResult(
        scenario=scenario.name,
        mode=mode.name.lower(),
        result=result,
        checker_violations=violations,
    )


# -- the library ------------------------------------------------------------------

_SURGE_SLO = SloSpec(percentile=0.99, bound=0.1, max_violation_fraction=0.0)

SURGE_ADMISSION_ON = OpenLoopScenario(
    name="surge-admission-on",
    description=(
        "1M modeled users surging ~5x over capacity; the primary sheds past "
        "its watermark with signed Busy rejects and the p99 SLO holds"
    ),
    admission=AdmissionPolicy(max_outstanding=32),
    slo=_SURGE_SLO,
)

SURGE_ADMISSION_OFF = OpenLoopScenario(
    name="surge-admission-off",
    description=(
        "the identical surge with admission control off; the primary queue "
        "bloats, served p99 blows the bound, and the SLA checker fires"
    ),
    admission=None,
    # Without Busy rejects the retry budget is moot; retry-forever keeps the
    # connections honest about what an uncontrolled client does.
    max_busy_retries=None,
    slo=_SURGE_SLO,
)

OPEN_LOOP_SCENARIOS: Dict[str, OpenLoopScenario] = {
    scenario.name: scenario
    for scenario in (SURGE_ADMISSION_ON, SURGE_ADMISSION_OFF)
}


__all__ = [
    "OpenLoopScenario",
    "OpenLoopScenarioResult",
    "build_open_loop_deployment",
    "run_open_loop_scenario",
    "OPEN_LOOP_SCENARIOS",
    "SURGE_ADMISSION_ON",
    "SURGE_ADMISSION_OFF",
]
