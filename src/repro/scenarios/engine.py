"""The scenario engine: declarative scenarios, run deterministically.

A :class:`Scenario` is pure data: deployment knobs, a tuple of timed
:mod:`events <repro.scenarios.events>`, and a tuple of declarative
:class:`expectations <Expectation>`.  :func:`run_scenario` stands up a
SeeMoRe deployment in a given mode, schedules the events on the simulator
clock, samples every invariant checker periodically while the run
progresses, lets the network settle after the clients stop, and returns a
:class:`ScenarioResult` that knows whether the run upheld every invariant
and expectation.

Because the simulator is deterministic, a scenario is reproducible from
``(scenario, mode)`` alone — a failing scenario in CI replays identically
on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.builders import build_seemore
from repro.cluster.deployment import Deployment
from repro.core.batching import BatchPolicy
from repro.core.modes import Mode
from repro.scenarios.events import _MODE_CYCLE, ScenarioEvent, resolve_target
from repro.scenarios.invariants import InvariantChecker, default_checkers
from repro.workload.generator import Workload

# -- expectations -----------------------------------------------------------------


class Expectation:
    """A declarative post-condition of one scenario run.

    ``probe_times`` lets an expectation capture mid-run state: the engine
    records the completion count at each requested time and hands the
    probes back to :meth:`evaluate`.
    """

    def probe_times(self) -> List[float]:
        return []

    def evaluate(
        self, deployment: Deployment, initial_mode: Mode, probes: Dict[float, int]
    ) -> List[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class ProgressAfter(Expectation):
    """At least ``min_completed`` requests complete after time ``at``.

    This is the liveness half of every fault scenario: whatever the fault
    did, the system must be making progress again by ``at``.
    """

    at: float
    min_completed: int = 10

    def probe_times(self) -> List[float]:
        return [self.at]

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        progressed = deployment.metrics.completed - probes[self.at]
        if progressed < self.min_completed:
            return [
                f"only {progressed} requests completed after t={self.at} "
                f"(expected >= {self.min_completed})"
            ]
        return []


@dataclass(frozen=True)
class ViewAdvanced(Expectation):
    """Some correct replica reached at least ``min_view`` (a view change ran)."""

    min_view: int = 1

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        views = [replica.view for replica in deployment.correct_replicas()]
        if not views or max(views) < self.min_view:
            return [f"no correct replica advanced to view {self.min_view} (views: {views})"]
        return []


@dataclass(frozen=True)
class ModeIs(Expectation):
    """Every correct replica ends ``steps`` positions along the mode cycle.

    ``steps=1`` from Lion means Dog, and so on — phrased relative to the
    initial mode so one scenario definition works in every leg of the
    mode-parametrized matrix.
    """

    steps: int = 1

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        index = (_MODE_CYCLE.index(initial_mode) + self.steps) % len(_MODE_CYCLE)
        expected = _MODE_CYCLE[index]
        wrong = {
            replica.node_id: replica.mode.name
            for replica in deployment.correct_replicas()
            if replica.mode is not expected
        }
        if wrong:
            return [f"replicas not in mode {expected.name}: {wrong}"]
        return []


@dataclass(frozen=True)
class StateTransferred(Expectation):
    """The target replica completed at least one state transfer."""

    target: str

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        replica = deployment.replica(resolve_target(deployment, self.target))
        if replica.state_transfers_completed < 1:
            return [f"{replica.node_id} never completed a state transfer"]
        return []


@dataclass(frozen=True)
class CaughtUp(Expectation):
    """The target replica's execution frontier is within ``slack`` of the max."""

    target: str
    slack: int = 64

    def evaluate(self, deployment, initial_mode, probes) -> List[str]:
        replica = deployment.replica(resolve_target(deployment, self.target))
        frontier = max(
            (peer.last_executed for peer in deployment.correct_replicas()), default=0
        )
        if replica.last_executed < frontier - self.slack:
            return [
                f"{replica.node_id} executed only {replica.last_executed} of "
                f"{frontier} (allowed slack {self.slack})"
            ]
        return []


# -- the scenario itself ----------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One named, declarative fault scenario.

    Attributes:
        name: registry key (kebab-case).
        description: one line for reports.
        events: timed events, applied on the simulator clock.
        expectations: post-conditions checked after the run settles.
        duration: simulated seconds of client load.
        settle: extra simulated seconds after the clients stop, so
            in-flight commits and state transfers can drain before the
            final invariant checks.
        num_clients: closed-loop clients at start (events may add more).
        client_window: requests each client pipelines (None = workload default).
        batch_policy: primary-side batching (None = unbatched).
        crash_tolerance / byzantine_tolerance: the deployment's ``c`` / ``m``.
        checkpoint_period: slots per checkpoint.
        workload: micro-benchmark name (``"0/0"``...).
        seed: drives all randomness (latency jitter).
        min_completed: whole-run liveness floor.
        check_interval: how often the invariant checkers sample.
    """

    name: str
    description: str
    events: Tuple[ScenarioEvent, ...] = ()
    expectations: Tuple[Expectation, ...] = ()
    duration: float = 1.0
    settle: float = 0.2
    num_clients: int = 2
    client_window: Optional[int] = None
    batch_policy: Optional[BatchPolicy] = None
    crash_tolerance: int = 1
    byzantine_tolerance: int = 1
    checkpoint_period: int = 128
    workload: str = "0/0"
    seed: int = 7
    client_timeout: float = 0.1
    min_completed: int = 10
    check_interval: float = 0.05


@dataclass
class ScenarioResult:
    """Everything one scenario run produced, with a pass/fail verdict."""

    scenario: str
    mode: str
    protocol: str
    duration: float
    completed: int
    client_timeouts: int
    max_view: int
    final_modes: Tuple[str, ...]
    state_transfers: int
    events_applied: List[Tuple[float, str]] = field(default_factory=list)
    invariant_violations: Dict[str, List[str]] = field(default_factory=dict)
    expectation_failures: List[str] = field(default_factory=list)
    # Engine telemetry for the perf harness — scalars, not the deployment
    # itself, so results can be aggregated without pinning every replica
    # graph and event heap in memory.
    events_processed: int = 0
    simulated_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.invariant_violations and not self.expectation_failures

    def failures(self) -> List[str]:
        lines = []
        for checker, violations in sorted(self.invariant_violations.items()):
            lines.extend(f"[{checker}] {violation}" for violation in violations)
        lines.extend(f"[expectation] {failure}" for failure in self.expectation_failures)
        return lines

    def assert_ok(self) -> None:
        if not self.ok:
            details = "\n  ".join(self.failures())
            raise AssertionError(
                f"scenario {self.scenario!r} in mode {self.mode}: "
                f"{len(self.failures())} failure(s):\n  {details}"
            )

    def as_row(self) -> Dict[str, object]:
        """Flat dict for :func:`repro.analysis.report.format_scenario_results`."""
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "completed": self.completed,
            "timeouts": self.client_timeouts,
            "max_view": self.max_view,
            "state_transfers": self.state_transfers,
            "failures": len(self.failures()),
            "verdict": "ok" if self.ok else "FAIL",
        }


# -- running ----------------------------------------------------------------------


def build_scenario_deployment(scenario: Scenario, mode: Mode, **overrides) -> Deployment:
    """Stand up the deployment one scenario runs against."""
    build_kwargs = dict(
        crash_tolerance=scenario.crash_tolerance,
        byzantine_tolerance=scenario.byzantine_tolerance,
        mode=mode,
        workload=Workload.build(scenario.workload),
        num_clients=scenario.num_clients,
        seed=scenario.seed,
        client_timeout=scenario.client_timeout,
        checkpoint_period=scenario.checkpoint_period,
        batch_policy=scenario.batch_policy,
        client_window=scenario.client_window,
    )
    build_kwargs.update(overrides)
    return build_seemore(**build_kwargs)


def run_scenario(
    scenario: Scenario,
    mode: Mode,
    checkers: Optional[Sequence[InvariantChecker]] = None,
    **overrides,
) -> ScenarioResult:
    """Run one scenario in one mode and return its result (no assertion).

    Extra keyword arguments override the deployment builder's knobs, which
    lets tests shrink or grow a library scenario without redefining it.
    """
    deployment = build_scenario_deployment(scenario, mode, **overrides)
    active_checkers = list(checkers) if checkers is not None else default_checkers()
    for checker in active_checkers:
        checker.attach(deployment)

    simulator = deployment.simulator
    start = simulator.now
    end = start + scenario.duration

    events_applied: List[Tuple[float, str]] = []
    for event in scenario.events:
        if event.at > scenario.duration:
            raise ValueError(
                f"scenario {scenario.name!r}: event {event.label} at t={event.at} "
                f"never fires (duration is {scenario.duration})"
            )

        def fire(event: ScenarioEvent = event) -> None:
            events_applied.append((round(simulator.now - start, 6), event.label))
            event.apply(deployment)

        simulator.call_at(start + event.at, fire, label=f"scenario:{event.label}")

    # Completion-count probes for expectations like ProgressAfter.
    probes: Dict[float, int] = {}
    for expectation in scenario.expectations:
        for at in expectation.probe_times():
            if at >= scenario.duration + scenario.settle:
                raise ValueError(
                    f"scenario {scenario.name!r}: expectation probe at t={at} is "
                    f"never captured (run ends at {scenario.duration + scenario.settle})"
                )
            if at not in probes:
                def capture(at: float = at) -> None:
                    probes[at] = deployment.metrics.completed

                probes[at] = 0
                simulator.call_at(start + at, capture, label="scenario:probe")

    # Periodic invariant sampling (deduplicated; checkers may accumulate).
    violations: Dict[str, List[str]] = {}
    seen: set = set()

    def record(checker_name: str, messages: List[str]) -> None:
        for message in messages:
            if (checker_name, message) not in seen:
                seen.add((checker_name, message))
                violations.setdefault(checker_name, []).append(message)

    def sample() -> None:
        for checker in active_checkers:
            record(checker.name, checker.check(deployment))
        if simulator.now < end:
            simulator.call_later(scenario.check_interval, sample, label="scenario:check")

    simulator.call_later(scenario.check_interval, sample, label="scenario:check")

    deployment.start_clients()
    simulator.run(until=end)
    deployment.stop_clients()
    simulator.run(until=end + scenario.settle)

    for checker in active_checkers:
        record(checker.name, checker.finalize(deployment))
    deployment.collect_batch_sizes()

    initial_mode = mode
    expectation_failures: List[str] = []
    if deployment.metrics.completed < scenario.min_completed:
        expectation_failures.append(
            f"only {deployment.metrics.completed} requests completed over the whole "
            f"run (liveness floor {scenario.min_completed})"
        )
    for expectation in scenario.expectations:
        expectation_failures.extend(expectation.evaluate(deployment, initial_mode, probes))

    correct = deployment.correct_replicas()
    return ScenarioResult(
        scenario=scenario.name,
        mode=mode.name.lower(),
        protocol=deployment.protocol,
        duration=scenario.duration,
        completed=deployment.metrics.completed,
        client_timeouts=deployment.client_pool.total_timeouts,
        max_view=max((replica.view for replica in correct), default=0),
        final_modes=tuple(sorted({replica.mode.name for replica in correct})),
        # Telemetry over *all* replicas: a crashed-then-recovered replica
        # stays in the conservative faulty set, but its state transfer is
        # exactly what the report should show.
        state_transfers=sum(
            replica.state_transfers_completed for replica in deployment.replicas.values()
        ),
        events_applied=events_applied,
        invariant_violations=violations,
        expectation_failures=expectation_failures,
        events_processed=simulator.events_processed,
        simulated_seconds=simulator.now,
    )


def run_scenario_matrix(
    scenarios: Sequence[Scenario],
    modes: Sequence[Mode] = (Mode.LION, Mode.DOG, Mode.PEACOCK),
    checker_factory: Optional[Callable[[], Sequence[InvariantChecker]]] = None,
    **overrides,
) -> List[ScenarioResult]:
    """Run every scenario in every mode; returns all results (no assertion).

    Checkers are stateful and single-run, so custom ones are supplied as a
    ``checker_factory`` called once per leg; passing ``checkers=`` here
    would silently share one instance set across legs (cross-contaminating
    their incremental state) and is rejected.
    """
    if "checkers" in overrides:
        raise TypeError(
            "run_scenario_matrix() does not accept 'checkers': checker instances "
            "are stateful and single-run; pass checker_factory=... instead"
        )
    return [
        run_scenario(
            scenario,
            mode,
            checkers=checker_factory() if checker_factory is not None else None,
            **overrides,
        )
        for scenario in scenarios
        for mode in modes
    ]


__all__ = [
    "Expectation",
    "ProgressAfter",
    "ViewAdvanced",
    "ModeIs",
    "StateTransferred",
    "CaughtUp",
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_matrix",
    "build_scenario_deployment",
]
