"""The named scenario library.

Each entry is one declarative :class:`~repro.scenarios.engine.Scenario`
meant to run across all three modes via
:func:`~repro.scenarios.engine.run_scenario`.  The names are stable — CI,
the README, and the regression tests refer to them — so treat renames as
breaking changes.

To add a scenario: compose events and expectations, pick a duration that
comfortably covers the last expectation's probe time, and register it in
:data:`SCENARIOS` (order is presentation order in reports).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.batching import BatchPolicy
from repro.scenarios.engine import (
    CaughtUp,
    ModeIs,
    ProgressAfter,
    Scenario,
    StateTransferred,
    ViewAdvanced,
)
from repro.scenarios.events import (
    Byzantine,
    ClearLinkDegradation,
    ClientSurge,
    Crash,
    HealPartition,
    LinkDegradation,
    ModeSwitch,
    Partition,
    Recover,
)

_BATCHING = BatchPolicy(max_batch=8, linger=0.002)


PRIMARY_CRASH_MID_BATCH = Scenario(
    name="primary-crash-mid-batch",
    description="Primary crashes while batches are in flight; the new view must "
    "re-propose every uncommitted batch exactly once.",
    batch_policy=_BATCHING,
    client_window=3,
    events=(Crash(at=0.15, target="primary"),),
    expectations=(ProgressAfter(at=0.4), ViewAdvanced(min_view=1)),
    duration=0.7,
)

EQUIVOCATING_PUBLIC_PRIMARY = Scenario(
    name="equivocating-public-primary",
    description="The most primary-like public replica equivocates on batched "
    "proposals; correct replicas must refuse the conflicting assignment.",
    batch_policy=BatchPolicy(max_batch=4, linger=0.001),
    client_window=2,
    events=(Byzantine(at=0.12, target="public-primary", strategy="equivocate"),),
    expectations=(ProgressAfter(at=0.5),),
    duration=0.75,
)

PARTITION_DURING_MODE_SWITCH = Scenario(
    name="partition-during-mode-switch",
    description="The clouds partition moments after a mode switch begins; the "
    "switch must complete once the partition heals.",
    events=(
        ModeSwitch(at=0.12, new_mode="next"),
        Partition(at=0.15, groups=(("private",), ("public",))),
        HealPartition(at=0.3),
    ),
    expectations=(ProgressAfter(at=0.5), ModeIs(steps=1)),
    duration=0.9,
)

CASCADING_VIEW_CHANGES = Scenario(
    name="cascading-view-changes",
    description="Two successive primaries crash; views must cascade past both "
    "without forking the committed prefix.",
    crash_tolerance=2,
    byzantine_tolerance=2,
    events=(Crash(at=0.1, target="primary"), Crash(at=0.35, target="primary")),
    expectations=(ProgressAfter(at=0.55), ViewAdvanced(min_view=2)),
    duration=0.9,
)

RECOVER_VIA_STATE_TRANSFER = Scenario(
    name="recover-via-state-transfer",
    description="A replica sleeps through checkpoints and must catch up via "
    "state transfer after recovering.",
    checkpoint_period=32,
    num_clients=2,
    client_window=2,
    events=(Crash(at=0.1, target="public:1"), Recover(at=0.35, target="public:1")),
    expectations=(
        ProgressAfter(at=0.45),
        StateTransferred(target="public:1"),
        CaughtUp(target="public:1", slack=64),
    ),
    duration=0.8,
    settle=0.25,
)

SILENT_BYZANTINE_PROXY = Scenario(
    name="silent-byzantine-proxy",
    description="A public replica goes Byzantine-silent; quorums must absorb it.",
    events=(Byzantine(at=0.12, target="public-backup", strategy="silent"),),
    expectations=(ProgressAfter(at=0.3),),
    duration=0.6,
)

LYING_REPLICA_UNDER_LOAD = Scenario(
    name="lying-replica-under-load",
    description="A public replica forges results while client load ramps; no "
    "correct client may accept a forged reply.",
    events=(
        Byzantine(at=0.1, target="public-backup", strategy="lie"),
        ClientSurge(at=0.2, count=1),
    ),
    expectations=(ProgressAfter(at=0.35),),
    duration=0.6,
)

CORRUPT_SIGNATURE_STORM = Scenario(
    name="corrupt-signature-storm",
    description="A public replica's signatures all turn invalid; every correct "
    "receiver must discard its messages.",
    events=(Byzantine(at=0.12, target="public-backup", strategy="corrupt"),),
    expectations=(ProgressAfter(at=0.3),),
    duration=0.6,
)

CRASH_RECOVER_BACKUP = Scenario(
    name="crash-recover-backup",
    description="A private backup crashes and later recovers; it must rejoin "
    "without disturbing the group.",
    events=(Crash(at=0.1, target="private:1"), Recover(at=0.3, target="private:1")),
    expectations=(ProgressAfter(at=0.25),),
    duration=0.65,
)

CROSS_CLOUD_SLOWDOWN = Scenario(
    name="cross-cloud-slowdown",
    description="Cross-cloud links degrade by 2 ms mid-run and later heal — the "
    "geo-distribution stress of the paper's ablations.",
    events=(
        LinkDegradation(at=0.15, delay=0.002, link_class="cross"),
        ClearLinkDegradation(at=0.35),
    ),
    expectations=(ProgressAfter(at=0.4),),
    duration=0.7,
)

CLIENT_SURGE = Scenario(
    name="client-surge",
    description="Client load triples mid-run; the batching primary must absorb "
    "the surge without violating safety.",
    batch_policy=_BATCHING,
    client_window=2,
    events=(ClientSurge(at=0.2, count=3),),
    expectations=(ProgressAfter(at=0.3, min_completed=30),),
    duration=0.6,
)

MODE_SWITCH_UNDER_LOAD = Scenario(
    name="mode-switch-under-load",
    description="Two dynamic mode switches under continuous load; every request "
    "buffered across a switch must survive, exactly once.",
    events=(ModeSwitch(at=0.15, new_mode="next"), ModeSwitch(at=0.4, new_mode="next")),
    expectations=(ProgressAfter(at=0.55), ModeIs(steps=2)),
    duration=0.9,
)


#: The library, in presentation order.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        PRIMARY_CRASH_MID_BATCH,
        EQUIVOCATING_PUBLIC_PRIMARY,
        PARTITION_DURING_MODE_SWITCH,
        CASCADING_VIEW_CHANGES,
        RECOVER_VIA_STATE_TRANSFER,
        SILENT_BYZANTINE_PROXY,
        LYING_REPLICA_UNDER_LOAD,
        CORRUPT_SIGNATURE_STORM,
        CRASH_RECOVER_BACKUP,
        CROSS_CLOUD_SLOWDOWN,
        CLIENT_SURGE,
        MODE_SWITCH_UNDER_LOAD,
    )
}


def scenario_by_name(name: str) -> Scenario:
    """Look up a named scenario; raises with the valid names on a typo."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose one of {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> List[str]:
    return list(SCENARIOS)


__all__ = ["SCENARIOS", "scenario_by_name", "scenario_names"]
