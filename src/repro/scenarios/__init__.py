"""Deterministic fault-scenario engine (the standing regression net).

SeeMoRe's whole claim is behaviour *under faults*: crash faults in the
trusted private cloud, Byzantine faults in the public cloud, and dynamic
mode switches as the environment changes.  This package turns those
conditions into first-class, declarative scenarios:

* :mod:`~repro.scenarios.events` — timed events scheduled on the simulator
  clock: crash/recover a replica, activate a named Byzantine strategy,
  partition/heal the network, degrade per-link latency, trigger a mode
  switch, ramp client load;
* :mod:`~repro.scenarios.invariants` — checkers sampled continuously while
  a scenario runs: committed prefixes never fork, no correct client accepts
  a forged reply, exactly-once execution per request id, checkpoint digests
  agree;
* :mod:`~repro.scenarios.engine` — the runner tying both to a
  :class:`~repro.cluster.deployment.Deployment`, plus declarative
  post-run expectations (progress resumed, view advanced, mode installed,
  replica caught up);
* :mod:`~repro.scenarios.library` — the named scenarios every protocol
  change must keep passing, across all three modes.

Quick start::

    from repro.core import Mode
    from repro.scenarios import SCENARIOS, run_scenario

    result = run_scenario(SCENARIOS["primary-crash-mid-batch"], Mode.DOG)
    result.assert_ok()
"""

from repro.scenarios.engine import (
    CaughtUp,
    Expectation,
    ModeIs,
    ProgressAfter,
    Scenario,
    ScenarioResult,
    StateTransferred,
    ViewAdvanced,
    build_scenario_deployment,
    run_scenario,
    run_scenario_matrix,
)
from repro.scenarios.events import (
    Byzantine,
    ClearLinkDegradation,
    ClientSurge,
    Crash,
    HealPartition,
    LinkDegradation,
    ModeSwitch,
    Partition,
    Recover,
    ScenarioEvent,
    resolve_target,
)
from repro.scenarios.invariants import (
    CheckpointAgreement,
    CommittedPrefixAgreement,
    ExactlyOnceExecution,
    InvariantChecker,
    NoForgedReplies,
    default_checkers,
)
from repro.scenarios.library import SCENARIOS, scenario_by_name, scenario_names
from repro.scenarios.sharded import (
    SHARDED_SCENARIOS,
    CrossShardAtomicity,
    HealShards,
    IsolateShard,
    OnShard,
    PerShardInvariants,
    SurgeShardedClients,
    ShardedInvariantChecker,
    ShardedNoForgedReplies,
    ShardedScenario,
    ShardedScenarioResult,
    build_sharded_scenario_deployment,
    default_sharded_checkers,
    run_sharded_scenario,
    run_sharded_scenario_matrix,
)

__all__ = [
    # sharded
    "SHARDED_SCENARIOS",
    "ShardedScenario",
    "ShardedScenarioResult",
    "run_sharded_scenario",
    "run_sharded_scenario_matrix",
    "build_sharded_scenario_deployment",
    "ShardedInvariantChecker",
    "PerShardInvariants",
    "CrossShardAtomicity",
    "ShardedNoForgedReplies",
    "default_sharded_checkers",
    "OnShard",
    "IsolateShard",
    "HealShards",
    "SurgeShardedClients",
    # engine
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "run_scenario_matrix",
    "build_scenario_deployment",
    "Expectation",
    "ProgressAfter",
    "ViewAdvanced",
    "ModeIs",
    "StateTransferred",
    "CaughtUp",
    # events
    "ScenarioEvent",
    "Crash",
    "Recover",
    "Byzantine",
    "Partition",
    "HealPartition",
    "LinkDegradation",
    "ClearLinkDegradation",
    "ModeSwitch",
    "ClientSurge",
    "resolve_target",
    # invariants
    "InvariantChecker",
    "CommittedPrefixAgreement",
    "NoForgedReplies",
    "ExactlyOnceExecution",
    "CheckpointAgreement",
    "default_checkers",
    # library
    "SCENARIOS",
    "scenario_by_name",
    "scenario_names",
]
