"""Discrete-event simulation kernel.

The simulator is the substrate that stands in for the paper's Amazon EC2
testbed.  Everything in the repository -- network links, replica CPUs,
clients, fault injectors -- runs on top of a single :class:`Simulator`
instance that owns simulated time and a priority queue of events.

The kernel is intentionally tiny and deterministic: events scheduled for the
same timestamp fire in insertion order, and all randomness used by higher
layers flows through a seeded :class:`random.Random` owned by the caller.
"""

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue
from repro.sim.simulator import Simulator, Timer
from repro.sim.process import Process, ProcessState

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Simulator",
    "Timer",
    "Process",
    "ProcessState",
]
