"""The discrete-event simulator that drives every experiment.

A :class:`Simulator` owns the clock and the event queue.  Components
schedule callbacks either after a relative delay (:meth:`Simulator.call_later`)
or at an absolute time (:meth:`Simulator.call_at`), and the experiment
harness runs the loop with :meth:`Simulator.run`.

Timers (used heavily by the consensus protocols for view-change timeouts)
are thin wrappers over events that support cancellation and restart.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue


class Timer:
    """A cancellable, restartable timer bound to a simulator.

    Protocol replicas use timers for request timeouts: start it when a
    request enters the pipeline, stop it when the commit arrives, and let
    its expiry trigger a view change.
    """

    def __init__(
        self, simulator: "Simulator", callback: Callable[[], None], label: str = ""
    ) -> None:
        self._simulator = simulator
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None

    @property
    def label(self) -> str:
        return self._label

    @property
    def active(self) -> bool:
        """Whether the timer is currently armed."""
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire ``delay`` seconds from now."""
        self.stop()
        self._event = self._simulator.call_later(delay, self._fire, label=self._label)

    def restart(self, delay: float) -> None:
        """Alias for :meth:`start`; reads better at call sites that re-arm."""
        self.start(delay)

    def stop(self) -> None:
        """Disarm the timer if it is active.

        Safe to call repeatedly: cancellation accounting is guarded in the
        event queue itself, so double stops never double-count.
        """
        if self._event is not None:
            self._simulator.cancel(self._event)
        self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class Simulator:
    """Deterministic discrete-event simulator.

    Events scheduled for the same instant fire in the order they were
    scheduled.  The simulator makes no use of wall-clock time or global
    randomness, so a run is a pure function of its inputs.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._clock = Clock(start_time)
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (not-yet-fired, not-cancelled) events."""
        return len(self._queue)

    def call_later(self, delay: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past: delay={delay}")
        return self._queue.push(self._clock.now + delay, action, label=label)

    def defer(
        self, delay: float, action: Callable[..., None], args: tuple = ()
    ) -> None:
        """Schedule a fire-and-forget ``action`` ``delay`` seconds from now.

        Like :meth:`call_later` but returns nothing and allocates no
        :class:`Event`: the hot paths (CPU completions, network arrivals)
        schedule hundreds of thousands of callbacks that are never
        cancelled or inspected.  ``args`` rides along in the heap entry and
        is star-applied at fire time, so callers avoid a
        ``functools.partial`` allocation per scheduled callback.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past: delay={delay}")
        # Inlined EventQueue.push_action: this is called once per CPU work
        # item and once per network delivery, so the extra frame matters.
        queue = self._queue
        seq = queue._counter
        queue._counter = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (self._clock._now + delay, seq, action, args))

    def call_at(self, timestamp: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` to run at absolute simulated time ``timestamp``."""
        if timestamp < self._clock.now:
            raise ValueError(
                f"cannot schedule an event in the past: now={self._clock.now}, at={timestamp}"
            )
        # float() so the run loop's direct clock write keeps time a float.
        return self._queue.push(float(timestamp), action, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event.

        Idempotent, and a no-op for events that already fired: the queue
        tracks live/cancelled counts exactly, so repeated ``Timer.stop``
        calls (or a stop racing a fire) can never skew the accounting.
        """
        self._queue.cancel(event)

    def timer(self, callback: Callable[[], None], label: str = "") -> Timer:
        """Create an unarmed :class:`Timer` bound to this simulator."""
        return Timer(self, callback, label=label)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: stop once the clock would pass this simulated time.  Events
                scheduled exactly at ``until`` are executed.
            max_events: safety valve for runaway simulations; stop after this
                many events have been processed in this call.

        Returns:
            The simulated time at which the loop stopped.
        """
        self._running = True
        processed_this_call = 0
        # Local bindings shave attribute lookups off the per-event path —
        # this loop is the single hottest code in the repository.  The body
        # of EventQueue.pop_due and Clock.advance_to is inlined here (heap
        # pop order guarantees monotone times, so the advance needs no
        # check); compaction mutates the heap list in place, so the local
        # binding stays valid across auto-compactions.
        queue = self._queue
        clock = self._clock
        heap = queue._heap
        heappop = heapq.heappop
        try:
            while self._running:
                while heap:
                    entry = heap[0]
                    time = entry[0]
                    payload = entry[2]
                    if payload.__class__ is Event:
                        if payload.cancelled:
                            heappop(heap)
                            queue._cancelled_in_heap -= 1
                            continue
                        if until is not None and time > until:
                            payload = None
                            break
                        heappop(heap)
                        payload.fired = True
                        queue._live -= 1
                        payload = payload.action
                        args = ()
                        break
                    if until is not None and time > until:
                        payload = None
                        break
                    heappop(heap)
                    queue._live -= 1
                    args = entry[3]
                    break
                else:
                    payload = None
                    time = None
                if payload is None:
                    if until is not None and time is not None:
                        # Live events remain, but all after the horizon.
                        self._clock.advance_to(until)
                    break
                clock._now = time
                if args:
                    payload(*args)
                else:
                    payload()
                self._events_processed += 1
                processed_this_call += 1
                if max_events is not None and processed_this_call >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self._clock.now < until and self._queue.peek_time() is None:
            self._clock.advance_to(until)
        return self._clock.now

    def stop(self) -> None:
        """Request the event loop to stop after the current event."""
        self._running = False
