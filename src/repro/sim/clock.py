"""Simulated clock.

Time in the simulation is a floating point number of *seconds*.  The clock
only moves forward and is advanced exclusively by the simulator's event
loop; user code reads it through :attr:`Clock.now`.
"""

from __future__ import annotations


class Clock:
    """Monotonically increasing simulated clock.

    The clock starts at ``0.0`` unless an explicit ``start`` is given.  It is
    deliberately not tied to wall-clock time: benchmarks that report
    "seconds" or "milliseconds" report *simulated* time, which makes runs
    reproducible and independent of the host machine.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp``.

        Raises:
            ValueError: if ``timestamp`` is in the past.  The simulator never
                rewinds time; a violation indicates a scheduling bug.
        """
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"
