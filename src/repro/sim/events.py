"""Event objects and the priority queue that orders them.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a strictly
increasing insertion counter.  Ties on time therefore resolve in FIFO order,
which keeps the simulation deterministic regardless of dict/set iteration
order in higher layers.

Two hot-path design points:

* the heap stores ``(time, seq, event)`` tuples, so ordering is resolved by
  C-level tuple comparison instead of a Python ``__lt__`` per sift step —
  the event loop compares millions of entries per simulated second;
* cancelled events stay in the heap (cancellation is O(1)) but the queue
  counts them and **auto-compacts** once they exceed half the heap, so
  timer-heavy runs (every request arms and disarms a view-change timer) no
  longer grow the heap until someone calls :meth:`EventQueue.discard_cancelled`
  by hand.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, List, Optional, Tuple

#: Auto-compaction floor: tiny heaps are never worth rebuilding.
_COMPACT_MIN_HEAP = 64
#: Auto-compaction trigger: cancelled fraction of the heap above which a
#: :meth:`EventQueue.discard_cancelled` pass runs automatically.
_COMPACT_FRACTION = 0.5


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time at which the event fires.
        seq: insertion sequence number, used as a tiebreaker.
        action: zero-argument callable invoked when the event fires.
        cancelled: cancelled events stay in the heap but are skipped when
            popped; this makes cancellation O(1).
        label: optional human-readable tag used in traces and debugging.
    """

    __slots__ = ("time", "seq", "action", "cancelled", "label", "fired", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        cancelled: bool = False,
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = cancelled
        self.label = label
        self.fired = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped.

        Routes through the owning queue so live/cancelled accounting (and
        auto-compaction) stays exact no matter which cancel API a caller
        uses; idempotent, and a no-op once the event has fired.
        """
        queue = self._queue
        if queue is not None:
            queue.cancel(self)
        else:
            self.cancelled = True

    #: Runtime-interface spelling: ``Runtime.call_later`` promises a handle
    #: with ``stop()``, matching :class:`repro.runtime.api.TimerHandle`.
    stop = cancel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"Event(t={self.time}, seq={self.seq}, {state}, label={self.label!r})"


class EventQueue:
    """Min-heap of :class:`Event` objects keyed by (time, seq)."""

    def __init__(self) -> None:
        # Entries are ``(time, seq, Event)`` for cancellable events and
        # ``(time, seq, callable, args)`` for fire-and-forget callbacks; see
        # push_action.  ``seq`` is unique, so tuple comparison never reaches
        # the third element and the two shapes can share one heap.
        self._heap: List[Tuple[float, int, Any]] = []
        self._counter = 0
        self._live = 0
        self._cancelled_in_heap = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    @property
    def cancelled_in_heap(self) -> int:
        """Cancelled entries still occupying heap slots (for diagnostics)."""
        return self._cancelled_in_heap

    @property
    def heap_size(self) -> int:
        """Total heap entries, live and cancelled (for diagnostics)."""
        return len(self._heap)

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(time=time, seq=self._counter, action=action, label=label)
        event._queue = self
        self._counter += 1
        self._live += 1
        heapq.heappush(self._heap, (time, event.seq, event))
        return event

    def push_action(self, time: float, action: Callable[..., None], args: tuple = ()) -> None:
        """Insert a fire-and-forget callback without the :class:`Event` shell.

        The overwhelming majority of events — CPU work completions, network
        arrivals — are never cancelled and never inspected, so the heap
        stores their bare callable plus its argument tuple.  Carrying the
        arguments in the heap entry (instead of a ``functools.partial``)
        saves one object allocation and one indirect call per scheduled
        event.  Use :meth:`push` whenever the caller may need to cancel.
        """
        self._counter += 1
        self._live += 1
        heapq.heappush(self._heap, (time, self._counter - 1, action, args))

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``.

        Bare callbacks pushed via :meth:`push_action` are wrapped in a
        fired :class:`Event` so every caller sees one interface.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            payload = entry[2]
            if payload.__class__ is Event:
                if payload.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                payload.fired = True
                self._live -= 1
                return payload
            self._live -= 1
            args = entry[3]
            event = Event(
                time=entry[0],
                seq=entry[1],
                action=partial(payload, *args) if args else payload,
            )
            event.fired = True
            return event
        return None

    def pop_due(self, until: Optional[float]) -> Optional[Tuple[float, Callable[[], None]]]:
        """Pop the earliest live ``(time, action)`` firing at or before ``until``.

        Returns ``None`` when the queue is empty *or* the next live event
        fires after ``until`` (callers distinguish via :meth:`peek_time`,
        which is O(1) right after this returns ``None``).  This is the event
        loop's single heap operation per iteration — a separate
        peek-then-pop would sift the heap twice per event.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            time = entry[0]
            payload = entry[2]
            if payload.__class__ is Event:
                if payload.cancelled:
                    heapq.heappop(heap)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and time > until:
                    return None
                heapq.heappop(heap)
                payload.fired = True
                self._live -= 1
                return (time, payload.action)
            if until is not None and time > until:
                return None
            heapq.heappop(heap)
            self._live -= 1
            args = entry[3]
            return (time, partial(payload, *args) if args else payload)
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        heap = self._heap
        while heap:
            payload = heap[0][2]
            if payload.__class__ is Event and payload.cancelled:
                heapq.heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            return heap[0][0]
        return None

    def cancel(self, event: Event) -> bool:
        """Cancel ``event`` with exact live-count accounting.

        Safe against double cancellation and against cancelling an event
        that already fired: both are no-ops.  Returns whether the event was
        actually cancelled by this call.
        """
        if event.cancelled or event.fired:
            return False
        event.cancelled = True  # direct flag write; Event.cancel would recurse
        self._live -= 1
        self._cancelled_in_heap += 1
        self._maybe_compact()
        return True

    def discard_cancelled(self) -> None:
        """Compact the heap by dropping cancelled entries (occasional GC).

        Compacts *in place* (slice assignment, not rebinding): the event
        loop and the hot-path schedulers hold direct references to the heap
        list, and a rebind here would strand them on a stale list.
        """
        self._heap[:] = [
            entry
            for entry in self._heap
            if entry[2].__class__ is not Event or not entry[2].cancelled
        ]
        heapq.heapify(self._heap)
        self._cancelled_in_heap = 0

    def note_cancelled(self) -> None:
        """Backward-compatibility no-op.

        Accounting now happens inside :meth:`cancel` (which
        :meth:`Event.cancel` routes through), so the legacy two-step
        protocol — ``event.cancel(); queue.note_cancelled()`` — must not
        decrement a second time.
        """

    def _maybe_compact(self) -> None:
        heap_size = len(self._heap)
        if (
            heap_size >= _COMPACT_MIN_HEAP
            and self._cancelled_in_heap > heap_size * _COMPACT_FRACTION
        ):
            self.discard_cancelled()
