"""Event objects and the priority queue that orders them.

Events are ordered by ``(time, sequence)`` where ``sequence`` is a strictly
increasing insertion counter.  Ties on time therefore resolve in FIFO order,
which keeps the simulation deterministic regardless of dict/set iteration
order in higher layers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time at which the event fires.
        seq: insertion sequence number, used as a tiebreaker.
        action: zero-argument callable invoked when the event fires.
        cancelled: cancelled events stay in the heap but are skipped when
            popped; this makes cancellation O(1).
        label: optional human-readable tag used in traces and debugging.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` objects keyed by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = 0
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Insert a new event and return it (so callers may cancel it)."""
        event = Event(time=time, seq=self._counter, action=action, label=label)
        self._counter += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def discard_cancelled(self) -> None:
        """Compact the heap by dropping cancelled entries (occasional GC)."""
        self._heap = [event for event in self._heap if not event.cancelled]
        heapq.heapify(self._heap)

    def note_cancelled(self) -> None:
        """Record that one live event was cancelled externally."""
        self._live -= 1
