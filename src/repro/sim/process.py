"""Single-threaded server processes with a CPU cost model.

The paper's replicas are real servers: each message costs CPU time to
deserialize, verify, and handle, and a server can only do one thing at a
time.  Saturation of that serial resource is what bends the
latency-throughput curves in Figures 2 and 3.

:class:`Process` models exactly that: a FIFO work queue drained one item at
a time, where each item carries a service-time cost in simulated seconds.
Higher layers (the network, the replica engine) submit work via
:meth:`Process.submit`; the process charges the cost and invokes the handler
when the "CPU" gets to it.
"""

from __future__ import annotations

import enum
from collections import deque
from heapq import heappush
from typing import Callable, Deque, Optional, Tuple

from repro.sim.simulator import Simulator


class ProcessState(enum.Enum):
    """Lifecycle of a simulated server process."""

    RUNNING = "running"
    CRASHED = "crashed"


class Process:
    """A serial execution resource (one CPU core) in the simulation.

    Work items are ``(cost_seconds, handler)`` pairs.  The process is
    non-preemptive: once a handler's cost has been charged the handler runs
    to completion at that instant.  Crashed processes silently drop all
    submitted and queued work, which is exactly the fail-stop behaviour the
    paper assumes for the private cloud.
    """

    def __init__(self, simulator: Simulator, name: str = "process") -> None:
        self._simulator = simulator
        self._name = name
        self._queue: Deque[Tuple[float, Callable[..., None], tuple]] = deque()
        self._busy = False
        # ``crashed`` is a plain attribute (not a property) because every
        # send/deliver/handle on the owning node reads it.
        self.crashed = False
        self._busy_time = 0.0
        self._items_processed = 0
        # Hot-path preallocations: one completion event fires per work item,
        # so the callback is a single pre-bound method (the running handler
        # and its arguments park in ``_current``/``_current_args``) instead
        # of a fresh closure or partial per item.
        self._current: Optional[Callable[..., None]] = None
        self._current_args: tuple = ()
        self._finish_current = self._finish

    @property
    def name(self) -> str:
        return self._name

    @property
    def state(self) -> ProcessState:
        return ProcessState.CRASHED if self.crashed else ProcessState.RUNNING

    @property
    def queue_depth(self) -> int:
        """Number of work items waiting for the CPU (excludes the running one)."""
        return len(self._queue)

    @property
    def busy_time(self) -> float:
        """Total simulated seconds spent executing work (utilisation numerator)."""
        return self._busy_time

    @property
    def items_processed(self) -> int:
        return self._items_processed

    def submit(
        self, cost: float, handler: Callable[..., None], args: tuple = ()
    ) -> None:
        """Enqueue a work item costing ``cost`` simulated seconds of CPU.

        ``args`` is star-applied to ``handler`` when the CPU reaches the
        item, which lets hot callers avoid a ``functools.partial`` per
        message.  Work submitted to a crashed process is dropped silently:
        a crashed server neither processes nor acknowledges anything.
        """
        if cost < 0:
            raise ValueError(f"work cost cannot be negative: {cost}")
        if self.crashed:
            return
        if self._busy:
            self._queue.append((cost, handler, args))
            return
        # Idle fast path: an idle process always has an empty queue (the
        # completion handler refills from the queue before going idle), so
        # the item starts immediately — skip the deque round trip and
        # schedule the completion directly (inlined Simulator.defer).
        self._busy = True
        self._busy_time += cost
        self._current = handler
        self._current_args = args
        simulator = self._simulator
        queue = simulator._queue
        seq = queue._counter
        queue._counter = seq + 1
        queue._live += 1
        heappush(
            queue._heap, (simulator._clock._now + cost, seq, self._finish_current, ())
        )

    def crash(self) -> None:
        """Fail-stop the process: drop queued work and refuse new work."""
        self.crashed = True
        self._queue.clear()

    def recover(self) -> None:
        """Bring a crashed process back (used by crash-recover experiments)."""
        self.crashed = False

    def _start_next(self) -> None:
        if self.crashed or not self._queue:
            self._busy = False
            return
        self._busy = True
        cost, handler, args = self._queue.popleft()
        self._busy_time += cost
        self._current = handler
        self._current_args = args
        self._simulator.defer(cost, self._finish_current)

    def _finish(self) -> None:
        handler = self._current
        args = self._current_args
        self._current = None
        if not self.crashed and handler is not None:
            self._items_processed += 1
            if args:
                handler(*args)
            else:
                handler()
        # Inlined _start_next: one completion fires per work item, so the
        # extra frame (and the re-checks it would repeat) add up.
        work_queue = self._queue
        if self.crashed or not work_queue:
            self._busy = False
            return
        self._busy = True
        cost, handler, args = work_queue.popleft()
        self._busy_time += cost
        self._current = handler
        self._current_args = args
        simulator = self._simulator
        queue = simulator._queue
        seq = queue._counter
        queue._counter = seq + 1
        queue._live += 1
        heappush(
            queue._heap, (simulator._clock._now + cost, seq, self._finish_current, ())
        )

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the CPU has been busy.

        Args:
            elapsed: window length; defaults to the current simulated time.
        """
        window = elapsed if elapsed is not None else self._simulator.now
        if window <= 0:
            return 0.0
        return min(1.0, self._busy_time / window)
