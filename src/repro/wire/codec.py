"""Decoder half of the binary wire codec (encode lives on the messages).

Each hot message type's ``signing_bytes()`` already *is* its wire frame
(assembled from :mod:`repro.wire.primitives`), cached per object as the
frozen ``wire_slice``.  This module provides the inverse — :func:`decode`
rebuilds a message object from a frame — plus :func:`encode` /
:func:`wire_slice_of` conveniences, so tests can state round-trip and
differential properties, and byzantine twists can tamper with *decoded*
forms and re-encode (keeping attacks wire-visible).

Cold types (view-change and friends) have no binary frame; they keep the
JSON canonical form and are rejected here by :func:`wire_slice_of`.
"""

from __future__ import annotations

from typing import Any

from repro.core.messages import (
    Accept,
    Checkpoint,
    Commit,
    Inform,
    PrePrepare,
    Prepare,
    ProxyPrepare,
)
from repro.crypto.digest import HAS_CACHE_FLAG
from repro.smr.messages import Batch, Reply, Request
from repro.smr.state_machine import Operation
from repro.wire.primitives import (
    BATCH_HEAD,
    CHECKPOINT_HEAD,
    REPLY_HEAD,
    REQUEST_HEAD,
    TAG_ACCEPT,
    TAG_BATCH,
    TAG_CHECKPOINT,
    TAG_COMMIT,
    TAG_INFORM,
    TAG_PREPARE,
    TAG_PREPREPARE,
    TAG_PROXY_PREPARE,
    TAG_REPLY,
    TAG_REQUEST,
    Reader,
    VOTE_HEAD,
    WireDecodeError,
)


class OpaqueResult:
    """Stand-in for a Reply result that only survives the wire as a digest.

    The protocol never ships full result values — clients vote on
    ``result_digest()`` — so a decoded Reply carries this placeholder whose
    ``to_wire`` form *is* the original digest.  Re-encoding a decoded Reply
    reproduces the source frame exactly.
    """

    __slots__ = ("result_digest",)

    def __init__(self, result_digest: str) -> None:
        self.result_digest = result_digest

    def to_wire(self) -> str:
        return self.result_digest

    def __eq__(self, other: Any) -> bool:
        if other.__class__ is not OpaqueResult:
            return NotImplemented
        return self.result_digest == other.result_digest

    def __hash__(self) -> int:
        return hash(self.result_digest)

    def __repr__(self) -> str:
        return f"OpaqueResult({self.result_digest!r})"


def encode(message: Any) -> bytes:
    """The message's frozen wire frame (alias for its cached wire slice)."""
    return wire_slice_of(message)


def wire_slice_of(message: Any) -> bytes:
    """Return the frozen binary frame of a hot message.

    Raises TypeError for cold (JSON-fallback) types, which have no frame.
    """
    if getattr(message, "signing_bytes", None) is None:
        raise TypeError(
            f"{type(message).__name__} is a JSON-fallback (cold) type with no binary wire frame"
        )
    return message.wire_slice()


def _decode_request(reader: Reader) -> Request:
    _, timestamp = reader.unpack(REQUEST_HEAD)
    client_id = reader.string()
    kind = reader.string()
    args = tuple(reader.value() for _ in range(reader.u16()))
    payload = reader.string()
    return Request(
        operation=Operation(kind=kind, args=args, payload=payload),
        timestamp=timestamp,
        client_id=client_id,
    )


def _decode_batch(reader: Reader) -> Batch:
    _, count = reader.unpack(BATCH_HEAD)
    requests = []
    for _ in range(count):
        sub = Reader(reader.take(reader.u32()))
        if not sub.buf or sub.buf[0] != TAG_REQUEST:
            raise WireDecodeError("batch frame embeds a non-request frame")
        request = _decode_request(sub)
        if not sub.exhausted():
            raise WireDecodeError(
                f"{sub.end - sub.off} trailing bytes after embedded request frame"
            )
        requests.append(request)
    if not requests:
        raise WireDecodeError("batch frame contains no requests")
    return Batch(requests=requests)


def _decode_reply(reader: Reader) -> Reply:
    _, mode, view, timestamp = reader.unpack(REPLY_HEAD)
    client_id = reader.string()
    replica_id = reader.string()
    result_digest = reader.digest()
    reply = Reply(
        mode=mode,
        view=view,
        timestamp=timestamp,
        client_id=client_id,
        replica_id=replica_id,
        result=OpaqueResult(result_digest),
    )
    # Pre-seed the result-digest cache: the digest IS the carried value.
    reply.__dict__["_result_digest"] = result_digest
    reply.__dict__[HAS_CACHE_FLAG] = True
    return reply


def _decode_vote(reader: Reader) -> tuple:
    _, view, sequence, mode = reader.unpack(VOTE_HEAD)
    return view, sequence, mode, reader.digest()


def _decode_prepare(reader: Reader) -> Prepare:
    view, sequence, mode, digest = _decode_vote(reader)
    return Prepare(view=view, sequence=sequence, digest=digest, request=None, mode=mode)


def _decode_preprepare(reader: Reader) -> PrePrepare:
    view, sequence, mode, digest = _decode_vote(reader)
    return PrePrepare(view=view, sequence=sequence, digest=digest, request=None, mode=mode)


def _decode_accept(reader: Reader) -> Accept:
    view, sequence, mode, digest = _decode_vote(reader)
    return Accept(
        view=view, sequence=sequence, digest=digest, replica_id=reader.string(), mode=mode
    )


def _decode_commit(reader: Reader) -> Commit:
    view, sequence, mode, digest = _decode_vote(reader)
    return Commit(
        view=view, sequence=sequence, digest=digest, replica_id=reader.string(), mode=mode
    )


def _decode_proxy_prepare(reader: Reader) -> ProxyPrepare:
    view, sequence, mode, digest = _decode_vote(reader)
    return ProxyPrepare(
        view=view, sequence=sequence, digest=digest, replica_id=reader.string(), mode=mode
    )


def _decode_inform(reader: Reader) -> Inform:
    view, sequence, mode, digest = _decode_vote(reader)
    return Inform(
        view=view, sequence=sequence, digest=digest, replica_id=reader.string(), mode=mode
    )


def _decode_checkpoint(reader: Reader) -> Checkpoint:
    _, sequence, mode = reader.unpack(CHECKPOINT_HEAD)
    return Checkpoint(
        sequence=sequence,
        state_digest=reader.digest(),
        replica_id=reader.string(),
        mode=mode,
    )


_DECODERS = {
    TAG_REQUEST: _decode_request,
    TAG_BATCH: _decode_batch,
    TAG_REPLY: _decode_reply,
    TAG_PREPARE: _decode_prepare,
    TAG_ACCEPT: _decode_accept,
    TAG_COMMIT: _decode_commit,
    TAG_PREPREPARE: _decode_preprepare,
    TAG_PROXY_PREPARE: _decode_proxy_prepare,
    TAG_INFORM: _decode_inform,
    TAG_CHECKPOINT: _decode_checkpoint,
}


def decode(frame: Any) -> Any:
    """Rebuild a hot message from its binary frame.

    Raises WireDecodeError on truncation, unknown tags, garbled fields, or
    trailing bytes.  Decoded messages carry no signature (signatures ride
    beside the signed frame, not inside it) and votes carry ``request=None``
    — the piggybacked payload is a transport optimization, not signed
    content.
    """
    if isinstance(frame, memoryview):
        frame = frame.tobytes()
    elif isinstance(frame, bytearray):
        frame = bytes(frame)
    elif not isinstance(frame, bytes):
        raise WireDecodeError(f"frame must be bytes, not {type(frame).__name__}")
    if not frame:
        raise WireDecodeError("empty frame")
    decoder = _DECODERS.get(frame[0])
    if decoder is None:
        raise WireDecodeError(f"unknown frame tag: 0x{frame[0]:02x}")
    reader = Reader(frame)
    message = decoder(reader)
    if not reader.exhausted():
        raise WireDecodeError(f"{reader.end - reader.off} trailing bytes after frame")
    return message


__all__ = ["OpaqueResult", "decode", "encode", "wire_slice_of"]
