"""Binary frame primitives shared by the wire codec and the message classes.

This module is a *leaf*: it imports nothing from the message layer, so the
hot message classes in :mod:`repro.smr.messages` / :mod:`repro.core.messages`
can assemble their frames directly (each hot type's ``signing_bytes`` *is*
the codec's encoder for that type), while the decoder in
:mod:`repro.wire.codec` imports the classes to rebuild objects.

Frame layout (all integers little endian):

====================  =====================================================
type                  frame
====================  =====================================================
Request      (0x01)   tag u8 | timestamp i64 | client str | kind str |
                      argc u16 | arg* | payload str
Batch        (0x02)   tag u8 | count u32 | (length u32 | request-frame)*
Reply        (0x03)   tag u8 | mode i64 | view i64 | timestamp i64 |
                      client str | replica str | result-digest dig
Prepare      (0x10)   tag u8 | view i64 | seq i64 | mode i64 | digest dig
Accept       (0x11)   Prepare layout + replica str
Commit       (0x12)   Prepare layout + replica str
PrePrepare   (0x13)   Prepare layout
ProxyPrepare (0x14)   Prepare layout + replica str
Inform       (0x15)   Prepare layout + replica str
Checkpoint   (0x16)   tag u8 | seq i64 | mode i64 | state-digest dig |
                      replica str
====================  =====================================================

``str`` is ``u32 length + UTF-8 bytes``.  ``dig`` packs the canonical
64-char lowercase hex digest to 32 raw bytes behind a 0x01 flag byte, with
a length-prefixed string fallback (flag 0x00) for the synthetic digest
strings tests and attack helpers use — the two branches cover disjoint
string sets, so the encoding stays injective.

Operation arguments are encoded with one type-tag byte each (see
:func:`pack_value`).  The typed encoding is injective on the supported
domain (None/bool/int/float/str/tuple/list/bytes) and, like the legacy
``repr``-escaped text form it replaces, never lets argument *content*
collide with frame structure: every variable-length field is length
prefixed, so no separator can be spoofed.  Unsupported argument types fall
back to a ``repr`` capsule that digests faithfully but refuses to decode.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

TAG_REQUEST = 0x01
TAG_BATCH = 0x02
TAG_REPLY = 0x03
TAG_PREPARE = 0x10
TAG_ACCEPT = 0x11
TAG_COMMIT = 0x12
TAG_PREPREPARE = 0x13
TAG_PROXY_PREPARE = 0x14
TAG_INFORM = 0x15
TAG_CHECKPOINT = 0x16

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
REQUEST_HEAD = struct.Struct("<Bq")
REPLY_HEAD = struct.Struct("<Bqqq")
VOTE_HEAD = struct.Struct("<Bqqq")
CHECKPOINT_HEAD = struct.Struct("<Bqq")
BATCH_HEAD = struct.Struct("<BI")


class WireDecodeError(ValueError):
    """A frame is truncated, garbled, or not invertible."""


def pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    return _U32.pack(len(raw)) + raw


def pack_digest(value: str) -> bytes:
    """Pack a digest field: canonical hex digests compress to raw bytes."""
    if len(value) == 64:
        try:
            raw = bytes.fromhex(value)
        except ValueError:
            pass
        else:
            # Only the canonical lowercase spelling takes the packed branch;
            # anything else (uppercase hex is a *different string* to the
            # legacy canonical form) keeps its exact text.
            if raw.hex() == value:
                return b"\x01" + raw
    raw = value.encode("utf-8")
    return b"\x00" + _U32.pack(len(raw)) + raw


def pack_value(value: Any) -> bytes:
    """Typed, injective encoding of one operation argument."""
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        return b"S" + _U32.pack(len(raw)) + raw
    if kind is bool:
        return b"T" if value else b"F"
    if kind is int:
        raw = str(value).encode("ascii")
        return b"I" + _U32.pack(len(raw)) + raw
    if kind is float:
        # repr round-trips floats exactly in Python 3 and, like the legacy
        # repr-escaped form, maps equal-but-distinctly-spelled values
        # (0.0 vs -0.0) to distinct encodings.
        raw = repr(value).encode("ascii")
        return b"f" + _U32.pack(len(raw)) + raw
    if value is None:
        return b"N"
    if kind is tuple:
        return b"U" + _U32.pack(len(value)) + b"".join(map(pack_value, value))
    if kind is list:
        return b"L" + _U32.pack(len(value)) + b"".join(map(pack_value, value))
    if kind is bytes:
        return b"B" + _U32.pack(len(value)) + value
    # Opaque fallback: digests faithfully (mirrors the legacy repr
    # escaping, so the digest equality relation is preserved) but cannot
    # be decoded back; unpack_value raises WireDecodeError for it.
    raw = repr(value).encode("utf-8")
    return b"R" + _U32.pack(len(raw)) + raw


def encode_request(
    timestamp: int, client_id: str, kind: str, args: Sequence[Any], payload: str
) -> bytes:
    # pack_str (and the string case of pack_value) is inlined: a request is
    # encoded on every client send and batch inclusion, making this the
    # hottest encoder in the codec.
    u32 = _U32.pack
    client_raw = client_id.encode("utf-8")
    kind_raw = kind.encode("utf-8")
    parts = [
        REQUEST_HEAD.pack(TAG_REQUEST, timestamp),
        u32(len(client_raw)),
        client_raw,
        u32(len(kind_raw)),
        kind_raw,
        _U16.pack(len(args)),
    ]
    append = parts.append
    for arg in args:
        if type(arg) is str:
            raw = arg.encode("utf-8")
            append(b"S")
            append(u32(len(raw)))
            append(raw)
        else:
            append(pack_value(arg))
    payload_raw = payload.encode("utf-8")
    append(u32(len(payload_raw)))
    append(payload_raw)
    return b"".join(parts)


def encode_batch(request_frames: Sequence[bytes]) -> bytes:
    parts = [BATCH_HEAD.pack(TAG_BATCH, len(request_frames))]
    for frame in request_frames:
        parts.append(_U32.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def encode_reply(
    mode: int, view: int, timestamp: int, client_id: str, replica_id: str, result_digest: str
) -> bytes:
    # One reply is encoded per executed request per replying replica, so
    # pack_str is inlined here too.
    u32 = _U32.pack
    client_raw = client_id.encode("utf-8")
    replica_raw = replica_id.encode("utf-8")
    return b"".join(
        (
            REPLY_HEAD.pack(TAG_REPLY, mode, view, timestamp),
            u32(len(client_raw)),
            client_raw,
            u32(len(replica_raw)),
            replica_raw,
            pack_digest(result_digest),
        )
    )


def encode_vote(tag: int, view: int, sequence: int, mode: int, digest: str) -> bytes:
    """Frame for ordering messages whose signed fields are (v, n, d, mode)."""
    return VOTE_HEAD.pack(tag, view, sequence, mode) + pack_digest(digest)


def encode_attributed_vote(
    tag: int, view: int, sequence: int, mode: int, digest: str, replica_id: str
) -> bytes:
    """Frame for votes that additionally name their voting replica."""
    return VOTE_HEAD.pack(tag, view, sequence, mode) + pack_digest(digest) + pack_str(replica_id)


def encode_checkpoint(sequence: int, mode: int, state_digest: str, replica_id: str) -> bytes:
    return (
        CHECKPOINT_HEAD.pack(TAG_CHECKPOINT, sequence, mode)
        + pack_digest(state_digest)
        + pack_str(replica_id)
    )


class Reader:
    """Bounds-checked cursor over one frame (decode is the cold path)."""

    __slots__ = ("buf", "off", "end")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.off = 0
        self.end = len(buf)

    def take(self, count: int) -> bytes:
        off = self.off
        end = off + count
        if end > self.end:
            raise WireDecodeError(
                f"truncated frame: wanted {count} bytes at offset {off}, have {self.end - off}"
            )
        self.off = end
        return self.buf[off:end]

    def exhausted(self) -> bool:
        return self.off == self.end

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def unpack(self, head: struct.Struct) -> tuple:
        return head.unpack(self.take(head.size))

    def string(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireDecodeError(f"garbled UTF-8 string field: {exc}") from None

    def digest(self) -> str:
        flag = self.take(1)
        if flag == b"\x01":
            return self.take(32).hex()
        if flag == b"\x00":
            return self.string()
        raise WireDecodeError(f"garbled digest flag byte: {flag!r}")

    def value(self) -> Any:
        tag = self.take(1)
        if tag == b"S":
            return self.string()
        if tag == b"T":
            return True
        if tag == b"F":
            return False
        if tag == b"I":
            raw = self.take(self.u32())
            try:
                return int(raw.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                raise WireDecodeError(f"garbled integer argument: {raw!r}") from None
        if tag == b"f":
            raw = self.take(self.u32())
            try:
                return float(raw.decode("ascii"))
            except (UnicodeDecodeError, ValueError):
                raise WireDecodeError(f"garbled float argument: {raw!r}") from None
        if tag == b"N":
            return None
        if tag == b"U":
            return tuple(self.value() for _ in range(self.u32()))
        if tag == b"L":
            return [self.value() for _ in range(self.u32())]
        if tag == b"B":
            return self.take(self.u32())
        if tag == b"R":
            raise WireDecodeError(
                "opaque repr-encoded argument: digestible but not invertible"
            )
        raise WireDecodeError(f"unknown argument type tag: {tag!r}")


__all__ = [
    "TAG_REQUEST",
    "TAG_BATCH",
    "TAG_REPLY",
    "TAG_PREPARE",
    "TAG_ACCEPT",
    "TAG_COMMIT",
    "TAG_PREPREPARE",
    "TAG_PROXY_PREPARE",
    "TAG_INFORM",
    "TAG_CHECKPOINT",
    "WireDecodeError",
    "Reader",
    "pack_str",
    "pack_digest",
    "pack_value",
    "encode_request",
    "encode_batch",
    "encode_reply",
    "encode_vote",
    "encode_attributed_vote",
    "encode_checkpoint",
]
