"""Compact binary wire codec for the hot protocol message types.

``primitives`` is a leaf module (frame layouts, pack helpers) imported by
the message classes themselves; ``codec`` holds the decoder and imports
the message classes, so it is loaded lazily here to keep the import graph
acyclic.
"""

from repro.wire.primitives import (  # noqa: F401
    TAG_ACCEPT,
    TAG_BATCH,
    TAG_CHECKPOINT,
    TAG_COMMIT,
    TAG_INFORM,
    TAG_PREPARE,
    TAG_PREPREPARE,
    TAG_PROXY_PREPARE,
    TAG_REPLY,
    TAG_REQUEST,
    WireDecodeError,
)

_CODEC_SYMBOLS = ("OpaqueResult", "decode", "encode", "wire_slice_of")


def __getattr__(name):
    if name in _CODEC_SYMBOLS:
        from repro.wire import codec

        return getattr(codec, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "WireDecodeError",
    "OpaqueResult",
    "decode",
    "encode",
    "wire_slice_of",
    "TAG_REQUEST",
    "TAG_BATCH",
    "TAG_REPLY",
    "TAG_PREPARE",
    "TAG_ACCEPT",
    "TAG_COMMIT",
    "TAG_PREPREPARE",
    "TAG_PROXY_PREPARE",
    "TAG_INFORM",
    "TAG_CHECKPOINT",
]
