"""Protocol messages used by the baseline protocols.

Paxos messages are unsigned (crash model: channel MACs suffice); the
BFT-style messages (PBFT and S-UpRight) are signed, matching how the
original protocols are deployed and how the paper's cost comparison counts
cryptographic work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.smr.messages import (
    ProtocolMessage,
    Request,
    _DIGEST_BYTES,
    _HEADER_BYTES,
    _SEP,
    _SIGNATURE_BYTES,
)


# -- Paxos (crash fault tolerant) ------------------------------------------------


@dataclass
class AcceptRequest(ProtocolMessage):
    """Leader -> replicas: order ``request`` at ``sequence`` (phase 2a)."""

    view: int
    sequence: int
    digest: str
    request: Request
    signed: bool = False
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PAXOS-ACCEPT-REQUEST",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"PAXOS-ACCEPT-REQUEST{_SEP}{self.view}{_SEP}{self.sequence}{_SEP}{self.digest}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _DIGEST_BYTES + self.request.cached_wire_size()


@dataclass
class Accepted(ProtocolMessage):
    """Replica -> leader: acknowledgement of an AcceptRequest (phase 2b)."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    signed: bool = False
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PAXOS-ACCEPTED",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"PAXOS-ACCEPTED{_SEP}{self.view}{_SEP}{self.sequence}"
            f"{_SEP}{self.digest}{_SEP}{self.replica_id}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _DIGEST_BYTES


@dataclass
class Learn(ProtocolMessage):
    """Leader -> replicas: the value at ``sequence`` is chosen; execute it."""

    view: int
    sequence: int
    digest: str
    request: Request
    signed: bool = False
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "PAXOS-LEARN",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"PAXOS-LEARN{_SEP}{self.view}{_SEP}{self.sequence}{_SEP}{self.digest}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _DIGEST_BYTES + self.request.cached_wire_size()


# -- PBFT / S-UpRight (Byzantine fault tolerant) --------------------------------------


@dataclass
class BftPrePrepare(ProtocolMessage):
    """Primary -> replicas: proposal of ``request`` at ``sequence``."""

    view: int
    sequence: int
    digest: str
    request: Request
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BFT-PRE-PREPARE",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"BFT-PRE-PREPARE{_SEP}{self.view}{_SEP}{self.sequence}{_SEP}{self.digest}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES + self.request.cached_wire_size()


@dataclass
class BftPrepare(ProtocolMessage):
    """Replica -> replicas: prepare vote for a pre-prepared proposal."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BFT-PREPARE",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"BFT-PREPARE{_SEP}{self.view}{_SEP}{self.sequence}"
            f"{_SEP}{self.digest}{_SEP}{self.replica_id}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


@dataclass
class BftCommit(ProtocolMessage):
    """Replica -> replicas: commit vote after gathering a prepare certificate."""

    view: int
    sequence: int
    digest: str
    replica_id: str
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BFT-COMMIT",
            "view": self.view,
            "sequence": self.sequence,
            "digest": self.digest,
            "replica": self.replica_id,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"BFT-COMMIT{_SEP}{self.view}{_SEP}{self.sequence}"
            f"{_SEP}{self.digest}{_SEP}{self.replica_id}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


# -- shared: checkpoints and view changes ---------------------------------------------


@dataclass
class BaselineCheckpoint(ProtocolMessage):
    """Periodic checkpoint message (signed for the BFT-style protocols)."""

    sequence: int
    state_digest: str
    replica_id: str
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BASELINE-CHECKPOINT",
            "sequence": self.sequence,
            "state_digest": self.state_digest,
            "replica": self.replica_id,
        }

    def signing_bytes(self) -> bytes:
        return (
            f"BASELINE-CHECKPOINT{_SEP}{self.sequence}"
            f"{_SEP}{self.state_digest}{_SEP}{self.replica_id}"
        ).encode("utf-8")

    def wire_size(self) -> int:
        return _HEADER_BYTES + _SIGNATURE_BYTES + _DIGEST_BYTES


@dataclass
class BaselineEntry:
    """Per-sequence entry carried in view-change / new-view messages."""

    sequence: int
    view: int
    digest: str
    request: Optional[Request] = None

    def to_wire(self) -> Dict[str, Any]:
        return {"sequence": self.sequence, "view": self.view, "digest": self.digest}

    def wire_size(self) -> int:
        size = 24 + _DIGEST_BYTES
        if self.request is not None:
            size += self.request.cached_wire_size()
        return size


@dataclass
class BaselineViewChange(ProtocolMessage):
    """Replica -> all: the primary of the current view is suspected."""

    new_view: int
    replica_id: str
    checkpoint_sequence: int
    prepared: List[BaselineEntry] = field(default_factory=list)
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BASELINE-VIEW-CHANGE",
            "new_view": self.new_view,
            "replica": self.replica_id,
            "checkpoint_sequence": self.checkpoint_sequence,
            "prepared": [entry.to_wire() for entry in self.prepared],
        }

    def wire_size(self) -> int:
        return (
            _HEADER_BYTES
            + _SIGNATURE_BYTES
            + sum(entry.wire_size() for entry in self.prepared)
        )


@dataclass
class BaselineNewView(ProtocolMessage):
    """New primary -> all: install the new view and re-propose pending slots."""

    new_view: int
    replica_id: str
    checkpoint_sequence: int
    prepares: List[BaselineEntry] = field(default_factory=list)
    signed: bool = True
    signature: Optional[Any] = None

    def signing_content(self) -> Dict[str, Any]:
        return {
            "type": "BASELINE-NEW-VIEW",
            "new_view": self.new_view,
            "replica": self.replica_id,
            "checkpoint_sequence": self.checkpoint_sequence,
            "prepares": [entry.to_wire() for entry in self.prepares],
        }

    def wire_size(self) -> int:
        return (
            _HEADER_BYTES
            + _SIGNATURE_BYTES
            + sum(entry.wire_size() for entry in self.prepares)
        )


__all__ = [
    "AcceptRequest",
    "Accepted",
    "Learn",
    "BftPrePrepare",
    "BftPrepare",
    "BftCommit",
    "BaselineCheckpoint",
    "BaselineEntry",
    "BaselineViewChange",
    "BaselineNewView",
]
