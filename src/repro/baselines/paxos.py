"""A multi-Paxos-style crash fault-tolerant baseline ("CFT" in the paper).

The steady-state flow mirrors the optimized Paxos implementation inside
BFT-SMaRt that the paper uses as its CFT baseline:

1. the client sends its request to the leader;
2. the leader assigns a sequence number and multicasts ``ACCEPT-REQUEST``
   (phase 2a) to all replicas;
3. replicas acknowledge with ``ACCEPTED`` (phase 2b) back to the leader;
4. the leader, once a quorum of f+1 (including itself) has accepted,
   multicasts ``LEARN``, executes, and replies to the client;
5. replicas execute on ``LEARN``.

Messages are unsigned: under the crash model, pairwise-authenticated
channels are sufficient, which is exactly why CFT outperforms the Byzantine
protocols in Figures 2 and 3.

Leader changes are timer-driven: a replica that saw an ``ACCEPT-REQUEST``
but no ``LEARN`` suspects the leader and broadcasts a view change; the next
leader re-proposes all prepared slots it learns about.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baselines import messages as msgs
from repro.baselines.config import PaxosConfig
from repro.crypto.digest import digest
from repro.crypto.signatures import Signer, Verifier
from repro.net.costs import NodeCostModel
from repro.smr.messages import Request
from repro.smr.replica import ReplicaBase, request_digest
from repro.smr.state_machine import Operation, StateMachine

_NOOP_CLIENT = "__noop__"


def _noop_request(sequence: int) -> Request:
    return Request(
        operation=Operation("noop"), timestamp=sequence, client_id=_NOOP_CLIENT, signed=False
    )


class PaxosReplica(ReplicaBase):
    """One replica of the CFT baseline."""

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        config: PaxosConfig,
        signer: Signer,
        verifier: Verifier,
        state_machine: StateMachine,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        if node_id not in config.replicas:
            raise ValueError(f"replica {node_id!r} is not part of the configuration")
        super().__init__(node_id, runtime, signer, verifier, state_machine, cost_model)
        self.config = config
        self.in_view_change = False
        self.next_sequence = 1
        self._assigned: Dict[tuple, int] = {}
        self._view_change_votes: Dict[int, Dict[str, msgs.BaselineViewChange]] = {}
        self._new_views_sent: set = set()
        self._request_timer = self.create_timer(self._on_request_timeout, "paxos-timeout")
        self.view_changes_completed = 0

        self.register_handler(Request, self._on_request)
        self.register_handler(msgs.AcceptRequest, self._on_accept_request)
        self.register_handler(msgs.Accepted, self._on_accepted)
        self.register_handler(msgs.Learn, self._on_learn)
        self.register_handler(msgs.BaselineViewChange, self._on_view_change)
        self.register_handler(msgs.BaselineNewView, self._on_new_view)

    # -- roles ------------------------------------------------------------------

    def current_leader(self) -> str:
        return self.config.primary_of_view(self.view)

    def is_leader(self) -> bool:
        return not self.in_view_change and self.current_leader() == self.node_id

    def other_replicas(self) -> List[str]:
        return self.config.other_replicas(self.node_id)

    # -- normal case ----------------------------------------------------------------

    def _on_request(self, src: str, request: Request) -> None:
        if not self.is_leader():
            if self.resend_cached_reply(request):
                return
            self.remember_request(request)
            leader = self.current_leader()
            if leader != self.node_id:
                self.send(leader, request)
            if not self._request_timer.active:
                self._request_timer.start(self.config.request_timeout)
            return
        if self.resend_cached_reply(request):
            return
        if not request.verify(self.verifier, expected_signer=request.client_id):
            return
        key = (request.client_id, request.timestamp)
        if key in self._assigned:
            return

        sequence = self.next_sequence
        self.next_sequence += 1
        self._assigned[key] = sequence
        digest_value = request_digest(request)
        slot = self.slots.slot(sequence)
        slot.digest = digest_value
        slot.request = request
        slot.view = self.view
        slot.record_vote("accepted", self.node_id, None, digest_value)
        self.remember_request(request)
        accept_request = msgs.AcceptRequest(
            view=self.view, sequence=sequence, digest=digest_value, request=request
        )
        slot.ordering_message = accept_request
        self.multicast(self.other_replicas(), accept_request)

    def _on_accept_request(self, src: str, message: msgs.AcceptRequest) -> None:
        if self.in_view_change or message.view != self.view:
            return
        if src != self.config.primary_of_view(message.view):
            return
        slot = self.slots.slot(message.sequence)
        slot.digest = message.digest
        slot.request = message.request
        slot.view = message.view
        slot.ordering_message = message
        self.remember_request(message.request)
        accepted = msgs.Accepted(
            view=message.view,
            sequence=message.sequence,
            digest=message.digest,
            replica_id=self.node_id,
        )
        self.send(src, accepted)
        if not self._request_timer.active:
            self._request_timer.start(self.config.request_timeout)

    def _on_accepted(self, src: str, message: msgs.Accepted) -> None:
        if not self.is_leader() or message.view != self.view:
            return
        slot = self.slots.existing_slot(message.sequence)
        if slot is None or slot.committed or slot.digest != message.digest:
            return
        count = slot.record_vote("accepted", src, message, message.digest)
        if count < self.config.agreement_quorum:
            return
        learn = msgs.Learn(
            view=self.view, sequence=slot.sequence, digest=slot.digest, request=slot.request
        )
        self.multicast(self.other_replicas(), learn)
        self._finalize(slot, send_reply=True)

    def _on_learn(self, src: str, message: msgs.Learn) -> None:
        if message.view < self.view:
            return
        if src != self.config.primary_of_view(message.view):
            return
        slot = self.slots.slot(message.sequence)
        if slot.committed:
            return
        slot.digest = message.digest
        slot.request = message.request
        slot.view = message.view
        self.remember_request(message.request)
        self._finalize(slot, send_reply=False)

    def _finalize(self, slot, send_reply: bool) -> None:
        if slot.request is None or slot.committed:
            return
        reply = send_reply and slot.request.client_id != _NOOP_CLIENT
        self.commit_slot(slot.sequence, slot.request, self.view, send_reply=reply)
        self._garbage_collect()
        self._update_timer()

    def _garbage_collect(self) -> None:
        executed = self.last_executed
        if executed and executed % self.config.checkpoint_period == 0:
            self.slots.collect_below(executed - self.config.checkpoint_period)

    def _update_timer(self) -> None:
        if self.slots.has_pending_proposal():
            self._request_timer.restart(self.config.request_timeout)
        else:
            self._request_timer.stop()

    # -- leader change ------------------------------------------------------------------

    def _on_request_timeout(self) -> None:
        if self.crashed or self.in_view_change:
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, target_view: int) -> None:
        self.in_view_change = True
        self._request_timer.stop()
        prepared = [
            msgs.BaselineEntry(
                sequence=slot.sequence, view=slot.view, digest=slot.digest, request=slot.request
            )
            for slot in self.slots.slots_above(0)
            if slot.request is not None and slot.digest is not None
        ]
        view_change = msgs.BaselineViewChange(
            new_view=target_view,
            replica_id=self.node_id,
            checkpoint_sequence=self.last_executed,
            prepared=prepared,
            signed=False,
        )
        self._record_view_change(self.node_id, view_change)
        self.multicast(self.other_replicas(), view_change)
        self._maybe_install_view(target_view)

    def _record_view_change(self, sender: str, message: msgs.BaselineViewChange) -> None:
        self._view_change_votes.setdefault(message.new_view, {})[sender] = message

    def _on_view_change(self, src: str, message: msgs.BaselineViewChange) -> None:
        if message.new_view <= self.view:
            return
        self._record_view_change(src, message)
        votes = self._view_change_votes.get(message.new_view, {})
        if not self.in_view_change and len(votes) >= 1:
            # In the crash model a single suspicion is enough to join.
            self._start_view_change(message.new_view)
        self._maybe_install_view(message.new_view)

    def _maybe_install_view(self, target_view: int) -> None:
        if self.config.primary_of_view(target_view) != self.node_id:
            return
        if target_view in self._new_views_sent or target_view <= self.view:
            return
        votes = self._view_change_votes.get(target_view, {})
        if len(votes) < self.config.agreement_quorum:
            return

        checkpoint_seq = max(vote.checkpoint_sequence for vote in votes.values())
        entries: Dict[int, msgs.BaselineEntry] = {}
        highest = checkpoint_seq
        for vote in votes.values():
            for entry in vote.prepared:
                if entry.sequence > checkpoint_seq:
                    entries.setdefault(entry.sequence, entry)
                    highest = max(highest, entry.sequence)
        prepares = []
        for sequence in range(checkpoint_seq + 1, highest + 1):
            entry = entries.get(sequence)
            if entry is None:
                filler = _noop_request(sequence)
                entry = msgs.BaselineEntry(
                    sequence=sequence,
                    view=target_view,
                    digest=request_digest(filler),
                    request=filler,
                )
            prepares.append(entry)
        new_view = msgs.BaselineNewView(
            new_view=target_view,
            replica_id=self.node_id,
            checkpoint_sequence=checkpoint_seq,
            prepares=prepares,
            signed=False,
        )
        self._new_views_sent.add(target_view)
        self.multicast(self.other_replicas(), new_view)
        self._install_view(self.node_id, new_view)

    def _on_new_view(self, src: str, message: msgs.BaselineNewView) -> None:
        if message.new_view <= self.view:
            return
        if src != self.config.primary_of_view(message.new_view):
            return
        self._install_view(src, message)

    def _install_view(self, src: str, message: msgs.BaselineNewView) -> None:
        self.view = message.new_view
        self.in_view_change = False
        self._assigned.clear()
        self._request_timer.stop()
        self.view_changes_completed += 1

        highest = message.checkpoint_sequence
        leader = self.is_leader()
        for entry in message.prepares:
            highest = max(highest, entry.sequence)
            if entry.request is None:
                continue
            slot = self.slots.slot(entry.sequence)
            slot.digest = entry.digest
            slot.request = entry.request
            slot.view = self.view
            slot.ordering_message = entry
            self.remember_request(entry.request)
            if leader:
                slot.record_vote("accepted", self.node_id, None, entry.digest)
                accept_request = msgs.AcceptRequest(
                    view=self.view,
                    sequence=entry.sequence,
                    digest=entry.digest,
                    request=entry.request,
                )
                self.multicast(self.other_replicas(), accept_request)
        self.next_sequence = max(self.next_sequence, highest + 1, self.last_executed + 1)

    # -- introspection --------------------------------------------------------------------

    def state_summary(self) -> Dict[str, Any]:
        summary = super().state_summary()
        summary.update({"is_leader": self.is_leader() if not self.crashed else False})
        return summary
