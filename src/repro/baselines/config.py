"""Configurations for the baseline protocols."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class BaselineConfig:
    """Common shape of a baseline replica-group configuration.

    Attributes:
        replicas: replica ids in identifier order.
        checkpoint_period: how often replicas checkpoint and garbage collect.
        request_timeout: backup timeout before suspecting the primary.
        view_change_timeout: how long to wait for a new view to be installed.
    """

    replicas: Tuple[str, ...]
    checkpoint_period: int = 128
    request_timeout: float = 0.02
    view_change_timeout: float = 0.04

    def __post_init__(self) -> None:
        if len(self.replicas) < self.minimum_network_size:
            raise ValueError(
                f"{type(self).__name__} needs at least {self.minimum_network_size} replicas, "
                f"got {len(self.replicas)}"
            )

    # -- to be specialised -----------------------------------------------------

    @property
    def minimum_network_size(self) -> int:
        raise NotImplementedError

    @property
    def agreement_quorum(self) -> int:
        """Votes (including the collector's own) needed to order a request."""
        raise NotImplementedError

    @property
    def commit_quorum(self) -> int:
        """Matching commit votes needed to commit (BFT-style protocols)."""
        return self.agreement_quorum

    @property
    def client_reply_quorum(self) -> int:
        """Matching replies a client needs before accepting a result."""
        raise NotImplementedError

    @property
    def messages_are_signed(self) -> bool:
        """Whether replica-to-replica protocol messages carry signatures."""
        raise NotImplementedError

    # -- shared helpers -----------------------------------------------------------

    @property
    def network_size(self) -> int:
        return len(self.replicas)

    def primary_of_view(self, view: int) -> str:
        if view < 0:
            raise ValueError(f"view numbers are non-negative: {view}")
        return self.replicas[view % len(self.replicas)]

    def other_replicas(self, replica_id: str) -> List[str]:
        return [replica for replica in self.replicas if replica != replica_id]

    @classmethod
    def build(cls, *args, prefix: str = "replica", **kwargs) -> "BaselineConfig":
        raise NotImplementedError


@dataclass(frozen=True)
class PaxosConfig(BaselineConfig):
    """Crash fault tolerance: 2f+1 replicas, quorum f+1, unsigned messages."""

    crash_tolerance: int = 1

    @property
    def minimum_network_size(self) -> int:
        return 2 * self.crash_tolerance + 1

    @property
    def agreement_quorum(self) -> int:
        return self.crash_tolerance + 1

    @property
    def client_reply_quorum(self) -> int:
        return 1

    @property
    def messages_are_signed(self) -> bool:
        return False

    @classmethod
    def build(cls, crash_tolerance: int, prefix: str = "cft", **overrides) -> "PaxosConfig":
        replicas = tuple(f"{prefix}-{index}" for index in range(2 * crash_tolerance + 1))
        return cls(replicas=replicas, crash_tolerance=crash_tolerance, **overrides)


@dataclass(frozen=True)
class PBFTConfig(BaselineConfig):
    """Byzantine fault tolerance: 3f+1 replicas, quorum 2f+1, signed messages."""

    byzantine_tolerance: int = 1

    @property
    def minimum_network_size(self) -> int:
        return 3 * self.byzantine_tolerance + 1

    @property
    def agreement_quorum(self) -> int:
        return 2 * self.byzantine_tolerance + 1

    @property
    def client_reply_quorum(self) -> int:
        return self.byzantine_tolerance + 1

    @property
    def messages_are_signed(self) -> bool:
        return True

    @classmethod
    def build(cls, byzantine_tolerance: int, prefix: str = "bft", **overrides) -> "PBFTConfig":
        replicas = tuple(f"{prefix}-{index}" for index in range(3 * byzantine_tolerance + 1))
        return cls(replicas=replicas, byzantine_tolerance=byzantine_tolerance, **overrides)


@dataclass(frozen=True)
class UpRightConfig(BaselineConfig):
    """S-UpRight: the hybrid model's 3m+2c+1 replicas with quorum 2m+c+1.

    Unlike SeeMoRe, UpRight does not know *where* crash or Byzantine faults
    can occur, so every replica is treated as potentially Byzantine and all
    protocol messages are signed.
    """

    crash_tolerance: int = 0
    byzantine_tolerance: int = 1

    @property
    def minimum_network_size(self) -> int:
        return 3 * self.byzantine_tolerance + 2 * self.crash_tolerance + 1

    @property
    def agreement_quorum(self) -> int:
        return 2 * self.byzantine_tolerance + self.crash_tolerance + 1

    @property
    def client_reply_quorum(self) -> int:
        return self.byzantine_tolerance + 1

    @property
    def messages_are_signed(self) -> bool:
        return True

    @classmethod
    def build(
        cls,
        crash_tolerance: int,
        byzantine_tolerance: int,
        prefix: str = "upright",
        **overrides,
    ) -> "UpRightConfig":
        size = 3 * byzantine_tolerance + 2 * crash_tolerance + 1
        replicas = tuple(f"{prefix}-{index}" for index in range(size))
        return cls(
            replicas=replicas,
            crash_tolerance=crash_tolerance,
            byzantine_tolerance=byzantine_tolerance,
            **overrides,
        )
