"""PBFT-style Byzantine fault-tolerant baseline, parameterised by quorums.

The same agreement engine serves two of the paper's baselines:

* **BFT (PBFT)** with a :class:`~repro.baselines.config.PBFTConfig` —
  3f+1 replicas, prepare/commit quorums of 2f+1;
* **S-UpRight** with an :class:`~repro.baselines.config.UpRightConfig` —
  3m+2c+1 replicas, quorums of 2m+c+1, still running the pessimistic
  PBFT-like agreement because, unlike SeeMoRe, it does not know where the
  crash-only faults live.

Normal case: the primary multicasts a signed ``PRE-PREPARE``; every replica
multicasts a signed ``PREPARE``; once a replica holds a prepare certificate
it multicasts a signed ``COMMIT``; once it holds a commit certificate it
executes and replies to the client, which waits for f+1 (resp. m+1)
matching replies.  View changes are timer-driven with the new primary
collecting a quorum of view-change messages and re-proposing pending slots.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.baselines import messages as msgs
from repro.baselines.config import BaselineConfig
from repro.crypto.signatures import Signer, Verifier
from repro.net.costs import NodeCostModel
from repro.smr.messages import Request
from repro.smr.replica import ReplicaBase, request_digest
from repro.smr.slots import Slot
from repro.smr.state_machine import Operation, StateMachine

_NOOP_CLIENT = "__noop__"


def _noop_request(sequence: int) -> Request:
    return Request(
        operation=Operation("noop"), timestamp=sequence, client_id=_NOOP_CLIENT, signed=False
    )


class QuorumBFTReplica(ReplicaBase):
    """A PBFT-like replica whose quorum sizes come from its configuration."""

    def __init__(
        self,
        node_id: str,
        runtime: Any,
        config: BaselineConfig,
        signer: Signer,
        verifier: Verifier,
        state_machine: StateMachine,
        cost_model: Optional[NodeCostModel] = None,
    ) -> None:
        if node_id not in config.replicas:
            raise ValueError(f"replica {node_id!r} is not part of the configuration")
        super().__init__(node_id, runtime, signer, verifier, state_machine, cost_model)
        self.config = config
        self.in_view_change = False
        self.next_sequence = 1
        self._assigned: Dict[tuple, int] = {}
        self._view_change_votes: Dict[int, Dict[str, msgs.BaselineViewChange]] = {}
        self._new_views_sent: set = set()
        self._checkpoint_votes: Dict[int, Dict[str, set]] = {}
        self._stable_checkpoint = 0
        self._request_timer = self.create_timer(self._on_request_timeout, "bft-timeout")
        self._new_view_timer = self.create_timer(self._on_new_view_timeout, "bft-new-view")
        self._active_target: Optional[int] = None
        self.view_changes_completed = 0

        self.register_handler(Request, self._on_request)
        self.register_handler(msgs.BftPrePrepare, self._on_preprepare)
        self.register_handler(msgs.BftPrepare, self._on_prepare)
        self.register_handler(msgs.BftCommit, self._on_commit)
        self.register_handler(msgs.BaselineCheckpoint, self._on_checkpoint)
        self.register_handler(msgs.BaselineViewChange, self._on_view_change)
        self.register_handler(msgs.BaselineNewView, self._on_new_view)

    # -- roles -----------------------------------------------------------------

    def current_primary(self) -> str:
        return self.config.primary_of_view(self.view)

    def is_primary(self) -> bool:
        return not self.in_view_change and self.current_primary() == self.node_id

    def other_replicas(self) -> List[str]:
        return self.config.other_replicas(self.node_id)

    # -- client requests ----------------------------------------------------------

    def _on_request(self, src: str, request: Request) -> None:
        if not self.is_primary():
            if self.resend_cached_reply(request):
                return
            self.remember_request(request)
            primary = self.current_primary()
            if primary != self.node_id:
                self.send(primary, request)
            if not self._request_timer.active:
                self._request_timer.start(self.config.request_timeout)
            return
        if self.resend_cached_reply(request):
            return
        if not request.verify(self.verifier, expected_signer=request.client_id):
            return
        key = (request.client_id, request.timestamp)
        if key in self._assigned:
            return

        sequence = self.next_sequence
        self.next_sequence += 1
        self._assigned[key] = sequence
        digest_value = request_digest(request)
        preprepare = msgs.BftPrePrepare(
            view=self.view, sequence=sequence, digest=digest_value, request=request
        )
        preprepare.sign(self.signer)
        slot = self._fill_slot(sequence, digest_value, request, preprepare)
        slot.record_vote("prepare", self.node_id, None, digest_value)
        self.multicast(self.other_replicas(), preprepare)

    # -- agreement -------------------------------------------------------------------

    def _fill_slot(
        self,
        sequence: int,
        digest_value: str,
        request: Request,
        ordering: Any,
        force: bool = False,
    ) -> Slot:
        slot = self.slots.slot(sequence)
        stale = slot.digest is not None and slot.digest != digest_value
        if force and not slot.committed and stale:
            # New-view entries supersede whatever a (possibly equivocating)
            # old primary got this replica to tentatively accept.
            slot.digest = None
            slot.request = None
            slot.ordering_message = None
            slot.votes.clear()
        if slot.digest is None:
            slot.digest = digest_value
        if slot.request is None:
            slot.request = request
        if slot.ordering_message is None and ordering is not None:
            slot.ordering_message = ordering
        slot.view = self.view
        self.remember_request(request)
        return slot

    def _on_preprepare(self, src: str, message: msgs.BftPrePrepare) -> None:
        if self.in_view_change or message.view != self.view:
            return
        if src != self.config.primary_of_view(message.view):
            return
        if not message.verify(self.verifier, expected_signer=src):
            return
        if message.digest != request_digest(message.request):
            return
        existing = self.slots.existing_slot(message.sequence)
        if (
            existing is not None
            and existing.digest is not None
            and existing.digest != message.digest
        ):
            return

        slot = self._fill_slot(message.sequence, message.digest, message.request, message)
        # The primary's pre-prepare counts as its prepare vote (as in PBFT).
        slot.record_vote("prepare", src, message, message.digest)
        if not self._request_timer.active:
            self._request_timer.start(self.config.request_timeout)
        prepare = msgs.BftPrepare(
            view=message.view,
            sequence=message.sequence,
            digest=message.digest,
            replica_id=self.node_id,
        )
        prepare.sign(self.signer)
        slot.record_vote("prepare", self.node_id, prepare, message.digest)
        self.multicast(self.other_replicas(), prepare)
        self._maybe_send_commit(slot)

    def _on_prepare(self, src: str, message: msgs.BftPrepare) -> None:
        if self.in_view_change or message.view != self.view:
            return
        if not message.verify(self.verifier, expected_signer=src):
            return
        slot = self.slots.slot(message.sequence)
        slot.record_vote("prepare", src, message, message.digest)
        self._maybe_send_commit(slot)

    def _maybe_send_commit(self, slot: Slot) -> None:
        if slot.digest is None or slot.request is None:
            return
        if slot.has_vote_from("commit", self.node_id):
            return
        if slot.vote_count("prepare") < self.config.agreement_quorum:
            return
        commit = msgs.BftCommit(
            view=self.view, sequence=slot.sequence, digest=slot.digest, replica_id=self.node_id
        )
        commit.sign(self.signer)
        slot.record_vote("commit", self.node_id, commit, slot.digest)
        self.multicast(self.other_replicas(), commit)
        self._maybe_commit(slot)

    def _on_commit(self, src: str, message: msgs.BftCommit) -> None:
        if self.in_view_change or message.view != self.view:
            return
        if not message.verify(self.verifier, expected_signer=src):
            return
        slot = self.slots.slot(message.sequence)
        slot.record_vote("commit", src, message, message.digest)
        self._maybe_commit(slot)

    def _maybe_commit(self, slot: Slot) -> None:
        if slot.committed or slot.digest is None or slot.request is None:
            return
        if slot.vote_count("commit") < self.config.commit_quorum:
            return
        self._finalize(slot, send_reply=True)

    def _finalize(self, slot: Slot, send_reply: bool) -> None:
        if slot.request is None or slot.committed:
            return
        reply = send_reply and slot.request.client_id != _NOOP_CLIENT
        executions = self.commit_slot(slot.sequence, slot.request, self.view, send_reply=reply)
        for execution in executions:
            if execution.sequence % self.config.checkpoint_period == 0:
                self._take_checkpoint(execution.sequence)
        self._update_timer()

    # -- checkpoints ---------------------------------------------------------------------

    def _take_checkpoint(self, sequence: int) -> None:
        from repro.crypto.digest import digest as digest_fn

        state_digest = digest_fn(
            {"next": self.executor.next_sequence, "state": self.executor.state_machine.snapshot()}
        )
        checkpoint = msgs.BaselineCheckpoint(
            sequence=sequence, state_digest=state_digest, replica_id=self.node_id
        )
        checkpoint.sign(self.signer)
        self._record_checkpoint_vote(sequence, state_digest, self.node_id)
        self.multicast(self.other_replicas(), checkpoint)

    def _on_checkpoint(self, src: str, message: msgs.BaselineCheckpoint) -> None:
        if not message.verify(self.verifier, expected_signer=src):
            return
        self._record_checkpoint_vote(message.sequence, message.state_digest, src)

    def _record_checkpoint_vote(self, sequence: int, state_digest: str, replica_id: str) -> None:
        votes = self._checkpoint_votes.setdefault(sequence, {}).setdefault(state_digest, set())
        votes.add(replica_id)
        if len(votes) >= self.config.commit_quorum and sequence > self._stable_checkpoint:
            self._stable_checkpoint = sequence
            self.slots.collect_below(sequence)
            self.executor.discard_below(sequence)
            stale = [seq for seq in self._checkpoint_votes if seq <= sequence]
            for seq in stale:
                del self._checkpoint_votes[seq]

    def _update_timer(self) -> None:
        if self.slots.has_pending_proposal():
            self._request_timer.restart(self.config.request_timeout)
        else:
            self._request_timer.stop()

    # -- view change -----------------------------------------------------------------------

    def _on_request_timeout(self) -> None:
        if self.crashed or self.in_view_change:
            return
        self._start_view_change(self.view + 1)

    def _start_view_change(self, target_view: int) -> None:
        if self.in_view_change and self._active_target == target_view:
            return
        self.in_view_change = True
        self._active_target = target_view
        self._request_timer.stop()
        prepared = [
            msgs.BaselineEntry(
                sequence=slot.sequence, view=slot.view, digest=slot.digest, request=slot.request
            )
            for slot in self.slots.slots_above(self._stable_checkpoint)
            if slot.request is not None
            and slot.digest is not None
            and slot.vote_count("prepare") >= self.config.agreement_quorum
        ]
        view_change = msgs.BaselineViewChange(
            new_view=target_view,
            replica_id=self.node_id,
            checkpoint_sequence=self._stable_checkpoint,
            prepared=prepared,
        )
        view_change.sign(self.signer)
        self._record_view_change(self.node_id, view_change)
        self.multicast(self.other_replicas(), view_change)
        self._new_view_timer.start(self.config.view_change_timeout)
        self._maybe_install_view(target_view)

    def _on_new_view_timeout(self) -> None:
        if not self.in_view_change or self._active_target is None:
            return
        self._start_view_change(self._active_target + 1)

    def _record_view_change(self, sender: str, message: msgs.BaselineViewChange) -> None:
        self._view_change_votes.setdefault(message.new_view, {})[sender] = message

    def _on_view_change(self, src: str, message: msgs.BaselineViewChange) -> None:
        if message.new_view <= self.view:
            return
        if not message.verify(self.verifier, expected_signer=src):
            return
        self._record_view_change(src, message)
        votes = self._view_change_votes.get(message.new_view, {})
        fault_bound = max(1, self.config.network_size - self.config.commit_quorum)
        if (not self.in_view_change or (self._active_target or 0) < message.new_view) and len(
            votes
        ) >= fault_bound + 1:
            self._start_view_change(message.new_view)
        self._maybe_install_view(message.new_view)

    def _maybe_install_view(self, target_view: int) -> None:
        if self.config.primary_of_view(target_view) != self.node_id:
            return
        if target_view in self._new_views_sent or target_view <= self.view:
            return
        votes = dict(self._view_change_votes.get(target_view, {}))
        if self.node_id not in votes:
            # The collector contributes its own knowledge even if its timer
            # never fired.
            own = msgs.BaselineViewChange(
                new_view=target_view,
                replica_id=self.node_id,
                checkpoint_sequence=self._stable_checkpoint,
                prepared=[
                    msgs.BaselineEntry(
                        sequence=slot.sequence,
                        view=slot.view,
                        digest=slot.digest,
                        request=slot.request,
                    )
                    for slot in self.slots.slots_above(self._stable_checkpoint)
                    if slot.request is not None and slot.digest is not None
                ],
            )
            own.sign(self.signer)
            votes[self.node_id] = own
        if len(votes) < self.config.agreement_quorum:
            return

        checkpoint_seq = max(vote.checkpoint_sequence for vote in votes.values())
        entries: Dict[int, msgs.BaselineEntry] = {}
        highest = checkpoint_seq
        for vote in votes.values():
            for entry in vote.prepared:
                if entry.sequence > checkpoint_seq:
                    entries.setdefault(entry.sequence, entry)
                    highest = max(highest, entry.sequence)
        prepares: List[msgs.BaselineEntry] = []
        for sequence in range(checkpoint_seq + 1, highest + 1):
            entry = entries.get(sequence)
            if entry is None:
                filler = _noop_request(sequence)
                entry = msgs.BaselineEntry(
                    sequence=sequence,
                    view=target_view,
                    digest=request_digest(filler),
                    request=filler,
                )
            prepares.append(entry)
        new_view = msgs.BaselineNewView(
            new_view=target_view,
            replica_id=self.node_id,
            checkpoint_sequence=checkpoint_seq,
            prepares=prepares,
        )
        new_view.sign(self.signer)
        self._new_views_sent.add(target_view)
        self.multicast(self.other_replicas(), new_view)
        self._install_view(self.node_id, new_view)

    def _on_new_view(self, src: str, message: msgs.BaselineNewView) -> None:
        if message.new_view <= self.view:
            return
        if src != self.config.primary_of_view(message.new_view):
            return
        if not message.verify(self.verifier, expected_signer=src):
            return
        self._install_view(src, message)

    def _install_view(self, src: str, message: msgs.BaselineNewView) -> None:
        self.view = message.new_view
        self.in_view_change = False
        self._active_target = None
        self._assigned.clear()
        self._request_timer.stop()
        self._new_view_timer.stop()
        self.view_changes_completed += 1

        highest = message.checkpoint_sequence
        for entry in message.prepares:
            highest = max(highest, entry.sequence)
            if entry.request is None:
                continue
            slot = self._fill_slot(entry.sequence, entry.digest, entry.request, entry, force=True)
            if slot.committed:
                continue
            prepare = msgs.BftPrepare(
                view=self.view,
                sequence=entry.sequence,
                digest=entry.digest,
                replica_id=self.node_id,
            )
            prepare.sign(self.signer)
            slot.record_vote("prepare", self.node_id, prepare, entry.digest)
            self.multicast(self.other_replicas(), prepare)
            self._maybe_send_commit(slot)
        self.next_sequence = max(self.next_sequence, highest + 1, self.last_executed + 1)
        if not self._request_timer.active and any(
            not slot.committed for slot in self.slots.slots_above(self._stable_checkpoint)
        ):
            self._request_timer.start(self.config.request_timeout)

    # -- introspection -------------------------------------------------------------------------

    def state_summary(self) -> Dict[str, Any]:
        summary = super().state_summary()
        summary.update(
            {
                "is_primary": self.is_primary() if not self.crashed else False,
                "stable_checkpoint": self._stable_checkpoint,
                "view_changes": self.view_changes_completed,
            }
        )
        return summary
