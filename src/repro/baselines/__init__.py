"""Baseline protocols the paper compares against (Section 6).

* **CFT / Paxos** — a multi-Paxos-style crash fault-tolerant protocol with a
  stable leader: 2f+1 replicas, quorum f+1, two phases, O(n) messages.
* **BFT / PBFT** — Practical Byzantine Fault Tolerance: 3f+1 replicas,
  quorum 2f+1, three phases, O(n²) messages.
* **S-UpRight** — the simplified UpRight of the paper's evaluation: the
  UpRight hybrid sizing (3m+2c+1 replicas, quorum 2m+c+1) running a
  PBFT-like pessimistic agreement, unaware of *where* crash or Byzantine
  faults may occur.

All three run on the same substrate (network, crypto, SMR) as SeeMoRe, so
the benchmark comparisons isolate protocol structure rather than
implementation differences.
"""

from repro.baselines.config import BaselineConfig, PaxosConfig, PBFTConfig, UpRightConfig
from repro.baselines.paxos import PaxosReplica
from repro.baselines.bft import QuorumBFTReplica
from repro.baselines.client_config import (
    paxos_client_config,
    pbft_client_config,
    upright_client_config,
)

__all__ = [
    "BaselineConfig",
    "PaxosConfig",
    "PBFTConfig",
    "UpRightConfig",
    "PaxosReplica",
    "QuorumBFTReplica",
    "paxos_client_config",
    "pbft_client_config",
    "upright_client_config",
]
