"""Client configurations for the baseline protocols."""

from __future__ import annotations

from typing import List

from repro.baselines.config import PaxosConfig, PBFTConfig, UpRightConfig
from repro.smr.client import ClientConfig


def paxos_client_config(config: PaxosConfig, request_timeout: float = 0.2) -> ClientConfig:
    """CFT client: send to the leader, a single reply from it suffices."""

    def targets(view: int, mode: int) -> List[str]:
        return [config.primary_of_view(view)]

    def retransmit(view: int, mode: int) -> List[str]:
        return list(config.replicas)

    return ClientConfig(
        request_targets=targets,
        replies_needed=config.client_reply_quorum,
        trusted_replicas=frozenset(config.replicas),
        retransmit_targets=retransmit,
        retransmit_replies_needed=1,
        request_timeout=request_timeout,
    )


def _bft_style_client_config(config, request_timeout: float) -> ClientConfig:
    def targets(view: int, mode: int) -> List[str]:
        return [config.primary_of_view(view)]

    def retransmit(view: int, mode: int) -> List[str]:
        return list(config.replicas)

    return ClientConfig(
        request_targets=targets,
        replies_needed=config.client_reply_quorum,
        trusted_replicas=frozenset(),
        retransmit_targets=retransmit,
        retransmit_replies_needed=config.client_reply_quorum,
        request_timeout=request_timeout,
    )


def pbft_client_config(config: PBFTConfig, request_timeout: float = 0.2) -> ClientConfig:
    """PBFT client: f+1 matching replies from distinct replicas."""
    return _bft_style_client_config(config, request_timeout)


def upright_client_config(config: UpRightConfig, request_timeout: float = 0.2) -> ClientConfig:
    """S-UpRight client: m+1 matching replies from distinct replicas."""
    return _bft_style_client_config(config, request_timeout)
