"""Unit tests for keyspace partitioning, shard routing, and 2PC coordination."""

import pytest

from repro.shard import (
    CrossShardCoordinator,
    HashPartitioner,
    RangePartitioner,
    ShardRouter,
    make_partitioner,
)
from repro.smr.state_machine import Operation

pytestmark = pytest.mark.shard


class TestHashPartitioner:
    def test_deterministic_across_instances(self):
        first = HashPartitioner(num_shards=4)
        second = HashPartitioner(num_shards=4)
        keys = [f"key-{index}" for index in range(200)]
        assert [first.shard_of_key(k) for k in keys] == [second.shard_of_key(k) for k in keys]

    def test_stable_golden_values(self):
        # Pinned placements: a partitioner change silently re-homing every
        # key would make runs incomparable across versions.
        partitioner = HashPartitioner(num_shards=4)
        assert [partitioner.shard_of_key(f"key-{i}") for i in range(8)] == [
            3, 3, 2, 1, 0, 0, 3, 2,
        ]

    def test_spreads_keys_over_every_shard(self):
        partitioner = HashPartitioner(num_shards=4)
        owners = {partitioner.shard_of_key(f"key-{index}") for index in range(100)}
        assert owners == {0, 1, 2, 3}

    def test_roughly_uniform(self):
        partitioner = HashPartitioner(num_shards=4)
        counts = [0, 0, 0, 0]
        for index in range(2000):
            counts[partitioner.shard_of_key(f"key-{index}")] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            HashPartitioner(num_shards=0)


class TestRangePartitioner:
    def test_boundaries_split_the_keyspace(self):
        partitioner = RangePartitioner(boundaries=("h", "p"))
        assert partitioner.num_shards == 3
        assert partitioner.shard_of_key("apple") == 0
        assert partitioner.shard_of_key("h") == 1  # boundary belongs to the right
        assert partitioner.shard_of_key("mango") == 1
        assert partitioner.shard_of_key("zebra") == 2

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(ValueError):
            RangePartitioner(boundaries=("p", "h"))
        with pytest.raises(ValueError):
            RangePartitioner(boundaries=("h", "h"))

    def test_factory_builds_both_policies(self):
        assert isinstance(make_partitioner("hash", 4), HashPartitioner)
        ranged = make_partitioner("range", 3, boundaries=("g", "r"))
        assert isinstance(ranged, RangePartitioner)
        with pytest.raises(ValueError):
            make_partitioner("range", 3, boundaries=("g",))  # needs n-1 boundaries
        with pytest.raises(ValueError):
            make_partitioner("consistent", 3)


class TestShardRouter:
    def _router(self, num_shards=3):
        return ShardRouter(RangePartitioner(boundaries=("h", "p")[: num_shards - 1]))

    def test_single_key_operations_route_to_owner(self):
        router = self._router()
        assert router.shards_of_operation(Operation("put", ("apple", "v"))) == (0,)
        assert router.shards_of_operation(Operation("get", ("mango",))) == (1,)
        assert router.shards_of_operation(Operation("delete", ("zebra",))) == (2,)

    def test_keyless_operations_route_to_default_shard(self):
        router = self._router()
        assert router.shards_of_operation(Operation("noop", ())) == (0,)

    def test_transaction_routes_to_every_owner(self):
        router = self._router()
        txn = Operation("txn", (("put", "apple", "v"), ("put", "zebra", "v")))
        assert router.shards_of_operation(txn) == (0, 2)
        assert router.is_cross_shard(txn)

    def test_single_shard_transaction_is_not_cross_shard(self):
        router = self._router()
        txn = Operation("txn", (("put", "apple", "v"), ("put", "berry", "v")))
        assert router.shards_of_operation(txn) == (0,)
        assert not router.is_cross_shard(txn)

    def test_split_writes_groups_by_shard_preserving_order(self):
        router = self._router()
        txn = Operation(
            "txn",
            (("put", "apple", "1"), ("put", "zebra", "2"), ("delete", "berry")),
        )
        split = router.split_writes(txn)
        assert split == {
            0: (("put", "apple", "1"), ("delete", "berry")),
            2: (("put", "zebra", "2"),),
        }

    def test_split_writes_rejects_non_transactions(self):
        with pytest.raises(ValueError):
            self._router().split_writes(Operation("put", ("apple", "v")))


class _FakeTransport:
    """Synchronous in-memory transport driving the coordinator in tests."""

    def __init__(self):
        self.submitted = []  # (shard, operation, callback)
        self.scheduled = []  # (delay, action)
        self.clock = 0.0

    def submit(self, shard, operation, on_result):
        self.submitted.append((shard, operation, on_result))

    def schedule(self, delay, action):
        self.scheduled.append((delay, action))

    def answer(self, index, result):
        self.submitted[index][2](result)


class TestCrossShardCoordinator:
    def _coordinator(self, transport, completed, txn_timeout=None):
        return CrossShardCoordinator(
            submit=transport.submit,
            schedule=transport.schedule,
            now=lambda: transport.clock,
            on_complete=completed.append,
            txn_timeout=txn_timeout,
        )

    def _writes(self):
        return {0: (("put", "a", "1"),), 2: (("put", "z", "2"),)}

    def test_all_yes_votes_commit_everywhere(self):
        transport, completed = _FakeTransport(), []
        coordinator = self._coordinator(transport, completed)
        coordinator.begin("c:1", self._writes())
        prepares = transport.submitted[:2]
        assert [shard for shard, _, _ in prepares] == [0, 2]
        assert all(op.kind == "txn_prepare" for _, op, _ in prepares)
        transport.answer(0, {"ok": True, "vote": "yes"})
        assert len(transport.submitted) == 2  # no decision until all votes
        transport.answer(1, {"ok": True, "vote": "yes"})
        decides = transport.submitted[2:]
        assert [(shard, op.args[1]) for shard, op, _ in decides] == [(0, "commit"), (2, "commit")]
        transport.answer(2, {"ok": True})
        assert not completed  # both acknowledgements required
        transport.answer(3, {"ok": True})
        assert completed[0].txn_id == "c:1" and completed[0].decision == "commit"
        assert coordinator.stats.as_dict() == {"started": 1, "committed": 1, "aborted": 0}

    def test_any_no_vote_aborts_every_participant(self):
        transport, completed = _FakeTransport(), []
        coordinator = self._coordinator(transport, completed)
        coordinator.begin("c:1", self._writes())
        transport.answer(0, {"ok": True, "vote": "no"})
        decides = transport.submitted[2:]
        # The abort goes to BOTH participants even though shard 2 has not
        # voted yet — its eventual prepare must find the tombstone.
        assert [(shard, op.args[1]) for shard, op, _ in decides] == [(0, "abort"), (2, "abort")]
        transport.answer(1, {"ok": True, "vote": "yes"})  # late vote: ignored
        assert len(transport.submitted) == 4
        transport.answer(2, {"ok": True})
        transport.answer(3, {"ok": True})
        assert completed[0].decision == "abort"
        assert coordinator.stats.aborted == 1

    def test_timeout_aborts_an_undecided_transaction(self):
        transport, completed = _FakeTransport(), []
        coordinator = self._coordinator(transport, completed, txn_timeout=0.5)
        coordinator.begin("c:1", self._writes())
        (delay, deadline) = transport.scheduled[0]
        assert delay == 0.5
        transport.answer(0, {"ok": True, "vote": "yes"})
        deadline()  # shard 2 never answered in time
        decides = transport.submitted[2:]
        assert [op.args[1] for _, op, _ in decides] == ["abort", "abort"]

    def test_timeout_after_decision_is_a_no_op(self):
        transport, completed = _FakeTransport(), []
        coordinator = self._coordinator(transport, completed, txn_timeout=0.5)
        coordinator.begin("c:1", self._writes())
        transport.answer(0, {"ok": True, "vote": "yes"})
        transport.answer(1, {"ok": True, "vote": "yes"})
        (_, deadline) = transport.scheduled[0]
        deadline()
        assert coordinator.stats.as_dict() == {"started": 1, "committed": 1, "aborted": 0}

    def test_single_shard_transactions_are_rejected(self):
        transport = _FakeTransport()
        coordinator = self._coordinator(transport, [])
        with pytest.raises(ValueError):
            coordinator.begin("c:1", {0: (("put", "a", "1"),)})

    def test_duplicate_txn_id_is_rejected(self):
        transport = _FakeTransport()
        coordinator = self._coordinator(transport, [])
        coordinator.begin("c:1", self._writes())
        with pytest.raises(ValueError):
            coordinator.begin("c:1", self._writes())
