"""The sharded fault-scenario library, plus checker-detection tests."""

import pytest

from repro.scenarios.sharded import (
    SHARDED_SCENARIOS,
    CrossShardAtomicity,
    IsolateShard,
    OnShard,
    run_sharded_scenario,
)
from repro.scenarios.events import Crash

pytestmark = [pytest.mark.shard, pytest.mark.integration]


@pytest.fixture(scope="module")
def matrix_results():
    """Run the whole library once; every matrix test asserts on the cache."""
    return {name: run_sharded_scenario(scenario) for name, scenario in SHARDED_SCENARIOS.items()}


class TestShardedScenarioMatrix:
    @pytest.mark.parametrize("name", sorted(SHARDED_SCENARIOS))
    def test_library_scenario_upholds_every_invariant(self, matrix_results, name):
        result = matrix_results[name]
        result.assert_ok()
        # The atomicity contract is the point of the library: every one of
        # these runs must leave a consistent cross-shard decision history.
        assert "cross-shard-atomicity" not in result.invariant_violations

    def test_single_shard_crash_scenario_exercises_a_view_change(self, matrix_results):
        result = matrix_results["shard-primary-crash-mid-traffic"]
        assert any("crash" in label for _, label in result.events_applied)
        assert result.transactions["committed"] >= 3

    def test_isolation_scenario_really_aborts_transactions(self, matrix_results):
        result = matrix_results["shard-isolated-then-heals"]
        assert result.transactions["aborted"] >= 1
        assert any("isolate" in label for _, label in result.events_applied)


class TestShardedCheckersDetect:
    def test_atomicity_checker_flags_a_split_decision(self):
        from repro.scenarios.sharded import build_sharded_scenario_deployment, ShardedScenario

        scenario = ShardedScenario(name="probe", description="", duration=0.2)
        deployment = build_sharded_scenario_deployment(scenario)
        # Forge a split decision directly in the state machines: shard 0
        # committed a transaction shard 1 aborted.
        shard0_store = deployment.shards[0].correct_replicas()[0].executor.state_machine
        shard1_store = deployment.shards[1].correct_replicas()[0].executor.state_machine
        shard0_store.txn_decisions["evil:1"] = "commit"
        shard1_store.txn_decisions["evil:1"] = "abort"

        checker = CrossShardAtomicity()
        violations = checker.check(deployment)
        assert len(violations) == 1
        assert "evil:1" in violations[0]
        assert "committed" in violations[0] and "aborted" in violations[0]

    def test_scenario_events_must_fire_within_the_duration(self):
        from repro.scenarios.sharded import ShardedScenario

        scenario = ShardedScenario(
            name="late-event",
            description="",
            duration=0.2,
            events=(OnShard(at=0.5, shard=0, event=Crash(at=0.0, target="primary")),),
        )
        with pytest.raises(ValueError):
            run_sharded_scenario(scenario)

    def test_isolate_shard_partitions_replicas_from_clients(self):
        from repro.scenarios.sharded import ShardedScenario, build_sharded_scenario_deployment

        scenario = ShardedScenario(name="probe", description="", duration=0.2)
        deployment = build_sharded_scenario_deployment(scenario)
        IsolateShard(at=0.0, shard=1).apply(deployment)
        conditions = deployment.network.conditions
        isolated = sorted(deployment.shards[1].replicas)
        client = deployment.clients[0].node_id
        other = sorted(deployment.shards[0].replicas)[0]
        import random

        rng = random.Random(0)
        assert conditions.should_drop(client, isolated[0], rng)
        assert conditions.should_drop(isolated[0], client, rng)
        assert not conditions.should_drop(client, other, rng)
