"""Unit tests for the network, node CPU accounting, and adverse conditions."""

import pytest

from repro.net import Network, NetworkConditions, Node, NodeCostModel, UniformLatencyModel
from repro.sim import Simulator


class RecordingNode(Node):
    """Test double that records every handled message."""

    def __init__(self, node_id, simulator, **kwargs):
        super().__init__(node_id, simulator, **kwargs)
        self.received = []

    def handle_message(self, src, payload):
        self.received.append((src, payload, self.now))


class SignedPayload:
    """Minimal payload advertising a signature and explicit wire size."""

    signed = True

    def __init__(self, body="x", size=128):
        self.body = body
        self._size = size

    def wire_size(self):
        return self._size


def build_network(seed=0, latency=None, conditions=None):
    sim = Simulator()
    network = Network(
        sim,
        latency_model=latency or UniformLatencyModel(base=0.001, jitter=0.0),
        conditions=conditions,
        seed=seed,
    )
    nodes = {}
    for name in ("a", "b", "c"):
        node = RecordingNode(name, sim)
        network.register(node)
        nodes[name] = node
    return sim, network, nodes


class TestNetworkDelivery:
    def test_send_delivers_to_destination(self):
        sim, network, nodes = build_network()
        nodes["a"].send("b", "hello")
        sim.run()
        assert len(nodes["b"].received) == 1
        src, payload, _ = nodes["b"].received[0]
        assert src == "a"
        assert payload == "hello"

    def test_delivery_takes_latency_plus_cpu_time(self):
        sim, network, nodes = build_network()
        nodes["a"].send("b", "hello")
        sim.run()
        _, _, arrival_time = nodes["b"].received[0]
        assert arrival_time > 0.001  # at least the link latency

    def test_multicast_reaches_all_other_nodes(self):
        sim, network, nodes = build_network()
        nodes["a"].multicast(["a", "b", "c"], "ping")
        sim.run()
        assert len(nodes["b"].received) == 1
        assert len(nodes["c"].received) == 1
        assert len(nodes["a"].received) == 0  # no self-delivery

    def test_duplicate_node_registration_rejected(self):
        sim, network, nodes = build_network()
        with pytest.raises(ValueError):
            network.register(RecordingNode("a", sim))

    def test_unknown_destination_dropped(self):
        sim, network, nodes = build_network()
        nodes["a"].send("ghost", "hello")
        sim.run()
        assert network.messages_dropped == 1

    def test_stats_counts(self):
        sim, network, nodes = build_network()
        nodes["a"].send("b", "one")
        nodes["a"].send("c", "two")
        sim.run()
        stats = network.stats()
        assert stats["messages_offered"] == 2
        assert stats["messages_delivered"] == 2
        assert stats["messages_dropped"] == 0
        assert stats["by_type"]["str"] == 2

    def test_node_send_and_handle_counters(self):
        sim, network, nodes = build_network()
        nodes["a"].send("b", "one")
        sim.run()
        assert nodes["a"].messages_sent == 1
        assert nodes["b"].messages_handled == 1
        assert nodes["a"].bytes_sent > 0

    def test_crashed_node_does_not_send(self):
        sim, network, nodes = build_network()
        nodes["a"].crash()
        nodes["a"].send("b", "hello")
        sim.run()
        assert nodes["b"].received == []

    def test_crashed_node_does_not_receive(self):
        sim, network, nodes = build_network()
        nodes["b"].crash()
        nodes["a"].send("b", "hello")
        sim.run()
        assert nodes["b"].received == []

    def test_signed_payload_costs_more_cpu(self):
        sim1, _, nodes1 = build_network()
        nodes1["a"].send("b", SignedPayload())
        sim1.run()
        signed_arrival = nodes1["b"].received[0][2]

        sim2, _, nodes2 = build_network()
        nodes2["a"].send("b", "x" * 128)
        sim2.run()
        plain_arrival = nodes2["b"].received[0][2]
        assert signed_arrival > plain_arrival

    def test_determinism_same_seed_same_history(self):
        def run(seed):
            jittery = UniformLatencyModel(base=0.001, jitter=0.001)
            sim, network, nodes = build_network(seed=seed, latency=jittery)
            for i in range(10):
                nodes["a"].send("b", f"m{i}")
            sim.run()
            return [t for _, _, t in nodes["b"].received]

        assert run(3) == run(3)
        assert run(3) != run(4)


class TestNetworkConditions:
    def test_full_drop_probability_loses_message(self):
        conditions = NetworkConditions()
        conditions.set_drop_probability("a", "b", 1.0)
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "hello")
        sim.run()
        assert nodes["b"].received == []
        assert network.messages_dropped == 1

    def test_default_drop_probability_applies_to_all_links(self):
        conditions = NetworkConditions()
        conditions.set_default_drop_probability(1.0)
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "x")
        nodes["a"].send("c", "y")
        sim.run()
        assert network.messages_dropped == 2

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions().set_drop_probability("a", "b", 1.5)

    def test_partition_blocks_cross_group_traffic(self):
        conditions = NetworkConditions()
        conditions.partition({"a"}, {"b", "c"})
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "blocked")
        nodes["b"].send("c", "allowed")
        sim.run()
        assert nodes["b"].received == []
        assert len(nodes["c"].received) == 1

    def test_heal_partition_restores_traffic(self):
        conditions = NetworkConditions()
        conditions.partition({"a"}, {"b"})
        conditions.heal_partition()
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "hello")
        sim.run()
        assert len(nodes["b"].received) == 1

    def test_unpartitioned_node_talks_to_everyone(self):
        conditions = NetworkConditions()
        conditions.partition({"a"}, {"b"})
        sim, network, nodes = build_network(conditions=conditions)
        nodes["c"].send("a", "hello")
        sim.run()
        assert len(nodes["a"].received) == 1

    def test_extra_delay_slows_link(self):
        conditions = NetworkConditions()
        conditions.set_extra_delay("a", "b", 0.5)
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "hello")
        sim.run()
        assert nodes["b"].received[0][2] > 0.5

    def test_negative_extra_delay_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions().set_extra_delay("a", "b", -0.1)

    def test_duplicate_link_delivers_twice(self):
        conditions = NetworkConditions()
        conditions.duplicate_link("a", "b")
        sim, network, nodes = build_network(conditions=conditions)
        nodes["a"].send("b", "hello")
        sim.run()
        assert len(nodes["b"].received) == 2

    def test_clear_extra_delays(self):
        conditions = NetworkConditions()
        conditions.set_extra_delay("a", "b", 0.5)
        conditions.clear_extra_delays()
        assert conditions.extra_delay("a", "b") == 0.0


class TestNodeCostModel:
    def test_receive_cost_grows_with_size(self):
        costs = NodeCostModel()
        assert costs.receive_cost(4096, signed=False) > costs.receive_cost(0, signed=False)

    def test_signed_receive_costs_more(self):
        costs = NodeCostModel()
        assert costs.receive_cost(100, signed=True) > costs.receive_cost(100, signed=False)

    def test_multiple_signatures_cost_more(self):
        costs = NodeCostModel()
        assert costs.receive_cost(100, True, verify_signatures=5) > costs.receive_cost(
            100, True, verify_signatures=1
        )

    def test_send_cost_signed_vs_unsigned(self):
        costs = NodeCostModel()
        assert costs.send_cost(100, signed=True) > costs.send_cost(100, signed=False)

    def test_transmission_delay_proportional_to_size(self):
        costs = NodeCostModel(bandwidth_bytes_per_second=1000.0)
        assert costs.transmission_delay(500) == pytest.approx(0.5)

    def test_zero_bandwidth_means_no_delay(self):
        costs = NodeCostModel(bandwidth_bytes_per_second=0.0)
        assert costs.transmission_delay(500) == 0.0
