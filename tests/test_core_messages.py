"""Unit tests for SeeMoRe protocol messages: signing, sizes, and content."""

import pytest

from repro.core import messages as msgs
from repro.core.modes import Mode
from repro.crypto import KeyStore
from repro.smr.messages import Reply, Request
from repro.smr.replica import request_digest
from repro.smr.state_machine import Operation


@pytest.fixture
def keys():
    keystore = KeyStore()
    for node in ("p0", "p1", "u0", "client-0"):
        keystore.register(node)
    return keystore


@pytest.fixture
def request_message(keys):
    request = Request(operation=Operation("put", ("k", "v")), timestamp=1, client_id="client-0")
    request.sign(keys.signer_for("client-0"))
    return request


class TestRequestAndReply:
    def test_request_signature_roundtrip(self, keys, request_message):
        assert request_message.verify(keys.verifier(), expected_signer="client-0")

    def test_request_signature_fails_for_wrong_signer(self, keys, request_message):
        assert not request_message.verify(keys.verifier(), expected_signer="p0")

    def test_request_wire_size_grows_with_payload(self, keys):
        small = Request(operation=Operation("noop"), timestamp=1, client_id="client-0")
        big = Request(
            operation=Operation("noop", payload="x" * 4096), timestamp=1, client_id="client-0"
        )
        assert big.wire_size() > small.wire_size() + 4000

    def test_reply_wire_size_includes_result_payload(self, keys):
        small = Reply(1, 0, 1, "client-0", "p0", {"ok": True, "payload": ""})
        big = Reply(1, 0, 1, "client-0", "p0", {"ok": True, "payload": "x" * 4096})
        assert big.wire_size() > small.wire_size() + 4000

    def test_reply_signing_covers_result(self, keys):
        reply = Reply(1, 0, 1, "client-0", "p0", {"ok": True, "value": 1})
        reply.sign(keys.signer_for("p0"))
        assert reply.verify(keys.verifier(), expected_signer="p0")
        reply.result = {"ok": True, "value": 2}
        assert not reply.verify(keys.verifier(), expected_signer="p0")

    def test_unsigned_message_verifies_trivially(self, keys):
        accept = msgs.Accept(view=0, sequence=1, digest="d", replica_id="p1", mode=1, signed=False)
        assert accept.verify(keys.verifier())


class TestProtocolMessages:
    def test_prepare_sign_verify(self, keys, request_message):
        prepare = msgs.Prepare(
            view=0,
            sequence=1,
            digest=request_digest(request_message),
            request=request_message,
            mode=int(Mode.LION),
        )
        prepare.sign(keys.signer_for("p0"))
        assert prepare.verify(keys.verifier(), expected_signer="p0")
        assert not prepare.verify(keys.verifier(), expected_signer="p1")

    def test_tampered_prepare_fails_verification(self, keys, request_message):
        prepare = msgs.Prepare(
            view=0,
            sequence=1,
            digest=request_digest(request_message),
            request=request_message,
            mode=int(Mode.LION),
        )
        prepare.sign(keys.signer_for("p0"))
        prepare.sequence = 99
        assert not prepare.verify(keys.verifier(), expected_signer="p0")

    def test_signed_flags_match_paper(self, request_message):
        # Lion accepts are unsigned; Dog accepts are signed.
        lion_accept = msgs.Accept(0, 1, "d", "p1", int(Mode.LION), signed=False)
        dog_accept = msgs.Accept(0, 1, "d", "u0", int(Mode.DOG), signed=True)
        assert not lion_accept.signed
        assert dog_accept.signed
        # Primary ordering messages and informs are always signed.
        assert msgs.Prepare(0, 1, "d", request_message, 1).signed
        assert msgs.PrePrepare(0, 1, "d", request_message, 3).signed
        assert msgs.Inform(0, 1, "d", "u0", 2).signed
        assert msgs.Checkpoint(10, "d", "p0", 1).signed

    def test_signed_accept_is_larger_than_unsigned(self):
        unsigned = msgs.Accept(0, 1, "d", "p1", 1, signed=False)
        signed = msgs.Accept(0, 1, "d", "u0", 2, signed=True)
        assert signed.wire_size() > unsigned.wire_size()

    def test_commit_with_request_is_larger(self, request_message):
        without = msgs.Commit(0, 1, "d", "u0", 2, request=None)
        with_request = msgs.Commit(0, 1, "d", "p0", 1, request=request_message)
        assert with_request.wire_size() > without.wire_size()

    def test_view_change_size_grows_with_entries(self, request_message):
        empty = msgs.ViewChange(1, 1, "p0", 0, "")
        entry = msgs.PreparedEntry(1, 0, "d", request_message)
        full = msgs.ViewChange(1, 1, "p0", 0, "", prepared=[entry] * 5)
        assert full.wire_size() > empty.wire_size()

    def test_new_view_signing(self, keys, request_message):
        entry = msgs.PreparedEntry(1, 0, request_digest(request_message), request_message)
        new_view = msgs.NewView(1, 1, "p1", 0, prepares=[entry])
        new_view.sign(keys.signer_for("p1"))
        assert new_view.verify(keys.verifier(), expected_signer="p1")

    def test_mode_change_signing(self, keys):
        mode_change = msgs.ModeChange(new_view=2, new_mode=int(Mode.DOG), replica_id="p0")
        mode_change.sign(keys.signer_for("p0"))
        assert mode_change.verify(keys.verifier(), expected_signer="p0")
        assert not mode_change.verify(keys.verifier(), expected_signer="u0")

    def test_state_transfer_messages(self, keys):
        request = msgs.StateTransferRequest(replica_id="u0", known_sequence=5)
        assert not request.signed
        response = msgs.StateTransferResponse(
            replica_id="p0",
            checkpoint_sequence=10,
            state_digest="d",
            snapshot={"next_sequence": 11},
        )
        response.sign(keys.signer_for("p0"))
        assert response.verify(keys.verifier(), expected_signer="p0")

    def test_prepared_entry_wire_roundtrip(self, request_message):
        entry = msgs.PreparedEntry(3, 1, "digest", request_message)
        wire = entry.to_wire()
        assert wire == {"sequence": 3, "view": 1, "digest": "digest"}
