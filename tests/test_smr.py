"""Unit tests for state machines, the ordered executor, and commit ledgers."""

import pytest

from repro.crypto import digest
from repro.smr import (
    CommitLedger,
    Counter,
    KeyValueStore,
    LedgerEntry,
    NullStateMachine,
    Operation,
    OrderedExecutor,
)
from repro.smr.ledger import assert_ledgers_consistent, find_safety_violations


class TestOperations:
    def test_wire_size_includes_payload(self):
        small = Operation("noop")
        big = Operation("noop", payload="x" * 4096)
        assert big.wire_size() > small.wire_size() + 4000

    def test_to_wire_is_json_friendly(self):
        op = Operation("put", ("k", "v"), payload="xy")
        wire = op.to_wire()
        assert wire["kind"] == "put"
        assert wire["payload_len"] == 2


class TestKeyValueStore:
    def setup_method(self):
        self.store = KeyValueStore()

    def test_put_and_get(self):
        self.store.apply(Operation("put", ("k", "v")))
        result = self.store.apply(Operation("get", ("k",)))
        assert result["value"] == "v"

    def test_get_missing_key(self):
        result = self.store.apply(Operation("get", ("missing",)))
        assert result["value"] is None

    def test_delete(self):
        self.store.apply(Operation("put", ("k", "v")))
        result = self.store.apply(Operation("delete", ("k",)))
        assert result["existed"] is True
        assert self.store.get("k") is None

    def test_delete_missing(self):
        result = self.store.apply(Operation("delete", ("nope",)))
        assert result["existed"] is False

    def test_scan_with_prefix(self):
        for key in ("user:1", "user:2", "order:1"):
            self.store.apply(Operation("put", (key, key)))
        result = self.store.apply(Operation("scan", ("user:",)))
        assert result["keys"] == ["user:1", "user:2"]

    def test_scan_without_prefix_returns_all(self):
        self.store.apply(Operation("put", ("a", 1)))
        self.store.apply(Operation("put", ("b", 2)))
        result = self.store.apply(Operation("scan"))
        assert result["keys"] == ["a", "b"]

    def test_unknown_operation_raises(self):
        with pytest.raises(ValueError):
            self.store.apply(Operation("frobnicate"))

    def test_snapshot_restore_roundtrip(self):
        self.store.apply(Operation("put", ("k", "v")))
        snapshot = self.store.snapshot()
        other = KeyValueStore()
        other.restore(snapshot)
        assert other.get("k") == "v"

    def test_len_counts_keys(self):
        self.store.apply(Operation("put", ("a", 1)))
        self.store.apply(Operation("put", ("b", 2)))
        assert len(self.store) == 2


class TestCounterAndNull:
    def test_counter_add_and_read(self):
        counter = Counter()
        counter.apply(Operation("add", (5,)))
        counter.apply(Operation("add", (3,)))
        assert counter.apply(Operation("read"))["value"] == 8

    def test_counter_snapshot_restore(self):
        counter = Counter()
        counter.apply(Operation("add", (7,)))
        other = Counter()
        other.restore(counter.snapshot())
        assert other.value == 7

    def test_counter_unknown_op(self):
        with pytest.raises(ValueError):
            Counter().apply(Operation("frobnicate"))

    def test_null_machine_echoes_payload_size(self):
        machine = NullStateMachine(reply_payload_size=16)
        result = machine.apply(Operation("noop"))
        assert len(result["payload"]) == 16

    def test_null_machine_counts_operations(self):
        machine = NullStateMachine()
        machine.apply(Operation("noop"))
        machine.apply(Operation("noop"))
        assert machine.operations_applied == 2


class TestOrderedExecutor:
    def setup_method(self):
        self.executor = OrderedExecutor(Counter())

    def test_in_order_execution(self):
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        self.executor.commit(2, "c1", 2, Operation("add", (2,)))
        assert self.executor.state_machine.value == 3
        assert self.executor.last_executed == 2

    def test_gap_buffers_until_filled(self):
        self.executor.commit(2, "c1", 2, Operation("add", (2,)))
        assert self.executor.state_machine.value == 0
        executed = self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        assert self.executor.state_machine.value == 3
        assert [e.sequence for e in executed] == [1, 2]

    def test_checkpoint_hook_fires_at_boundary_state(self):
        """The hook observes the state exactly at the boundary, even when one
        commit fills a gap and drains past the boundary in the same call."""
        observed = []
        self.executor.set_checkpoint_hook(
            2,
            lambda seq: observed.append(
                (seq, self.executor.next_sequence, self.executor.state_machine.value)
            ),
        )
        # Out-of-order arrival: 3 and 2 buffer, then 1 drains all three.
        self.executor.commit(3, "c1", 3, Operation("add", (30,)))
        self.executor.commit(2, "c1", 2, Operation("add", (20,)))
        self.executor.commit(1, "c1", 1, Operation("add", (10,)))
        # At the boundary (seq 2) the hook saw value 10+20, NOT the drain
        # frontier's 60 — matching what an in-order replica digests.
        assert observed == [(2, 3, 30)]

    def test_checkpoint_hook_matches_in_order_replica(self):
        def run(commit_order):
            snapshots = []
            executor = OrderedExecutor(Counter())
            executor.set_checkpoint_hook(
                2, lambda seq: snapshots.append((seq, executor.snapshot()["state"]))
            )
            for sequence in commit_order:
                executor.commit(sequence, "c1", sequence, Operation("add", (sequence,)))
            return snapshots

        assert run([1, 2, 3, 4]) == run([2, 4, 3, 1])

    def test_duplicate_commit_ignored(self):
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        assert self.executor.state_machine.value == 1

    def test_duplicate_request_uses_reply_cache(self):
        self.executor.commit(1, "c1", 5, Operation("add", (1,)))
        # Same client timestamp committed again under a different sequence
        # (can happen across view changes); must not double-execute.
        self.executor.commit(2, "c1", 5, Operation("add", (1,)))
        assert self.executor.state_machine.value == 1
        assert self.executor.already_executed("c1", 5)

    def test_cached_reply_returned(self):
        self.executor.commit(1, "c1", 5, Operation("add", (4,)))
        assert self.executor.cached_reply("c1", 5)["value"] == 4
        assert self.executor.cached_reply("c1", 99) is None

    def test_invalid_sequence_rejected(self):
        with pytest.raises(ValueError):
            self.executor.commit(0, "c1", 1, Operation("noop"))

    def test_commit_below_watermark_is_noop(self):
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        executed = self.executor.commit(1, "c2", 9, Operation("add", (100,)))
        assert executed == []
        assert self.executor.state_machine.value == 1

    def test_snapshot_restore_jumps_forward(self):
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        self.executor.commit(2, "c1", 2, Operation("add", (2,)))
        snapshot = self.executor.snapshot()

        lagging = OrderedExecutor(Counter())
        lagging.restore(snapshot)
        assert lagging.next_sequence == 3
        assert lagging.state_machine.value == 3

    def test_restore_never_moves_backwards(self):
        self.executor.commit(1, "c1", 1, Operation("add", (1,)))
        old_snapshot = {"next_sequence": 1, "state": 0, "replies": {}}
        self.executor.restore(old_snapshot)
        assert self.executor.next_sequence == 2
        assert self.executor.state_machine.value == 1

    def test_discard_below_drops_stale_pending(self):
        self.executor.commit(5, "c1", 5, Operation("add", (5,)))
        self.executor.discard_below(10)
        self.executor.restore({"next_sequence": 10, "state": 0, "replies": {}})
        self.executor.commit(10, "c1", 10, Operation("add", (10,)))
        assert self.executor.state_machine.value == 10

    def test_executed_history_grows_in_order(self):
        for seq in (3, 1, 2):
            self.executor.commit(seq, "c1", seq, Operation("add", (seq,)))
        assert [e.sequence for e in self.executor.executed] == [1, 2, 3]


class TestCommitLedger:
    def test_record_and_lookup(self):
        ledger = CommitLedger("r0")
        entry = LedgerEntry(1, digest("op"), 0, "c1", 1)
        ledger.record(entry)
        assert ledger.digest_at(1) == digest("op")
        assert 1 in ledger
        assert ledger.highest_committed == 1

    def test_re_record_same_digest_ok(self):
        ledger = CommitLedger("r0")
        entry = LedgerEntry(1, digest("op"), 0, "c1", 1)
        ledger.record(entry)
        ledger.record(entry)
        assert len(ledger) == 1

    def test_conflicting_record_raises(self):
        ledger = CommitLedger("r0")
        ledger.record(LedgerEntry(1, digest("op-a"), 0, "c1", 1))
        with pytest.raises(ValueError):
            ledger.record(LedgerEntry(1, digest("op-b"), 0, "c1", 1))

    def test_find_safety_violations_none_when_consistent(self):
        ledgers = [CommitLedger(f"r{i}") for i in range(3)]
        for ledger in ledgers:
            ledger.record(LedgerEntry(1, digest("op"), 0, "c1", 1))
        assert find_safety_violations(ledgers) == []

    def test_find_safety_violations_detects_divergence(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        first.record(LedgerEntry(1, digest("op-a"), 0, "c1", 1))
        second.record(LedgerEntry(1, digest("op-b"), 0, "c1", 1))
        violations = find_safety_violations([first, second])
        assert len(violations) == 1
        assert violations[0][0] == 1

    def test_assert_ledgers_consistent_raises_on_conflict(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        first.record(LedgerEntry(1, digest("op-a"), 0, "c1", 1))
        second.record(LedgerEntry(1, digest("op-b"), 0, "c1", 1))
        with pytest.raises(AssertionError):
            assert_ledgers_consistent([first, second])

    def test_disjoint_ledgers_are_consistent(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        first.record(LedgerEntry(1, digest("op-a"), 0, "c1", 1))
        second.record(LedgerEntry(2, digest("op-b"), 0, "c1", 2))
        assert_ledgers_consistent([first, second])

    def test_empty_ledger_properties(self):
        ledger = CommitLedger("r0")
        assert ledger.highest_committed == 0
        assert ledger.committed_sequences == []
        assert ledger.entry_at(1) is None
