"""Integration tests: every protocol processes client requests end to end.

These tests stand up complete deployments (replicas + network + closed-loop
clients) with no failures and check:

* liveness — clients complete requests;
* safety — all correct replicas commit the same requests in the same order;
* convergence — replicated state machines reach the same state;
* role behaviour — only the expected replicas reply to clients.
"""

import pytest

from repro.cluster import (
    build_paxos,
    build_pbft,
    build_seemore,
    build_upright,
    builder_for,
    run_deployment,
)
from repro.core import Mode
from repro.smr.ledger import assert_ledgers_consistent
from repro.workload import kv_workload, microbenchmark

pytestmark = pytest.mark.integration

RUN_KWARGS = dict(duration=0.5, warmup=0.1)


def run_small(builder, **kwargs):
    deployment = builder(
        crash_tolerance=1,
        byzantine_tolerance=1,
        num_clients=kwargs.pop("num_clients", 3),
        workload=kwargs.pop("workload", microbenchmark("0/0")),
        seed=kwargs.pop("seed", 1),
        **kwargs,
    )
    result = run_deployment(deployment, **RUN_KWARGS)
    return deployment, result


class TestSeeMoReModes:
    @pytest.mark.parametrize("mode", [Mode.LION, Mode.DOG, Mode.PEACOCK])
    def test_mode_completes_requests_safely(self, mode):
        deployment, result = run_small(build_seemore, mode=mode)
        assert result.completed > 50, f"{mode.name} should make steady progress"
        assert result.safety_violations == 0
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", [Mode.LION, Mode.DOG, Mode.PEACOCK])
    def test_replicas_converge_on_committed_prefix(self, mode):
        deployment, _ = run_small(build_seemore, mode=mode)
        executed = [replica.last_executed for replica in deployment.correct_replicas()]
        assert max(executed) > 0
        # Every replica that executed anything agrees with the others on the
        # committed prefix; allow stragglers that are still catching up.
        ledgers = deployment.correct_ledgers()
        assert_ledgers_consistent(ledgers)

    def test_lion_only_primary_replies(self):
        deployment, _ = run_small(build_seemore, mode=Mode.LION)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.LION)
        for replica_id, replica in deployment.replicas.items():
            if replica_id == primary:
                assert replica.replies_sent > 0
            else:
                assert replica.replies_sent == 0

    @pytest.mark.slow
    def test_dog_private_cloud_stays_passive(self):
        deployment, _ = run_small(build_seemore, mode=Mode.DOG)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.DOG)
        # Private replicas other than the primary neither reply nor vote,
        # but they still learn and execute every request via informs.
        for replica_id in config.private_replicas:
            replica = deployment.replicas[replica_id]
            assert replica.replies_sent == 0
            if replica_id != primary:
                assert replica.last_executed > 0

    @pytest.mark.slow
    def test_peacock_private_cloud_not_in_agreement(self):
        deployment, _ = run_small(build_seemore, mode=Mode.PEACOCK)
        config = deployment.extras["config"]
        for replica_id in config.private_replicas:
            replica = deployment.replicas[replica_id]
            assert replica.replies_sent == 0
            assert replica.last_executed > 0  # informed of results

    @pytest.mark.slow
    def test_proxies_reply_in_dog_mode(self):
        deployment, _ = run_small(build_seemore, mode=Mode.DOG)
        config = deployment.extras["config"]
        proxies = config.proxies_of_view(0, Mode.DOG)
        assert any(deployment.replicas[p].replies_sent > 0 for p in proxies)

    def test_kv_workload_converges(self):
        deployment, result = run_small(
            build_seemore, mode=Mode.LION, workload=kv_workload(seed=3), num_clients=2
        )
        assert result.completed > 20
        snapshots = [
            replica.executor.state_machine.snapshot()
            for replica in deployment.correct_replicas()
            if replica.last_executed >= result.completed - 5
        ]
        assert snapshots, "at least one replica should be fully caught up"
        # Replicas that executed the full prefix hold identical KV state.
        fully_caught_up = [
            replica.executor.state_machine.snapshot()
            for replica in deployment.correct_replicas()
            if replica.last_executed == max(r.last_executed for r in deployment.correct_replicas())
        ]
        assert all(snapshot == fully_caught_up[0] for snapshot in fully_caught_up)


class TestBaselines:
    @pytest.mark.slow
    def test_paxos_completes_requests(self):
        deployment, result = run_small(build_paxos)
        assert result.completed > 50
        assert result.safety_violations == 0

    @pytest.mark.slow
    def test_pbft_completes_requests(self):
        deployment, result = run_small(build_pbft)
        assert result.completed > 50
        assert result.safety_violations == 0

    @pytest.mark.slow
    def test_upright_completes_requests(self):
        deployment, result = run_small(build_upright)
        assert result.completed > 50
        assert result.safety_violations == 0

    @pytest.mark.slow
    def test_paxos_only_leader_replies(self):
        deployment, _ = run_small(build_paxos)
        config = deployment.extras["config"]
        leader = config.primary_of_view(0)
        for replica_id, replica in deployment.replicas.items():
            if replica_id == leader:
                assert replica.replies_sent > 0
            else:
                assert replica.replies_sent == 0

    @pytest.mark.slow
    def test_pbft_all_replicas_reply(self):
        deployment, _ = run_small(build_pbft)
        assert all(replica.replies_sent > 0 for replica in deployment.replicas.values())

    def test_network_sizes_match_paper_for_f2(self):
        # Figure 2(a): f=2 (c=1, m=1): SeeMoRe/S-UpRight 6, CFT 5, BFT 7.
        seemore = build_seemore(crash_tolerance=1, byzantine_tolerance=1)
        upright = build_upright(crash_tolerance=1, byzantine_tolerance=1)
        cft = build_paxos(crash_tolerance=1, byzantine_tolerance=1)
        bft = build_pbft(crash_tolerance=1, byzantine_tolerance=1)
        assert len(seemore.replicas) == 6
        assert len(upright.replicas) == 6
        assert len(cft.replicas) == 5
        assert len(bft.replicas) == 7


class TestBuilderRegistry:
    def test_builder_for_known_protocols(self):
        for name in ("seemore-lion", "seemore-dog", "seemore-peacock", "cft", "bft", "s-upright"):
            deployment = builder_for(name)(crash_tolerance=1, byzantine_tolerance=1, num_clients=1)
            assert deployment.protocol in (name, "cft", "bft", "s-upright") or name.startswith(
                deployment.protocol
            )

    def test_builder_for_unknown_protocol(self):
        with pytest.raises(KeyError):
            builder_for("raft")


@pytest.mark.slow
class TestThroughputOrdering:
    """Coarse performance-shape checks used by the paper's comparisons."""

    def test_lion_latency_close_to_cft_and_below_bft(self):
        _, lion = run_small(build_seemore, mode=Mode.LION, num_clients=4)
        _, cft = run_small(build_paxos, num_clients=4)
        _, bft = run_small(build_pbft, num_clients=4)
        assert lion.latency.mean < bft.latency.mean
        assert lion.latency.mean < 3.0 * cft.latency.mean

    def test_all_protocols_have_reasonable_latency(self):
        for builder in (build_paxos, build_pbft, build_upright):
            _, result = run_small(builder, num_clients=2)
            assert result.latency.mean < 0.05  # well under the client timeout
