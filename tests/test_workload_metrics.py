"""Unit tests for workloads, metrics collection, and the client pool."""

import pytest

from repro.smr.state_machine import KeyValueStore, NullStateMachine
from repro.workload import MetricsCollector, kv_workload, microbenchmark
from repro.workload.generator import KILOBYTE


class TestMicrobenchmarks:
    def test_zero_zero(self):
        workload = microbenchmark("0/0")
        assert workload.request_payload_bytes == 0
        assert workload.reply_payload_bytes == 0

    def test_zero_four(self):
        workload = microbenchmark("0/4")
        assert workload.request_payload_bytes == 0
        assert workload.reply_payload_bytes == 4 * KILOBYTE

    def test_four_zero(self):
        workload = microbenchmark("4/0")
        assert workload.request_payload_bytes == 4 * KILOBYTE
        assert workload.reply_payload_bytes == 0

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            microbenchmark("big")
        with pytest.raises(ValueError):
            microbenchmark("-1/0")

    def test_operation_factory_attaches_payload(self):
        factory = microbenchmark("4/0").operation_factory()
        operation = factory(1)
        assert len(operation.payload) == 4 * KILOBYTE

    def test_state_machine_factory_sets_reply_size(self):
        machine = microbenchmark("0/4").state_machine_factory()()
        assert isinstance(machine, NullStateMachine)
        result = machine.apply(factory_operation())
        assert len(result["payload"]) == 4 * KILOBYTE


def factory_operation():
    from repro.smr.state_machine import Operation

    return Operation("noop")


class TestKeyValueWorkload:
    def test_state_machine_is_kv_store(self):
        machine = kv_workload().state_machine_factory()()
        assert isinstance(machine, KeyValueStore)

    def test_mix_of_reads_and_writes(self):
        factory = kv_workload(read_fraction=0.5, seed=1).operation_factory()
        kinds = {factory(i).kind for i in range(100)}
        assert kinds == {"get", "put"}

    def test_pure_write_workload(self):
        factory = kv_workload(read_fraction=0.0, seed=1).operation_factory()
        assert all(factory(i).kind == "put" for i in range(50))

    def test_deterministic_given_seed(self):
        first = [op.kind for op in map(kv_workload(seed=4).operation_factory(), range(20))]
        second = [op.kind for op in map(kv_workload(seed=4).operation_factory(), range(20))]
        assert first == second

    def test_invalid_read_fraction(self):
        with pytest.raises(ValueError):
            kv_workload(read_fraction=1.5)


class TestMetricsCollector:
    def test_throughput_over_window(self):
        metrics = MetricsCollector()
        for i in range(10):
            metrics.record_completion("c0", i, sent_at=i * 0.1, completed_at=i * 0.1 + 0.05)
        # 10 completions spread over ~1 second.
        assert metrics.throughput(start=0.0, end=1.0) == pytest.approx(10.0, rel=0.2)

    def test_throughput_empty(self):
        assert MetricsCollector().throughput() == 0.0

    def test_latency_summary(self):
        metrics = MetricsCollector()
        for i, latency in enumerate([0.01, 0.02, 0.03, 0.04]):
            metrics.record_completion("c0", i, sent_at=0.0, completed_at=latency)
        summary = metrics.latency()
        assert summary.count == 4
        assert summary.mean == pytest.approx(0.025)
        assert summary.maximum == pytest.approx(0.04)
        # Interpolated percentile: the median of an even-sized sample falls
        # between the two middle order statistics.
        assert summary.p50 == pytest.approx(0.025)

    def test_latency_empty(self):
        summary = MetricsCollector().latency()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_invalid_completion_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector().record_completion("c0", 1, sent_at=1.0, completed_at=0.5)

    def test_windowed_latency_excludes_outside(self):
        metrics = MetricsCollector()
        metrics.record_completion("c0", 1, sent_at=0.0, completed_at=0.5)
        metrics.record_completion("c0", 2, sent_at=1.0, completed_at=5.0)
        summary = metrics.latency(start=0.0, end=1.0)
        assert summary.count == 1

    def test_timeline_bins(self):
        metrics = MetricsCollector()
        for i in range(10):
            metrics.record_completion("c0", i, sent_at=i * 0.1, completed_at=i * 0.1)
        bins = metrics.timeline(bin_width=0.5, start=0.0, end=1.0)
        assert len(bins) == 2
        total = sum(rate * 0.5 for _, rate in bins)
        assert total == pytest.approx(10.0, rel=0.01)

    def test_timeline_invalid_bin_width(self):
        with pytest.raises(ValueError):
            MetricsCollector().timeline(bin_width=0.0)

    def test_completions_by_client(self):
        metrics = MetricsCollector()
        metrics.record_completion("c0", 1, 0.0, 0.1)
        metrics.record_completion("c1", 1, 0.0, 0.1)
        metrics.record_completion("c0", 2, 0.1, 0.2)
        assert metrics.completions_by_client() == {"c0": 2, "c1": 1}


class TestPercentileEdges:
    """Pin the interpolated percentile estimator at its edges."""

    def test_empty_is_zero(self):
        from repro.workload.metrics import _percentile

        assert _percentile([], 0.5) == 0.0

    def test_single_sample_is_that_sample(self):
        from repro.workload.metrics import _percentile

        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert _percentile([0.7], fraction) == pytest.approx(0.7)

    def test_two_samples_interpolate(self):
        from repro.workload.metrics import _percentile

        assert _percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)

    def test_p999_near_maximum(self):
        from repro.workload.metrics import LatencySummary, _percentile

        values = [float(i) for i in range(1, 1001)]
        assert _percentile(values, 1.0) == pytest.approx(1000.0)
        assert 999.0 <= _percentile(values, 0.999) <= 1000.0
        summary = LatencySummary.of(values)
        assert 999.0 <= summary.p999 <= 1000.0
        assert summary.p999 <= summary.maximum

    def test_out_of_range_fraction_rejected(self):
        from repro.workload.metrics import _percentile

        with pytest.raises(ValueError):
            _percentile([1.0], 1.5)
        with pytest.raises(ValueError):
            _percentile([1.0], -0.1)

    def test_batch_summary_p50_interpolates(self):
        from repro.workload.metrics import BatchSizeSummary

        summary = BatchSizeSummary.of([1, 2, 3, 10])
        assert summary.p50 == pytest.approx(2.5)


class TestLatencyTimeline:
    def test_latency_timeline_bins_percentiles(self):
        metrics = MetricsCollector()
        # Bin [0, 0.5): fast completions; bin [0.5, 1.0): slow ones.
        for i in range(10):
            metrics.record_completion("c0", i, sent_at=0.1, completed_at=0.11)
        for i in range(10, 20):
            metrics.record_completion("c0", i, sent_at=0.6, completed_at=0.9)
        timeline = metrics.latency_timeline(bin_width=0.5, start=0.0, end=1.0)
        assert len(timeline) == 2
        (t0, fast), (t1, slow) = timeline
        assert (t0, t1) == (0.0, 0.5)
        assert fast.p50 == pytest.approx(0.01)
        assert slow.p50 == pytest.approx(0.3)

    def test_latency_timeline_invalid_bin_width(self):
        with pytest.raises(ValueError):
            MetricsCollector().latency_timeline(bin_width=0.0)
