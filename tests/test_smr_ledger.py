"""Dedicated tests for commit ledgers and cross-replica safety comparison."""

import pytest

from repro.smr.ledger import (
    CommitLedger,
    LedgerEntry,
    assert_ledgers_consistent,
    find_safety_violations,
)


def _entry(sequence, digest, view=0, client="c0", timestamp=None):
    return LedgerEntry(
        sequence=sequence,
        digest=digest,
        view=view,
        client_id=client,
        timestamp=timestamp if timestamp is not None else sequence,
    )


class TestCommitLedger:
    def test_record_and_lookup(self):
        ledger = CommitLedger("r0")
        ledger.record(_entry(1, "aaaa"))
        ledger.record(_entry(3, "cccc"))
        assert ledger.digest_at(1) == "aaaa"
        assert ledger.digest_at(2) is None
        assert ledger.entry_at(3).digest == "cccc"
        assert ledger.committed_sequences == [1, 3]
        assert ledger.highest_committed == 3
        assert len(ledger) == 2
        assert 1 in ledger and 2 not in ledger

    def test_empty_ledger_properties(self):
        ledger = CommitLedger("r0")
        assert ledger.committed_sequences == []
        assert ledger.highest_committed == 0
        assert len(ledger) == 0

    def test_rerecording_the_same_digest_is_a_noop(self):
        ledger = CommitLedger("r0")
        ledger.record(_entry(1, "aaaa"))
        ledger.record(_entry(1, "aaaa", view=2))  # e.g. a re-proposal recommit
        assert len(ledger) == 1
        assert ledger.entry_at(1).view == 0  # first record wins

    def test_local_divergence_is_rejected_immediately(self):
        # A single correct replica committing one slot twice with different
        # digests is a local safety violation, caught at record time.
        ledger = CommitLedger("r0")
        ledger.record(_entry(4, "aaaa"))
        with pytest.raises(ValueError, match="committed twice"):
            ledger.record(_entry(4, "bbbb"))

    def test_entries_since_scans_incrementally(self):
        ledger = CommitLedger("r0")
        for sequence in (1, 2, 3):
            ledger.record(_entry(sequence, f"d{sequence}"))
        first_pass = ledger.entries_since(0)
        assert [entry.sequence for entry in first_pass] == [1, 2, 3]
        offset = len(ledger)
        ledger.record(_entry(4, "d4"))
        second_pass = ledger.entries_since(offset)
        assert [entry.sequence for entry in second_pass] == [4]
        assert ledger.entries_since(len(ledger)) == []
        assert ledger.entries_since(10) == []


class TestFindSafetyViolations:
    def test_agreeing_prefixes_produce_no_violations(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        for sequence in range(1, 6):
            first.record(_entry(sequence, f"d{sequence}"))
        for sequence in range(1, 4):  # a shorter prefix is fine
            second.record(_entry(sequence, f"d{sequence}"))
        assert find_safety_violations([first, second]) == []
        assert_ledgers_consistent([first, second])

    def test_disjoint_sequences_cannot_conflict(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        first.record(_entry(1, "aaaa"))
        second.record(_entry(2, "bbbb"))
        assert find_safety_violations([first, second]) == []

    def test_conflicting_commit_is_reported_per_pair(self):
        first, second, third = CommitLedger("r0"), CommitLedger("r1"), CommitLedger("r2")
        first.record(_entry(7, "aaaa"))
        second.record(_entry(7, "bbbb"))
        third.record(_entry(7, "aaaa"))
        violations = find_safety_violations([first, second, third])
        # r0-vs-r1 and r1-vs-r2 conflict; r0-vs-r2 agree.
        assert len(violations) == 2
        assert {(v[1], v[3]) for v in violations} == {("r0", "r1"), ("r1", "r2")}
        sequence, _, digest_a, _, digest_b = violations[0]
        assert sequence == 7 and {digest_a, digest_b} == {"aaaa", "bbbb"}

    def test_assert_ledgers_consistent_raises_with_details(self):
        first, second = CommitLedger("r0"), CommitLedger("r1")
        first.record(_entry(2, "aaaa1234"))
        second.record(_entry(2, "bbbb5678"))
        with pytest.raises(AssertionError, match="sequence 2"):
            assert_ledgers_consistent([first, second])

    def test_single_or_empty_ledger_sets_are_trivially_safe(self):
        ledger = CommitLedger("r0")
        ledger.record(_entry(1, "aaaa"))
        assert find_safety_violations([ledger]) == []
        assert find_safety_violations([]) == []

    def test_divergence_after_an_agreeing_prefix_is_localized(self):
        # The prefix-agreement edge: two replicas agree on 1..3, diverge at
        # 4, and one of them keeps committing afterwards.  Only slot 4 is a
        # violation — agreement is per-sequence, not whole-log.
        first, second = CommitLedger("r0"), CommitLedger("r1")
        for sequence in (1, 2, 3):
            first.record(_entry(sequence, f"d{sequence}"))
            second.record(_entry(sequence, f"d{sequence}"))
        first.record(_entry(4, "fork-a"))
        second.record(_entry(4, "fork-b"))
        first.record(_entry(5, "d5"))
        violations = find_safety_violations([first, second])
        assert [v[0] for v in violations] == [4]
