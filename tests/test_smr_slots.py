"""Unit tests for slot bookkeeping (votes, digest matching, watermarks)."""

from repro.smr.slots import Slot, SlotLog


class TestSlot:
    def test_votes_are_per_sender(self):
        slot = Slot(sequence=1, digest="d")
        assert slot.record_vote("accept", "r0", None, "d") == 1
        assert slot.record_vote("accept", "r0", None, "d") == 1  # duplicate sender
        assert slot.record_vote("accept", "r1", None, "d") == 2

    def test_mismatching_digest_not_counted(self):
        slot = Slot(sequence=1, digest="d")
        slot.record_vote("accept", "r0", None, "d")
        slot.record_vote("accept", "r1", None, "other")
        assert slot.vote_count("accept") == 1
        assert slot.voters("accept") == ["r0"]

    def test_votes_without_digest_count_for_any_slot_digest(self):
        slot = Slot(sequence=1, digest="d")
        slot.record_vote("accept", "r0", None, None)
        assert slot.vote_count("accept") == 1

    def test_votes_banked_before_digest_known(self):
        slot = Slot(sequence=1)
        slot.record_vote("accept", "r0", None, "d")
        slot.record_vote("accept", "r1", None, "e")
        assert slot.vote_count("accept") == 2  # unknown digest: count everything
        slot.digest = "d"
        assert slot.vote_count("accept") == 1  # now filtered

    def test_has_vote_from(self):
        slot = Slot(sequence=1)
        slot.record_vote("commit", "r0", None, None)
        assert slot.has_vote_from("commit", "r0")
        assert not slot.has_vote_from("commit", "r1")
        assert not slot.has_vote_from("accept", "r0")


class TestSlotLog:
    def test_slot_created_on_demand(self):
        log = SlotLog()
        slot = log.slot(5)
        assert slot.sequence == 5
        assert 5 in log
        assert len(log) == 1

    def test_existing_slot_returns_none_when_absent(self):
        log = SlotLog()
        assert log.existing_slot(3) is None

    def test_slots_above_and_uncommitted(self):
        log = SlotLog()
        for sequence in (1, 2, 3):
            log.slot(sequence)
        log.slot(2).committed = True
        assert [slot.sequence for slot in log.slots_above(1)] == [2, 3]
        assert [slot.sequence for slot in log.uncommitted_slots()] == [1, 3]

    def test_collect_below_discards_and_sets_watermark(self):
        log = SlotLog()
        for sequence in range(1, 11):
            log.slot(sequence)
        discarded = log.collect_below(5)
        assert discarded == 5
        assert log.low_watermark == 5
        assert log.sequences == [6, 7, 8, 9, 10]

    def test_collect_below_is_monotonic(self):
        log = SlotLog()
        log.slot(10)
        log.collect_below(8)
        assert log.collect_below(4) == 0
        assert log.low_watermark == 8

    def test_slot_below_watermark_is_throwaway(self):
        log = SlotLog()
        log.slot(10)
        log.collect_below(10)
        stale = log.slot(3)
        stale.digest = "x"
        assert log.existing_slot(3) is None

    def test_highest_sequence(self):
        log = SlotLog()
        assert log.highest_sequence() == 0
        log.slot(7)
        log.slot(3)
        assert log.highest_sequence() == 7
