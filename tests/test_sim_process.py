"""Unit tests for the single-threaded server process (CPU cost model)."""

import pytest

from repro.sim import Process, ProcessState, Simulator


class TestProcess:
    def test_work_runs_after_cost(self):
        sim = Simulator()
        process = Process(sim)
        done_at = []
        process.submit(2.0, lambda: done_at.append(sim.now))
        sim.run()
        assert done_at == [2.0]

    def test_work_is_serialized(self):
        sim = Simulator()
        process = Process(sim)
        done_at = []
        process.submit(1.0, lambda: done_at.append(sim.now))
        process.submit(1.0, lambda: done_at.append(sim.now))
        process.submit(1.0, lambda: done_at.append(sim.now))
        sim.run()
        assert done_at == [1.0, 2.0, 3.0]

    def test_queue_depth_counts_waiting_items(self):
        sim = Simulator()
        process = Process(sim)
        process.submit(1.0, lambda: None)
        process.submit(1.0, lambda: None)
        process.submit(1.0, lambda: None)
        assert process.queue_depth == 2  # one running, two waiting

    def test_negative_cost_rejected(self):
        sim = Simulator()
        process = Process(sim)
        with pytest.raises(ValueError):
            process.submit(-1.0, lambda: None)

    def test_zero_cost_work_allowed(self):
        sim = Simulator()
        process = Process(sim)
        done = []
        process.submit(0.0, lambda: done.append(True))
        sim.run()
        assert done == [True]

    def test_crash_drops_queued_work(self):
        sim = Simulator()
        process = Process(sim)
        done = []
        process.submit(1.0, lambda: done.append("a"))
        process.submit(1.0, lambda: done.append("b"))
        sim.call_later(0.5, process.crash)
        sim.run()
        assert done == []
        assert process.state is ProcessState.CRASHED

    def test_crashed_process_rejects_new_work(self):
        sim = Simulator()
        process = Process(sim)
        process.crash()
        done = []
        process.submit(1.0, lambda: done.append(True))
        sim.run()
        assert done == []

    def test_recover_allows_new_work(self):
        sim = Simulator()
        process = Process(sim)
        process.crash()
        process.recover()
        done = []
        process.submit(1.0, lambda: done.append(True))
        sim.run()
        assert done == [True]

    def test_busy_time_accumulates(self):
        sim = Simulator()
        process = Process(sim)
        process.submit(1.0, lambda: None)
        process.submit(2.5, lambda: None)
        sim.run()
        assert process.busy_time == pytest.approx(3.5)
        assert process.items_processed == 2

    def test_utilisation_fraction(self):
        sim = Simulator()
        process = Process(sim)
        process.submit(1.0, lambda: None)
        sim.run(until=4.0)
        assert process.utilisation() == pytest.approx(0.25)

    def test_utilisation_with_zero_elapsed(self):
        sim = Simulator()
        process = Process(sim)
        assert process.utilisation() == 0.0

    def test_work_submitted_from_handler_runs(self):
        sim = Simulator()
        process = Process(sim)
        done_at = []

        def first():
            done_at.append(sim.now)
            process.submit(2.0, lambda: done_at.append(sim.now))

        process.submit(1.0, first)
        sim.run()
        assert done_at == [1.0, 3.0]
