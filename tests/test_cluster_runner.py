"""Unit tests for deployment builders and the experiment runners."""

import pytest

from repro.cluster import (
    build_paxos,
    build_pbft,
    build_seemore,
    build_upright,
    run_deployment,
    run_timeline,
    sweep_clients,
)
from repro.cluster.runner import peak_throughput
from repro.core import Mode
from repro.faults import FaultPlan
from repro.net.topology import Cloud


class TestBuilders:
    def test_seemore_layout_matches_paper(self):
        deployment = build_seemore(crash_tolerance=2, byzantine_tolerance=2, num_clients=1)
        config = deployment.extras["config"]
        assert config.private_size == 4          # 2c
        assert config.public_size == 7           # 3m+1
        assert len(deployment.replicas) == 11    # 3m+2c+1
        assert deployment.placement.nodes_in(Cloud.PRIVATE) == list(config.private_replicas)
        assert set(deployment.placement.nodes_in(Cloud.PUBLIC)) == set(config.public_replicas)

    def test_baseline_sizes(self):
        assert len(build_paxos(crash_tolerance=1, byzantine_tolerance=1).replicas) == 5
        assert len(build_pbft(crash_tolerance=1, byzantine_tolerance=1).replicas) == 7
        assert len(build_upright(crash_tolerance=1, byzantine_tolerance=1).replicas) == 6
        assert len(build_upright(crash_tolerance=3, byzantine_tolerance=1).replicas) == 10
        assert len(build_upright(crash_tolerance=1, byzantine_tolerance=3).replicas) == 12

    def test_clients_are_registered_and_placed(self):
        deployment = build_seemore(num_clients=3)
        assert len(deployment.clients) == 3
        for client in deployment.clients:
            assert deployment.placement.cloud_of(client.node_id) is Cloud.CLIENT
            assert deployment.network.knows(client.node_id)

    def test_protocol_names(self):
        assert build_seemore(mode=Mode.DOG).protocol == "seemore-dog"
        assert build_paxos().protocol == "cft"
        assert build_pbft().protocol == "bft"
        assert build_upright().protocol == "s-upright"

    def test_cross_cloud_latency_is_configurable(self):
        deployment = build_seemore(cross_cloud_latency=0.05)
        latency_model = deployment.network.latency_model
        assert latency_model.cross_cloud == 0.05
        assert latency_model.intra_cloud != 0.05


class TestRunDeployment:
    def test_run_produces_metrics(self):
        deployment = build_seemore(num_clients=2, seed=3)
        result = run_deployment(deployment, duration=0.4, warmup=0.1)
        assert result.completed > 0
        assert result.throughput > 0
        assert result.latency.mean > 0
        assert result.duration == pytest.approx(0.4, rel=0.01)
        assert result.safety_violations == 0

    def test_run_result_row_has_paper_units(self):
        deployment = build_seemore(num_clients=2, seed=3)
        result = run_deployment(deployment, duration=0.3, warmup=0.05)
        row = result.as_row()
        assert row["throughput_kreqs_per_s"] == pytest.approx(result.throughput / 1000, rel=0.01)
        assert row["mean_latency_ms"] == pytest.approx(result.latency.mean * 1000, rel=0.01)

    def test_invalid_duration_rejected(self):
        deployment = build_seemore(num_clients=1)
        with pytest.raises(ValueError):
            run_deployment(deployment, duration=0.0)

    @pytest.mark.slow
    def test_more_clients_more_throughput_until_saturation(self):
        results = sweep_clients(
            build_seemore,
            client_counts=[1, 8],
            duration=0.4,
            warmup=0.1,
            crash_tolerance=1,
            byzantine_tolerance=1,
            mode=Mode.LION,
            seed=5,
        )
        assert results[1].throughput > results[0].throughput
        assert peak_throughput(results) == max(r.throughput for r in results)

    def test_sweep_returns_one_result_per_count(self):
        results = sweep_clients(
            build_paxos, client_counts=[1, 2, 4], duration=0.2, warmup=0.05, seed=2
        )
        assert [r.clients for r in results] == [1, 2, 4]


class TestRunTimeline:
    def test_timeline_has_expected_bins(self):
        deployment = build_seemore(num_clients=2, seed=4)
        bins = run_timeline(deployment, duration=0.3, bin_width=0.05)
        assert len(bins) == 6
        assert any(rate > 0 for _, rate in bins)

    def test_fault_plan_is_applied(self):
        deployment = build_seemore(num_clients=2, seed=4, client_timeout=0.1)
        config = deployment.extras["config"]
        plan = FaultPlan().crash_primary_at(0.1)
        bins = run_timeline(deployment, duration=0.8, bin_width=0.05, fault_schedule=list(plan))
        primary = deployment.replicas[config.primary_of_view(0, Mode.LION)]
        assert primary.crashed
        # Throughput dips around the crash and recovers afterwards.
        after = [rate for start, rate in bins if start >= 0.4]
        assert max(after) > 0
