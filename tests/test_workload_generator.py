"""Key-distribution and sharded-workload generation tests."""

from collections import Counter

import pytest

from repro.shard import HashPartitioner
from repro.smr.state_machine import TransactionalKeyValueStore
from repro.workload import kv_workload, sharded_kv_workload
from repro.workload.generator import KeyValueWorkload, ShardedKeyValueWorkload


def _key_frequencies(workload, samples=4000, client_seed=0):
    factory = workload.operation_factory(client_seed=client_seed)
    counts = Counter()
    for timestamp in range(samples):
        operation = factory(timestamp)
        if operation.kind in ("put", "get"):
            counts[operation.args[0]] += 1
    return counts


class TestZipfianDistribution:
    def test_seed_determinism(self):
        first = kv_workload(seed=9, key_distribution="zipfian").operation_factory(client_seed=3)
        second = kv_workload(seed=9, key_distribution="zipfian").operation_factory(client_seed=3)
        assert [first(t).args[0] for t in range(200)] == [second(t).args[0] for t in range(200)]

    def test_different_seeds_differ(self):
        first = kv_workload(seed=9, key_distribution="zipfian").operation_factory()
        second = kv_workload(seed=10, key_distribution="zipfian").operation_factory()
        assert [first(t).args for t in range(50)] != [second(t).args for t in range(50)]

    def test_hot_keys_dominate(self):
        workload = kv_workload(key_space=1000, seed=5, key_distribution="zipfian", zipf_theta=0.99)
        counts = _key_frequencies(workload)
        total = sum(counts.values())
        # Under uniform choice the top key would see ~total/1000 samples; a
        # Zipf(0.99) head must be more than an order of magnitude above that.
        assert counts["key-0"] > 10 * (total / 1000)
        top_ten = sum(counts[f"key-{rank}"] for rank in range(10))
        assert top_ten / total > 0.25

    def test_steeper_theta_concentrates_more(self):
        mild = _key_frequencies(kv_workload(seed=5, key_distribution="zipfian", zipf_theta=0.5))
        steep = _key_frequencies(kv_workload(seed=5, key_distribution="zipfian", zipf_theta=1.2))
        assert steep["key-0"] > mild["key-0"]

    def test_uniform_stays_flat(self):
        counts = _key_frequencies(kv_workload(key_space=50, seed=5))
        assert max(counts.values()) < 4 * min(counts.values())

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError):
            kv_workload(key_distribution="pareto").operation_factory()
        with pytest.raises(ValueError):
            KeyValueWorkload(
                name="bad", key_distribution="zipfian", zipf_theta=0.0
            ).operation_factory()


class TestShardedWorkload:
    def test_cross_shard_fraction_controls_transaction_mix(self):
        workload = sharded_kv_workload(seed=4, cross_shard_fraction=0.3)
        factory = workload.operation_factory()
        kinds = Counter(factory(t).kind for t in range(2000))
        fraction = kinds["txn"] / 2000
        assert 0.2 < fraction < 0.4
        assert kinds["txn"] + kinds["put"] + kinds["get"] == 2000

    def test_zero_fraction_emits_no_transactions(self):
        factory = sharded_kv_workload(seed=4, cross_shard_fraction=0.0).operation_factory()
        assert all(factory(t).kind != "txn" for t in range(500))

    def test_transactions_span_shards_when_partitioned(self):
        partitioner = HashPartitioner(num_shards=4)
        workload = sharded_kv_workload(
            seed=4, cross_shard_fraction=1.0, partitioner=partitioner
        )
        factory = workload.operation_factory()
        for timestamp in range(300):
            operation = factory(timestamp)
            owners = {partitioner.shard_of_key(write[1]) for write in operation.args}
            assert len(owners) >= 2, f"transaction {operation.args} stayed on one shard"

    def test_with_partitioner_returns_a_configured_copy(self):
        base = sharded_kv_workload(seed=4)
        partitioner = HashPartitioner(num_shards=2)
        attached = base.with_partitioner(partitioner)
        assert base.partitioner is None
        assert attached.partitioner is partitioner
        assert attached.cross_shard_fraction == base.cross_shard_fraction

    def test_state_machine_is_transactional(self):
        machine = sharded_kv_workload().state_machine_factory()()
        assert isinstance(machine, TransactionalKeyValueStore)

    def test_validation(self):
        with pytest.raises(ValueError):
            sharded_kv_workload(cross_shard_fraction=1.5)
        with pytest.raises(ValueError):
            ShardedKeyValueWorkload(name="bad", txn_size=1).operation_factory()

    def test_deterministic_per_client_seed(self):
        first = sharded_kv_workload(seed=8, cross_shard_fraction=0.5).operation_factory(2)
        second = sharded_kv_workload(seed=8, cross_shard_fraction=0.5).operation_factory(2)
        assert [repr(first(t)) for t in range(100)] == [repr(second(t)) for t in range(100)]


class TestWorkloadSpec:
    def test_build_from_string_is_micro(self):
        from repro.workload.generator import Workload

        workload = Workload.build("0/4")
        assert isinstance(workload, Workload)
        assert workload.name == "0/4"
        assert workload.reply_payload_bytes == 4 * 1024

    def test_build_kv(self):
        from repro.workload.generator import Workload, WorkloadSpec

        workload = Workload.build(
            WorkloadSpec(kind="kv", key_space=50, read_fraction=1.0, seed=2)
        )
        assert isinstance(workload, KeyValueWorkload)

    def test_build_sharded_kv(self):
        from repro.workload.generator import Workload, WorkloadSpec

        workload = Workload.build(
            WorkloadSpec(kind="sharded-kv", cross_shard_fraction=0.25, seed=2)
        )
        assert isinstance(workload, ShardedKeyValueWorkload)

    def test_invalid_kind_rejected(self):
        from repro.workload.generator import WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec(kind="nope")

    def test_invalid_read_fraction_rejected(self):
        from repro.workload.generator import WorkloadSpec

        with pytest.raises(ValueError):
            WorkloadSpec(kind="kv", read_fraction=1.5)


class TestDeprecatedFactoryShims:
    """The legacy factories still work, as one-line deprecating shims."""

    def test_microbenchmark_warns_and_matches_build(self):
        from repro.workload.generator import Workload, microbenchmark

        with pytest.warns(DeprecationWarning):
            legacy = microbenchmark("4/0")
        built = Workload.build("4/0")
        assert legacy.name == built.name
        assert legacy.request_payload_bytes == built.request_payload_bytes
        assert legacy.reply_payload_bytes == built.reply_payload_bytes

    def test_kv_workload_warns_and_matches_build(self):
        from repro.workload.generator import Workload, WorkloadSpec, kv_workload

        with pytest.warns(DeprecationWarning):
            legacy = kv_workload(key_space=40, value_size=32, read_fraction=0.5, seed=9)
        built = Workload.build(
            WorkloadSpec(kind="kv", key_space=40, value_size=32, read_fraction=0.5, seed=9)
        )
        assert type(legacy) is type(built)
        legacy_ops = [legacy.operation_factory(client_seed=1)(t) for t in range(20)]
        built_ops = [built.operation_factory(client_seed=1)(t) for t in range(20)]
        assert legacy_ops == built_ops

    def test_sharded_kv_workload_warns_and_matches_build(self):
        from repro.workload.generator import (
            Workload,
            WorkloadSpec,
            sharded_kv_workload,
        )

        with pytest.warns(DeprecationWarning):
            legacy = sharded_kv_workload(cross_shard_fraction=0.3, seed=4)
        built = Workload.build(
            WorkloadSpec(kind="sharded-kv", cross_shard_fraction=0.3, seed=4)
        )
        assert type(legacy) is type(built)
        assert legacy.name == built.name
