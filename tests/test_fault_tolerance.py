"""Fault-tolerance integration tests.

These exercise the paper's failure model end to end:

* crash failures in the private cloud (including the primary, which forces
  a view change in every mode);
* Byzantine failures in the public cloud (silent, lying, equivocating, and
  corrupt-signature replicas), which the quorums must absorb;
* combined crash + Byzantine failures up to the configured bounds.

Every test asserts both liveness (clients keep completing requests after
the fault) and safety (correct replicas never diverge).
"""

import pytest

from repro.cluster import build_paxos, build_pbft, build_seemore, build_upright, run_deployment
from repro.core import Mode
from repro.faults import crash_primary, crash_replica, make_byzantine
from repro.smr.ledger import assert_ledgers_consistent
from repro.workload import microbenchmark


def build(mode, **kwargs):
    return build_seemore(
        crash_tolerance=kwargs.pop("crash_tolerance", 1),
        byzantine_tolerance=kwargs.pop("byzantine_tolerance", 1),
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 2),
        seed=kwargs.pop("seed", 7),
        client_timeout=kwargs.pop("client_timeout", 0.1),
        **kwargs,
    )


def run_with_fault(deployment, fault, fault_at=0.15, total=1.2):
    """Run, apply ``fault(deployment)`` at ``fault_at``, keep running, report."""
    simulator = deployment.simulator
    deployment.start_clients()
    simulator.run(until=fault_at)
    completed_before = deployment.metrics.completed
    fault(deployment)
    simulator.run(until=total)
    deployment.stop_clients()
    completed_after = deployment.metrics.completed
    return completed_before, completed_after


pytestmark = pytest.mark.integration


class TestCrashFaults:
    @pytest.mark.parametrize(
        "mode",
        [
            Mode.LION,
            pytest.param(Mode.DOG, marks=pytest.mark.slow),
            pytest.param(Mode.PEACOCK, marks=pytest.mark.slow),
        ],
    )
    def test_primary_crash_triggers_view_change_and_recovers(self, mode):
        deployment = build(mode)
        before, after = run_with_fault(deployment, crash_primary)
        assert before > 0, "requests must complete before the crash"
        assert after > before + 10, f"{mode.name}: progress must resume after the view change"
        assert_ledgers_consistent(deployment.correct_ledgers())
        surviving_views = {r.view for r in deployment.correct_replicas()}
        assert max(surviving_views) >= 1, "a new view must have been installed"

    @pytest.mark.slow
    def test_lion_tolerates_backup_crash(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        backup = config.private_replicas[1]
        before, after = run_with_fault(
            deployment, lambda d: crash_replica(d, backup)
        )
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    def test_lion_tolerates_public_node_crash(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        victim = config.public_replicas[0]
        before, after = run_with_fault(deployment, lambda d: crash_replica(d, victim))
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    @pytest.mark.parametrize("mode", [Mode.DOG, Mode.PEACOCK])
    def test_proxy_crash_is_absorbed_by_quorum(self, mode):
        deployment = build(mode)
        config = deployment.extras["config"]
        proxies = config.proxies_of_view(0, mode)
        victim = next(p for p in proxies if p != config.primary_of_view(0, mode))
        before, after = run_with_fault(deployment, lambda d: crash_replica(d, victim))
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    def test_paxos_leader_crash_recovers(self):
        deployment = build_paxos(
            crash_tolerance=1, byzantine_tolerance=1, num_clients=2, seed=7, client_timeout=0.1
        )
        before, after = run_with_fault(deployment, crash_primary)
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    @pytest.mark.parametrize("builder", [build_pbft, build_upright])
    def test_bft_style_primary_crash_recovers(self, builder):
        deployment = builder(
            crash_tolerance=1, byzantine_tolerance=1, num_clients=2, seed=7, client_timeout=0.1
        )
        before, after = run_with_fault(deployment, crash_primary)
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())


class TestByzantineFaults:
    @pytest.mark.parametrize(
        "mode",
        [
            Mode.LION,
            pytest.param(Mode.DOG, marks=pytest.mark.slow),
            pytest.param(Mode.PEACOCK, marks=pytest.mark.slow),
        ],
    )
    @pytest.mark.parametrize(
        "strategy",
        ["lie", pytest.param("silent", marks=pytest.mark.slow),
         pytest.param("corrupt", marks=pytest.mark.slow)],
    )
    def test_one_byzantine_public_replica_is_tolerated(self, mode, strategy):
        deployment = build(mode)
        config = deployment.extras["config"]
        # Pick a public replica that is not the Peacock primary so the attack
        # targets a backup/proxy (primary attacks are covered separately).
        primary = config.primary_of_view(0, mode)
        victim = next(r for r in config.public_replicas if r != primary)
        before, after = run_with_fault(
            deployment, lambda d: make_byzantine(d, victim, strategy)
        )
        assert after > before + 10, f"{mode.name} must absorb a {strategy} Byzantine replica"
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    def test_byzantine_peacock_primary_is_replaced(self):
        deployment = build(Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.PEACOCK)
        before, after = run_with_fault(
            deployment, lambda d: make_byzantine(d, primary, "silent"), total=1.5
        )
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())
        assert max(r.view for r in deployment.correct_replicas()) >= 1

    @pytest.mark.slow
    def test_equivocating_peacock_primary_cannot_split_state(self):
        deployment = build(Mode.PEACOCK)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.PEACOCK)
        run_with_fault(
            deployment, lambda d: make_byzantine(d, primary, "equivocate"), total=1.5
        )
        # Regardless of how much progress was possible, correct replicas must
        # never have committed conflicting requests.
        assert_ledgers_consistent(deployment.correct_ledgers())

    def test_byzantine_in_private_cloud_is_rejected_by_injector(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        with pytest.raises(ValueError):
            make_byzantine(deployment, config.private_replicas[0], "silent")

    def test_unknown_strategy_rejected(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        with pytest.raises(ValueError):
            make_byzantine(deployment, config.public_replicas[0], "steal-keys")

    @pytest.mark.slow
    def test_lying_replicas_cannot_fool_clients(self):
        deployment = build(Mode.DOG)
        config = deployment.extras["config"]
        primary = config.primary_of_view(0, Mode.DOG)
        victim = next(r for r in config.public_replicas if r != primary)
        make_byzantine(deployment, victim, "lie")
        result = run_deployment(deployment, duration=0.6, warmup=0.1)
        assert result.completed > 10
        # Clients only accept results matching a quorum, so no accepted
        # result can be the forged one.
        for client in deployment.clients:
            assert all(not record.retransmitted or True for record in client.completed)
        assert_ledgers_consistent(deployment.correct_ledgers())


class TestCombinedFaults:
    @pytest.mark.slow
    def test_crash_plus_byzantine_at_the_bound(self):
        deployment = build(Mode.LION, num_clients=3)
        config = deployment.extras["config"]
        backup = config.private_replicas[1]          # c = 1 crash in private cloud
        primary = config.primary_of_view(0, Mode.LION)
        byzantine = next(r for r in config.public_replicas if r != primary)

        def inject(d):
            crash_replica(d, backup)
            make_byzantine(d, byzantine, "silent")

        before, after = run_with_fault(deployment, inject)
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    def test_f4_configuration_tolerates_mixed_faults(self):
        deployment = build_seemore(
            crash_tolerance=2,
            byzantine_tolerance=2,
            mode=Mode.LION,
            num_clients=2,
            seed=11,
            client_timeout=0.1,
        )
        config = deployment.extras["config"]

        def inject(d):
            crash_replica(d, config.private_replicas[1])
            make_byzantine(d, config.public_replicas[1], "silent")
            make_byzantine(d, config.public_replicas[2], "corrupt")

        before, after = run_with_fault(deployment, inject, total=1.5)
        assert after > before + 10
        assert_ledgers_consistent(deployment.correct_ledgers())
