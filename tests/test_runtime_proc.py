"""Supervisor behavior of the multiprocess runtime backend.

Conformance (proc commits exactly what the sim oracle commits) lives in
``test_runtime_conformance.py``; timer/CPU contracts in
``test_runtime_timers.py``.  Here the subject is the supervisor itself:
stats collection, worker-death detection, crash survival at f=1, and the
clean-shutdown guarantee (no orphaned process ever outlives a run).
"""

import importlib.util
import os
import pathlib
import signal
import sys
import time

import pytest

from repro.cluster.builders import build_proc_seemore
from repro.core import Mode


def _wait_for_progress(cluster, worker, minimum, timeout):
    """Poll the stats stream until ``worker``'s progress reaches ``minimum``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        cluster.poll()
        value = cluster.progress.get(worker)
        if isinstance(value, int) and value >= minimum:
            return value
        time.sleep(0.01)
    raise AssertionError(
        f"worker {worker!r} never reached progress {minimum} "
        f"(last seen: {cluster.progress.get(worker)!r})"
    )


def _assert_fully_reaped(cluster, result):
    """The clean-shutdown postcondition: every worker process is gone."""
    for name, process in cluster.processes.items():
        assert not process.is_alive(), f"worker {name!r} outlived shutdown"
        assert result.exitcodes[name] is not None


def test_proc_cluster_commits_and_streams_stats():
    cluster = build_proc_seemore(
        mode=Mode.LION, num_procs=2, num_requests=60, window=8,
        stats_interval=0.05,
    )
    result = cluster.run(timeout=60.0)
    assert result.met, (result.deaths, result.errors)
    assert result.deaths == []
    assert result.errors == []
    assert result.harvests["client"]["completed"] >= 60

    # Per-node stats arrive in the same fields the sim/aio backends fill.
    node_stats = result.node_stats()
    for replica_id in cluster.extras["config"].all_replicas:
        assert replica_id in node_stats
        assert node_stats[replica_id]["items_processed"] > 0
        assert node_stats[replica_id]["busy_time"] > 0.0
    assert result.messages_delivered() > 0
    assert result.bytes_delivered() > 0
    counts = result.message_type_counts()
    assert counts and all(count > 0 for count in counts.values())

    # Every worker exited voluntarily with a zero status.
    assert set(result.exitcodes.values()) == {0}
    _assert_fully_reaped(cluster, result)


def test_replica_worker_crash_is_reported_and_survivors_keep_committing():
    """Kill one replica process mid-run: f=1 must absorb it.

    In Lion mode agreement runs in the private cloud, so a worker hosting
    only public replicas is expendable; the supervisor must report the
    death, the client must still complete every request, and shutdown
    must reap everything within its hard grace deadline.
    """
    cluster = build_proc_seemore(
        mode=Mode.LION, num_procs=3, num_requests=100, window=8,
        stats_interval=0.05, seed=3,
    )
    public = set(cluster.extras["config"].public_replicas)
    victims = [
        name for name, ids in cluster.extras["replica_groups"].items()
        if set(ids) <= public
    ]
    assert victims, cluster.extras["replica_groups"]
    victim = victims[0]

    cluster.start()
    try:
        _wait_for_progress(cluster, "client", 40, timeout=30.0)
        cluster.kill_worker(victim)
        met = cluster.wait(timeout=60.0)
    finally:
        shutdown_started = time.monotonic()
        result = cluster.shutdown(grace=10.0)
    assert time.monotonic() - shutdown_started < 15.0
    assert met, (result.deaths, result.errors, cluster.progress)
    assert victim in result.deaths
    assert result.exitcodes[victim] == -signal.SIGKILL
    assert result.harvests["client"]["completed"] >= 100
    # The dead worker ships no harvest; every survivor does.
    assert victim not in result.harvests
    for name in cluster.extras["replica_groups"]:
        if name != victim:
            assert name in result.harvests
    _assert_fully_reaped(cluster, result)


def test_dead_predicate_worker_aborts_the_wait_instead_of_hanging():
    """Killing the worker the run waits on must fail fast, not time out."""
    cluster = build_proc_seemore(
        mode=Mode.LION, num_procs=2, num_requests=1_000_000, window=8,
        stats_interval=0.05,
    )
    cluster.start()
    try:
        _wait_for_progress(cluster, "client", 10, timeout=30.0)
        cluster.kill_worker("client")
        waited_from = time.monotonic()
        met = cluster.wait(timeout=60.0)
        waited = time.monotonic() - waited_from
    finally:
        result = cluster.shutdown(grace=10.0)
    assert met is False
    assert waited < 30.0, "wait() slept toward the timeout past a dead worker"
    assert "client" in result.deaths
    _assert_fully_reaped(cluster, result)


@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="core-scaling assertion needs >= 4 cores",
)
def test_four_proc_cluster_doubles_single_process_aio_throughput():
    """The acceptance bar: on >=4 cores, 4 replica processes sustain at
    least twice the single-loop aio backend's committed requests/s on the
    lion-f1-batched wall-clock case."""
    perf_dir = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf"
    spec = importlib.util.spec_from_file_location("harness", perf_dir / "harness.py")
    harness = importlib.util.module_from_spec(spec)
    sys.modules["harness"] = harness
    spec.loader.exec_module(harness)

    (aio_case,) = harness.aio_cases()
    aio_row = harness.run_case(aio_case, repeats=1, measure_heap=False)
    proc_case = next(
        case for case in harness.proc_cases(max_procs=4) if case.num_procs == 4
    )
    proc_row = harness.run_case(proc_case, repeats=1, measure_heap=False)

    aio_rps = aio_row["throughput_requests_per_second"]
    proc_rps = proc_row["throughput_requests_per_second"]
    assert proc_rps >= 2.0 * aio_rps, (
        f"4-process proc backend managed {proc_rps:.1f} req/s vs "
        f"aio's {aio_rps:.1f} req/s (< 2x)"
    )
