"""Unit tests for the fault-injection helpers themselves."""

import pytest

from repro.cluster import build_seemore
from repro.core import Mode
from repro.faults import (
    BYZANTINE_STRATEGIES,
    FaultPlan,
    crash_primary,
    crash_replica,
    make_byzantine,
    recover_replica,
)
from repro.faults.crash import current_primary_id


@pytest.fixture
def deployment():
    return build_seemore(crash_tolerance=1, byzantine_tolerance=1, num_clients=1, seed=9)


class TestCrashHelpers:
    def test_crash_replica_marks_faulty(self, deployment):
        config = deployment.extras["config"]
        victim = config.public_replicas[0]
        crash_replica(deployment, victim)
        assert deployment.replicas[victim].crashed
        assert victim in deployment.faulty_replicas
        assert deployment.replicas[victim] not in deployment.correct_replicas()

    def test_crash_unknown_replica(self, deployment):
        with pytest.raises(KeyError):
            crash_replica(deployment, "ghost")

    def test_current_primary_id_matches_config(self, deployment):
        config = deployment.extras["config"]
        assert current_primary_id(deployment) == config.primary_of_view(0, Mode.LION)

    def test_crash_primary_returns_its_id(self, deployment):
        config = deployment.extras["config"]
        crashed = crash_primary(deployment)
        assert crashed == config.primary_of_view(0, Mode.LION)
        assert deployment.replicas[crashed].crashed

    def test_recover_replica(self, deployment):
        config = deployment.extras["config"]
        victim = config.private_replicas[1]
        crash_replica(deployment, victim)
        recover_replica(deployment, victim)
        assert not deployment.replicas[victim].crashed


class TestByzantineHelpers:
    def test_all_strategies_are_applicable(self, deployment):
        config = deployment.extras["config"]
        for index, strategy in enumerate(sorted(BYZANTINE_STRATEGIES)):
            fresh = build_seemore(
                crash_tolerance=1, byzantine_tolerance=1, num_clients=1, seed=index
            )
            victim = fresh.extras["config"].public_replicas[0]
            make_byzantine(fresh, victim, strategy)
            assert victim in fresh.faulty_replicas

    def test_private_cloud_target_rejected(self, deployment):
        config = deployment.extras["config"]
        with pytest.raises(ValueError):
            make_byzantine(deployment, config.private_replicas[0], "silent")

    def test_unknown_strategy_rejected(self, deployment):
        config = deployment.extras["config"]
        with pytest.raises(ValueError):
            make_byzantine(deployment, config.public_replicas[0], "not-a-strategy")

    def test_silent_replica_sends_nothing(self, deployment):
        config = deployment.extras["config"]
        victim_id = config.public_replicas[0]
        victim = deployment.replicas[victim_id]
        make_byzantine(deployment, victim_id, "silent")
        before = deployment.network.messages_offered
        victim.send(config.private_replicas[0], "anything")
        deployment.simulator.run(until=0.01)
        assert deployment.network.messages_offered == before


class TestFaultPlan:
    def test_plan_orders_by_time(self):
        plan = FaultPlan()
        plan.crash_primary_at(0.5)
        plan.crash_at(0.1, "replica-x")
        times = [time for time, _ in plan]
        assert times == sorted(times)
        assert len(plan) == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().crash_primary_at(-1.0)

    def test_byzantine_and_partition_actions(self, deployment):
        plan = (
            FaultPlan()
            .byzantine_at(0.0, deployment.extras["config"].public_replicas[0], "silent")
            .partition_at(0.0, {"a"}, {"b"})
            .heal_partition_at(0.0)
        )
        for _, action in plan:
            action(deployment)
        assert deployment.extras["config"].public_replicas[0] in deployment.faulty_replicas

    def test_recover_action(self, deployment):
        config = deployment.extras["config"]
        victim = config.private_replicas[1]
        plan = FaultPlan().crash_at(0.0, victim).recover_at(0.0, victim)
        for _, action in plan:
            action(deployment)
        assert not deployment.replicas[victim].crashed
