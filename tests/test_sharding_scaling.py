"""Scale-out proof: sharding multiplies committed-ops per simulated second.

The acceptance bar for the sharding subsystem: a 4-shard deployment with
f=1 per shard must sustain at least 3x the single-cluster committed
operations per *simulated* second on a 100%-single-shard workload.  The
measurement is simulated-time throughput, so it is fully deterministic —
wall-clock noise cannot flake this test.
"""

import pytest

from repro.cluster import build_sharded_seemore, run_sharded_deployment
from repro.core import BatchPolicy
from repro.workload import sharded_kv_workload

pytestmark = [pytest.mark.shard, pytest.mark.integration]

_CLIENTS_PER_SHARD = 4
_DURATION = 0.25
_WARMUP = 0.05


def _committed_per_sim_second(num_shards: int) -> float:
    deployment = build_sharded_seemore(
        num_shards=num_shards,
        num_clients=_CLIENTS_PER_SHARD * num_shards,
        seed=3,
        client_window=16,
        batch_policy=BatchPolicy(max_batch=16, linger=0.002),
        workload=sharded_kv_workload(seed=3, cross_shard_fraction=0.0),
    )
    result = run_sharded_deployment(deployment, duration=_DURATION, warmup=_WARMUP)
    assert result.atomicity_violations == 0
    return result.aggregate.completed / _DURATION


def test_four_shards_scale_past_three_x_single_cluster():
    single = _committed_per_sim_second(num_shards=1)
    sharded = _committed_per_sim_second(num_shards=4)
    ratio = sharded / single
    assert single > 1000, f"single-cluster baseline unreasonably low: {single}"
    assert ratio >= 3.0, (
        f"4-shard deployment sustained only {ratio:.2f}x the single-cluster "
        f"committed-ops/sim-second ({sharded:.0f} vs {single:.0f})"
    )
