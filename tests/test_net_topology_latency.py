"""Unit tests for cloud placement and latency models."""

import random

import pytest

from repro.net import Cloud, CloudAwareLatencyModel, Placement, UniformLatencyModel
from repro.net.latency import lan_latency


def make_placement():
    placement = Placement()
    placement.assign_many(["p0", "p1"], Cloud.PRIVATE)
    placement.assign_many(["u0", "u1", "u2"], Cloud.PUBLIC)
    placement.assign("client-0", Cloud.CLIENT)
    return placement


class TestPlacement:
    def test_cloud_of(self):
        placement = make_placement()
        assert placement.cloud_of("p0") is Cloud.PRIVATE
        assert placement.cloud_of("u1") is Cloud.PUBLIC
        assert placement.cloud_of("client-0") is Cloud.CLIENT

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            make_placement().cloud_of("ghost")

    def test_nodes_in_sorted(self):
        placement = make_placement()
        assert placement.nodes_in(Cloud.PUBLIC) == ["u0", "u1", "u2"]

    def test_is_trusted(self):
        placement = make_placement()
        assert placement.is_trusted("p0")
        assert not placement.is_trusted("u0")

    def test_reassignment_to_other_cloud_rejected(self):
        placement = make_placement()
        with pytest.raises(ValueError):
            placement.assign("p0", Cloud.PUBLIC)

    def test_reassignment_to_same_cloud_allowed(self):
        placement = make_placement()
        placement.assign("p0", Cloud.PRIVATE)
        assert placement.cloud_of("p0") is Cloud.PRIVATE

    def test_len_and_contains(self):
        placement = make_placement()
        assert len(placement) == 6
        assert "p0" in placement
        assert "ghost" not in placement


class TestUniformLatencyModel:
    def test_sample_in_expected_range(self):
        model = UniformLatencyModel(base=0.001, jitter=0.0005)
        rng = random.Random(1)
        for _ in range(100):
            sample = model.sample("a", "b", rng)
            assert 0.001 <= sample <= 0.0015

    def test_deterministic_given_seed(self):
        model = UniformLatencyModel()
        first = [model.sample("a", "b", random.Random(7)) for _ in range(5)]
        second = [model.sample("a", "b", random.Random(7)) for _ in range(5)]
        assert first == second


class TestCloudAwareLatencyModel:
    def setup_method(self):
        self.placement = make_placement()
        self.model = CloudAwareLatencyModel(
            placement=self.placement,
            intra_cloud=0.0002,
            cross_cloud=0.01,
            client_link=0.0005,
            jitter_fraction=0.0,
        )

    def test_classify_links(self):
        assert self.model.classify("p0", "p1") == "intra"
        assert self.model.classify("u0", "u2") == "intra"
        assert self.model.classify("p0", "u0") == "cross"
        assert self.model.classify("client-0", "p0") == "client"
        assert self.model.classify("u0", "client-0") == "client"

    def test_cross_cloud_slower_than_intra(self):
        rng = random.Random(0)
        intra = self.model.sample("p0", "p1", rng)
        cross = self.model.sample("p0", "u0", rng)
        assert cross > intra

    def test_base_for_uses_link_class(self):
        assert self.model.base_for("p0", "p1") == 0.0002
        assert self.model.base_for("p0", "u0") == 0.01
        assert self.model.base_for("client-0", "u0") == 0.0005

    def test_jitter_fraction_bounds_sample(self):
        model = CloudAwareLatencyModel(
            placement=self.placement, intra_cloud=0.001, jitter_fraction=0.5
        )
        rng = random.Random(3)
        for _ in range(50):
            sample = model.sample("p0", "p1", rng)
            assert 0.001 <= sample <= 0.0015

    def test_lan_latency_helper_colocates_clouds(self):
        model = lan_latency(self.placement)
        assert model.cross_cloud == model.intra_cloud

    def test_lan_latency_helper_with_override(self):
        model = lan_latency(self.placement, cross_cloud=0.05)
        assert model.cross_cloud == 0.05
