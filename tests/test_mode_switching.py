"""Tests for dynamic mode switching (Section 5.4).

A trusted replica multicasts ``MODE-CHANGE``; the protocol performs a view
change and resumes in the new mode.  The tests check that switching works
between every pair of modes while clients keep running, that requests keep
completing afterwards, and that safety is never violated across the switch.
"""

import pytest

from repro.cluster import build_seemore
from repro.core import BatchPolicy, Mode
from repro.core.view_change import NOOP_CLIENT
from repro.smr.ledger import assert_ledgers_consistent
from repro.workload import microbenchmark


def build(mode, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 2),
        seed=kwargs.pop("seed", 5),
        client_timeout=0.1,
        **kwargs,
    )


def switch_modes(deployment, new_mode, switch_at=0.2, total=1.0):
    """Run, ask a trusted replica to switch modes mid-run, keep running."""
    config = deployment.extras["config"]
    simulator = deployment.simulator
    deployment.start_clients()
    simulator.run(until=switch_at)
    completed_before = deployment.metrics.completed
    initiator = deployment.replicas[config.private_replicas[0]]
    initiator.request_mode_switch(new_mode)
    simulator.run(until=total)
    deployment.stop_clients()
    return completed_before, deployment.metrics.completed


# All six mode-switch pairs; the fast tier runs the two extreme switches
# (trusted Lion <-> untrusted Peacock) and leaves the rest to full runs.
SWITCHES = [
    pytest.param(Mode.LION, Mode.DOG, marks=pytest.mark.slow),
    (Mode.LION, Mode.PEACOCK),
    pytest.param(Mode.DOG, Mode.LION, marks=pytest.mark.slow),
    pytest.param(Mode.DOG, Mode.PEACOCK, marks=pytest.mark.slow),
    (Mode.PEACOCK, Mode.LION),
    pytest.param(Mode.PEACOCK, Mode.DOG, marks=pytest.mark.slow),
]


pytestmark = pytest.mark.integration


class TestModeSwitching:
    @pytest.mark.parametrize("start_mode,target_mode", SWITCHES)
    def test_switch_preserves_liveness_safety_and_mode(self, start_mode, target_mode):
        deployment = build(start_mode)
        before, after = switch_modes(deployment, target_mode)
        assert before > 0, "progress before the switch"
        assert after > before + 10, (
            f"{start_mode.name}->{target_mode.name}: progress after the switch"
        )
        modes = {replica.mode for replica in deployment.correct_replicas()}
        assert modes == {target_mode}
        assert_ledgers_consistent(deployment.correct_ledgers())

    @pytest.mark.slow
    def test_switch_advances_the_view(self):
        deployment = build(Mode.LION)
        switch_modes(deployment, Mode.PEACOCK)
        assert all(replica.view >= 1 for replica in deployment.correct_replicas())

    def test_untrusted_replica_cannot_initiate_switch(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        untrusted = deployment.replicas[config.public_replicas[0]]
        with pytest.raises(PermissionError):
            untrusted.request_mode_switch(Mode.PEACOCK)

    @pytest.mark.slow
    def test_switch_back_and_forth(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.2)
        deployment.replicas[config.private_replicas[0]].request_mode_switch(Mode.PEACOCK)
        simulator.run(until=0.6)
        trusted = next(
            deployment.replicas[r]
            for r in config.private_replicas
            if not deployment.replicas[r].crashed
        )
        trusted.request_mode_switch(Mode.LION)
        simulator.run(until=1.2)
        deployment.stop_clients()

        assert_ledgers_consistent(deployment.correct_ledgers())
        modes = {replica.mode for replica in deployment.correct_replicas()}
        assert modes == {Mode.LION}
        assert deployment.metrics.completed > 50

    @pytest.mark.slow
    def test_clients_follow_the_new_mode(self):
        deployment = build(Mode.LION)
        switch_modes(deployment, Mode.DOG, total=1.2)
        # After the switch the clients should have learned the new mode from
        # replies and be applying the Dog reply quorum.
        assert any(client.known_mode == int(Mode.DOG) for client in deployment.clients)

    @pytest.mark.parametrize(
        "start_mode,target_mode",
        [
            (Mode.LION, Mode.PEACOCK),
            pytest.param(Mode.PEACOCK, Mode.DOG, marks=pytest.mark.slow),
        ],
    )
    def test_switch_mid_batch_loses_and_duplicates_nothing(self, start_mode, target_mode):
        """Requests buffered in the primary's batcher when the switch hits
        are neither lost nor executed twice.

        A long linger plus a deep batch keeps the buffer non-empty almost
        continuously, so the MODE-CHANGE lands with requests still queued;
        they must be re-homed to the new view's primary.
        """
        deployment = build(
            start_mode,
            num_clients=3,
            batch_policy=BatchPolicy(max_batch=16, linger=0.004),
            client_window=4,
        )
        before, after = switch_modes(deployment, target_mode, total=1.4)
        assert before > 0 and after > before + 10

        # Exactly-once: no correct replica executed any request twice.
        for replica in deployment.correct_replicas():
            keys = [
                (execution.client_id, execution.timestamp)
                for execution in replica.executor.executed
                if execution.client_id != NOOP_CLIENT
            ]
            assert len(keys) == len(set(keys)), f"{replica.node_id} double-executed"

        # Nothing lost: per client, completions have no deep holes (the tail
        # of the pipelined window may be cut off by the end of the run).
        for client in deployment.clients:
            stamps = {record.timestamp for record in client.completed}
            assert stamps, f"{client.node_id} completed nothing across the switch"
            top = max(stamps)
            missing = set(range(1, top + 1)) - stamps
            assert len(missing) <= client.window, (
                f"{client.node_id} lost requests across the switch: {sorted(missing)[:10]}"
            )
        # Nothing stays stranded in a batcher beyond the final in-flight
        # window (arrivals in the last linger interval may still be queued
        # when the simulation cuts off).
        in_flight_cap = sum(client.window for client in deployment.clients)
        for replica in deployment.correct_replicas():
            assert replica.batcher.queued <= in_flight_cap
        assert_ledgers_consistent(deployment.correct_ledgers())

    def test_mode_change_message_from_untrusted_sender_is_ignored(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.2)

        # Forge a MODE-CHANGE "from" an untrusted replica by injecting it
        # directly into a correct replica's handler.
        from repro.core import messages as msgs

        untrusted_id = config.public_replicas[0]
        untrusted = deployment.replicas[untrusted_id]
        forged = msgs.ModeChange(new_view=5, new_mode=int(Mode.PEACOCK), replica_id=untrusted_id)
        forged.sign(untrusted.signer)
        victim = deployment.replicas[config.private_replicas[1]]
        victim.handle_message(untrusted_id, forged)

        simulator.run(until=0.6)
        deployment.stop_clients()
        assert victim.mode is Mode.LION
        assert victim.view == 0
