"""Schema and regression-gate tests for the perf harness (benchmarks/perf)."""

from __future__ import annotations

import importlib.util
import json
import os
import pathlib
import sys

import pytest

_PERF_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "perf"


def _load(module_name: str):
    spec = importlib.util.spec_from_file_location(module_name, _PERF_DIR / f"{module_name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


harness = _load("harness")
compare = _load("compare")


REQUIRED_CASE_KEYS = {
    "name", "protocol", "backend", "crash_tolerance", "byzantine_tolerance",
    "batched", "fault_scenario", "num_shards", "num_procs", "cpu_count",
    "sim_duration", "completed_requests", "events_processed", "wall_seconds",
    "events_per_second", "sim_seconds_per_wall_second",
    "throughput_requests_per_second", "peak_heap_bytes", "deterministic",
    "gated",
}


class TestHarnessDocument:
    @pytest.fixture(scope="class")
    def document(self):
        # One tiny case keeps this in the fast tier.
        case = harness.PerfCase(
            name="tiny-lion", protocol="seemore-lion", duration=0.05, warmup=0.02
        )
        return harness.run_suite(cases=[case], repeats=2, measure_heap=True)

    def test_schema_shape(self, document):
        assert document["schema_version"] == harness.SCHEMA_VERSION
        assert document["host"]["python"]
        assert document["config"] == {"repeats": 2, "smoke": False}
        (row,) = document["cases"]
        assert set(row) == REQUIRED_CASE_KEYS
        assert row["deterministic"] is True
        assert row["events_per_second"] > 0
        assert row["peak_heap_bytes"] > 0
        assert document["summary"]["events_per_second_geomean"] > 0

    def test_document_round_trips_as_json(self, document, tmp_path):
        path = harness.write_bench(document, tmp_path / "BENCH_test.json")
        assert json.loads(path.read_text()) == document

    def test_standard_matrix_names_are_unique(self):
        names = [case.name for case in harness.standard_cases()]
        assert len(names) == len(set(names))
        smoke_names = {case.name for case in harness.standard_cases(smoke=True)}
        # Every smoke case exists in the full matrix so CI can compare
        # against the committed full baseline.
        assert smoke_names <= set(names)

    def test_proc_sweep_is_powers_of_two_with_distinct_names(self):
        sweep = harness.proc_cases(max_procs=4)
        assert [case.num_procs for case in sweep] == [1, 2, 4]
        assert len({case.name for case in sweep}) == 3
        assert all(case.backend == "proc" for case in sweep)

    def test_wallclock_rows_get_their_own_summary_geomeans(self):
        # A wall-clock document must be self-describing instead of
        # carrying an all-null summary (sim geomeans legitimately stay
        # null: there are no sim rows to average).
        case = harness.PerfCase(
            name="tiny-aio",
            protocol="seemore-lion",
            backend="aio",
            num_requests=30,
            client_window=8,
        )
        document = harness.run_suite(cases=[case], repeats=1, measure_heap=False)
        summary = document["summary"]
        assert summary["events_per_second_geomean"] is None
        assert summary["wallclock_aio_events_per_second_geomean"] > 0
        assert summary["wallclock_aio_requests_per_second_geomean"] > 0
        (row,) = document["cases"]
        assert row["cpu_count"] == os.cpu_count()


class TestCompareGate:
    def _write(self, tmp_path, name, rates, calibration=None):
        document = {
            "schema_version": 1,
            "cases": [
                {"name": case, "events_per_second": rate} for case, rate in rates.items()
            ],
        }
        if calibration is not None:
            document["host"] = {"calibration_ops_per_second": calibration}
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_pass_when_no_regression(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", {"a": 100.0, "b": 200.0})
        current = self._write(tmp_path, "cur.json", {"a": 95.0, "b": 210.0})
        assert compare.compare(current, baseline, max_regression=0.25) == 0

    def test_fail_on_large_regression(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", {"a": 100.0, "b": 200.0})
        current = self._write(tmp_path, "cur.json", {"a": 60.0, "b": 120.0})
        assert compare.compare(current, baseline, max_regression=0.25) == 1

    def test_calibration_normalizes_cross_machine_comparison(self, tmp_path):
        # Baseline from a machine twice as fast: raw ratio 0.52 would fail,
        # but normalized by each side's calibration it is fine.
        baseline = self._write(tmp_path, "base.json", {"a": 1000.0}, calibration=100.0)
        current = self._write(tmp_path, "cur.json", {"a": 520.0}, calibration=50.0)
        assert compare.compare(current, baseline, max_regression=0.25) == 0
        # A genuine regression still fails after normalization.
        slow = self._write(tmp_path, "slow.json", {"a": 300.0}, calibration=50.0)
        assert compare.compare(slow, baseline, max_regression=0.25) == 1

    def test_error_when_no_shared_cases(self, tmp_path):
        baseline = self._write(tmp_path, "base.json", {"a": 100.0})
        current = self._write(tmp_path, "cur.json", {"b": 100.0})
        assert compare.compare(current, baseline, max_regression=0.25) == 2

    def test_new_cases_warn_but_never_gate(self, tmp_path, capsys):
        # A candidate that *added* cases (e.g. the sharded matrix) compares
        # only the intersection: the new cases are reported, not gated on.
        baseline = self._write(tmp_path, "base.json", {"a": 100.0, "b": 200.0})
        current = self._write(
            tmp_path, "cur.json", {"a": 100.0, "b": 200.0, "sharded-4x": 1.0}
        )
        assert compare.compare(current, baseline, max_regression=0.25) == 0
        out = capsys.readouterr().out
        assert "missing from the baseline" in out
        assert "sharded-4x" in out

    def test_baseline_only_cases_warn_and_are_ignored(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", {"a": 100.0, "retired": 900.0})
        current = self._write(tmp_path, "cur.json", {"a": 100.0})
        assert compare.compare(current, baseline, max_regression=0.25) == 0
        out = capsys.readouterr().out
        assert "missing from the current run" in out
        assert "retired" in out

    def test_identical_case_sets_do_not_warn(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "base.json", {"a": 100.0})
        current = self._write(tmp_path, "cur.json", {"a": 100.0})
        assert compare.compare(current, baseline, max_regression=0.25) == 0
        assert "warning" not in capsys.readouterr().out

    def test_committed_baseline_is_valid(self):
        committed = sorted(_PERF_DIR.glob("BENCH_*.json"))
        assert committed, "a BENCH_*.json baseline must be committed under benchmarks/perf/"
        document = json.loads(committed[-1].read_text())
        assert document["schema_version"] == harness.SCHEMA_VERSION
        case_names = {case["name"] for case in document["cases"]}
        smoke_names = {case.name for case in harness.standard_cases(smoke=True)}
        assert smoke_names <= case_names
