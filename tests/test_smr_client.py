"""Unit tests for the closed-loop client (reply quorums, retransmission)."""

from repro.crypto import KeyStore
from repro.net import Network, Node, UniformLatencyModel
from repro.sim import Simulator
from repro.smr.client import Client, ClientConfig
from repro.smr.messages import Reply, Request
from repro.smr.state_machine import Operation
from repro.workload import MetricsCollector


class ScriptedReplica(Node):
    """A fake replica that replies according to a small script."""

    def __init__(self, node_id, simulator, signer, respond=True, result=None, delay=0.0):
        super().__init__(node_id, simulator)
        self.signer = signer
        self.respond = respond
        self.result = result if result is not None else {"ok": True}
        self.delay = delay
        self.requests_seen = 0

    def handle_message(self, src, payload):
        if not isinstance(payload, Request) or not self.respond:
            return
        self.requests_seen += 1
        reply = Reply(
            mode=1,
            view=0,
            timestamp=payload.timestamp,
            client_id=payload.client_id,
            replica_id=self.node_id,
            result=self.result,
        )
        reply.sign(self.signer)
        if self.delay:
            self.runtime.call_later(self.delay, lambda: self.send(src, reply))
        else:
            self.send(src, reply)


def build_harness(replica_specs, replies_needed=1, trusted=frozenset(), timeout=0.05,
                  retransmit_replies_needed=None):
    simulator = Simulator()
    network = Network(simulator, latency_model=UniformLatencyModel(base=0.001, jitter=0.0))
    keystore = KeyStore()
    replica_ids = [spec["id"] for spec in replica_specs]
    for replica_id in replica_ids:
        keystore.register(replica_id)
    keystore.register("client-0")

    replicas = {}
    for spec in replica_specs:
        replica = ScriptedReplica(
            spec["id"],
            simulator,
            keystore.signer_for(spec["id"]),
            respond=spec.get("respond", True),
            result=spec.get("result"),
            delay=spec.get("delay", 0.0),
        )
        network.register(replica)
        replicas[spec["id"]] = replica

    config = ClientConfig(
        request_targets=lambda view, mode: [replica_ids[0]],
        replies_needed=replies_needed,
        trusted_replicas=trusted,
        retransmit_targets=lambda view, mode: replica_ids,
        retransmit_replies_needed=retransmit_replies_needed,
        request_timeout=timeout,
    )
    metrics = MetricsCollector()
    client = Client(
        node_id="client-0",
        runtime=simulator,
        signer=keystore.signer_for("client-0"),
        verifier=keystore.verifier(),
        config=config,
        operation_factory=lambda ts: Operation("noop"),
        recorder=metrics,
        max_requests=3,
    )
    network.register(client)
    return simulator, client, replicas, metrics


class TestClientHappyPath:
    def test_completes_requests_with_single_reply(self):
        sim, client, replicas, metrics = build_harness([{"id": "r0"}])
        client.start()
        sim.run(until=1.0)
        assert client.completed_count == 3
        assert metrics.completed == 3
        assert client.timeouts == 0

    def test_latency_recorded_per_request(self):
        sim, client, _, metrics = build_harness([{"id": "r0"}])
        client.start()
        sim.run(until=1.0)
        for record in metrics.records:
            assert record.latency > 0

    def test_quorum_of_matching_replies_required(self):
        # Two replicas reply but three matching replies are required: the
        # client keeps retransmitting and never completes.
        sim, client, _, _ = build_harness(
            [{"id": "r0"}, {"id": "r1"}], replies_needed=3, retransmit_replies_needed=3
        )
        client.start()
        sim.run(until=0.5)
        assert client.completed_count == 0
        assert client.timeouts > 0

    def test_mismatched_results_do_not_count_together(self):
        sim, client, _, _ = build_harness(
            [
                {"id": "r0", "result": {"ok": True, "value": 1}},
                {"id": "r1", "result": {"ok": True, "value": 2}},
            ],
            replies_needed=2,
            retransmit_replies_needed=2,
        )
        client.start()
        sim.run(until=0.5)
        assert client.completed_count == 0

    def test_trusted_reply_accepted_alone(self):
        sim, client, _, _ = build_harness(
            [{"id": "r0"}, {"id": "r1"}], replies_needed=2, trusted=frozenset({"r0"})
        )
        client.start()
        sim.run(until=1.0)
        assert client.completed_count == 3


class TestClientRetransmission:
    def test_timeout_triggers_retransmission_to_all(self):
        # Primary r0 never responds; r1 and r2 respond only after the client
        # broadcasts (they are not the initial target).
        sim, client, replicas, _ = build_harness(
            [{"id": "r0", "respond": False}, {"id": "r1"}, {"id": "r2"}],
            replies_needed=1,
            retransmit_replies_needed=1,
            timeout=0.02,
        )
        client.start()
        sim.run(until=1.0)
        assert client.timeouts > 0
        assert client.completed_count == 3
        assert replicas["r1"].requests_seen > 0

    def test_stop_prevents_further_requests(self):
        sim, client, _, _ = build_harness([{"id": "r0"}])
        client.start()
        sim.run(until=0.01)
        client.stop()
        completed_at_stop = client.completed_count
        sim.run(until=1.0)
        assert client.completed_count <= completed_at_stop + 1

    def test_max_requests_limits_the_loop(self):
        sim, client, _, _ = build_harness([{"id": "r0"}])
        client.start()
        sim.run(until=5.0)
        assert client.completed_count == 3


class TestClientValidation:
    def test_reply_with_bad_signature_ignored(self):
        sim, client, replicas, _ = build_harness([{"id": "r0"}, {"id": "r1"}], replies_needed=2)
        # r1 signs with its own key but claims results of r0: craft manually.
        original_handle = replicas["r1"].handle_message

        def forge(src, payload):
            if isinstance(payload, Request):
                reply = Reply(
                    mode=1,
                    view=0,
                    timestamp=payload.timestamp,
                    client_id=payload.client_id,
                    replica_id="r0",  # claims to be r0
                    result={"ok": True},
                )
                reply.sign(replicas["r1"].signer)  # but signs as r1
                replicas["r1"].send(src, reply)
                return
            original_handle(src, payload)

        replicas["r1"].handle_message = forge
        client.start()
        sim.run(until=0.3)
        # The forged reply never counts, so the quorum of 2 is never reached.
        assert client.completed_count == 0

    def test_stale_reply_for_old_timestamp_ignored(self):
        sim, client, replicas, _ = build_harness([{"id": "r0"}])
        client.start()
        sim.run(until=1.0)
        # Inject a stale reply after everything finished: must not crash or
        # add completions.
        stale = Reply(1, 0, 1, "client-0", "r0", {"ok": True})
        stale.sign(replicas["r0"].signer)
        completed = client.completed_count
        client.handle_message("r0", stale)
        assert client.completed_count == completed

    def test_client_tracks_view_and_mode_from_replies(self):
        sim, client, replicas, _ = build_harness([{"id": "r0"}])

        def reply_in_view_3(src, payload):
            if isinstance(payload, Request):
                reply = Reply(
                    mode=2,
                    view=3,
                    timestamp=payload.timestamp,
                    client_id=payload.client_id,
                    replica_id="r0",
                    result={"ok": True},
                )
                reply.sign(replicas["r0"].signer)
                replicas["r0"].send(src, reply)

        replicas["r0"].handle_message = reply_in_view_3
        client.start()
        sim.run(until=0.5)
        assert client.known_view == 3
        assert client.known_mode == 2
