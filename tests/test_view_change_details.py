"""Focused tests for view-change machinery details.

The integration suites already cover "primary crashes, system recovers";
these tests pin down the finer behaviours of Section 5's view-change
routines: who collects view changes in each mode, how the new view is
assembled, no-op filling, join-on-evidence, and state transfer for lagging
replicas.
"""

import pytest

from repro.cluster import build_seemore
from repro.core import Mode, SeeMoReConfig
from repro.core import messages as msgs
from repro.core.view_change import NOOP_CLIENT, noop_request
from repro.faults import crash_primary
from repro.smr.ledger import assert_ledgers_consistent
from repro.smr.replica import request_digest
from repro.workload import microbenchmark


def build(mode, **kwargs):
    return build_seemore(
        crash_tolerance=1,
        byzantine_tolerance=1,
        mode=mode,
        workload=microbenchmark("0/0"),
        num_clients=kwargs.pop("num_clients", 2),
        seed=kwargs.pop("seed", 13),
        client_timeout=0.1,
        **kwargs,
    )


pytestmark = pytest.mark.integration


class TestCollectors:
    def test_lion_and_dog_collector_is_new_primary(self):
        config = SeeMoReConfig.build(1, 1)
        deployment = build(Mode.LION)
        replica = next(iter(deployment.replicas.values()))
        manager = replica.view_changes
        assert manager.collector_for(1, Mode.LION) == config.primary_of_view(1, Mode.LION)
        assert manager.collector_for(1, Mode.DOG) == config.primary_of_view(1, Mode.DOG)

    def test_peacock_collector_is_trusted_transferer(self):
        config = SeeMoReConfig.build(1, 1)
        deployment = build(Mode.PEACOCK)
        replica = next(iter(deployment.replicas.values()))
        manager = replica.view_changes
        collector = manager.collector_for(1, Mode.PEACOCK)
        assert collector == config.transferer_of_view(1)
        assert config.is_trusted(collector)
        # ... even though the new primary itself is untrusted.
        assert not config.is_trusted(config.primary_of_view(1, Mode.PEACOCK))


class TestNoopFilling:
    def test_noop_request_is_deterministic_per_sequence(self):
        assert request_digest(noop_request(7)) == request_digest(noop_request(7))
        assert request_digest(noop_request(7)) != request_digest(noop_request(8))
        assert noop_request(7).client_id == NOOP_CLIENT

    def test_new_view_fills_sequence_holes_with_noops(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        collector_id = config.primary_of_view(1, Mode.LION)
        collector = deployment.replicas[collector_id]
        manager = collector.view_changes

        # Hand-craft view-change messages that have prepared sequence 1 and 3
        # but nothing for 2: the collector must fill 2 with a no-op.
        def vc_from(replica_id, sequences):
            replica = deployment.replicas[replica_id]
            prepared = []
            for sequence in sequences:
                filler = noop_request(1000 + sequence)  # stand-in client request
                prepared.append(
                    msgs.PreparedEntry(
                        sequence=sequence,
                        view=0,
                        digest=request_digest(filler),
                        request=filler,
                    )
                )
            view_change = msgs.ViewChange(
                new_view=1,
                mode=int(Mode.LION),
                replica_id=replica_id,
                checkpoint_sequence=0,
                checkpoint_digest="",
                prepared=prepared,
            )
            view_change.sign(replica.signer)
            return view_change

        senders = [r for r in config.all_replicas if r != collector_id]
        for sender in senders[:4]:
            manager.on_view_change(sender, vc_from(sender, [1, 3]))

        assert collector.view == 1
        new_view_sequences = sorted(
            slot_sequence for slot_sequence in collector.slots.sequences if slot_sequence <= 3
        )
        assert 2 in new_view_sequences, "the hole at sequence 2 must exist as a slot"

    @pytest.mark.slow
    def test_noop_commits_do_not_reach_clients(self):
        deployment = build(Mode.LION)
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.15)
        crash_primary(deployment)
        simulator.run(until=1.0)
        deployment.stop_clients()
        # No client ever receives a reply for the no-op client id.
        for client in deployment.clients:
            assert all(record.timestamp > 0 for record in client.completed)
        assert_ledgers_consistent(deployment.correct_ledgers())


class TestJoinAndEscalation:
    @pytest.mark.slow
    def test_replicas_join_view_change_on_quorum_of_evidence(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.15)
        crash_primary(deployment)
        simulator.run(until=1.0)
        deployment.stop_clients()
        # Every correct replica ends in the same (new) view even though only
        # some of them had an expired timer.
        views = {replica.view for replica in deployment.correct_replicas()}
        assert len(views) == 1
        assert views.pop() >= 1

    @pytest.mark.slow
    def test_consecutive_primary_crashes_escalate_views(self):
        deployment = build(Mode.LION, num_clients=3)
        config = deployment.extras["config"]
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.15)
        # Crash the current primary and the next one: the group must reach a
        # view whose primary is a public... no — Lion primaries are always
        # private, and S=2, so view 2 wraps back to the first (crashed)
        # replica; with c=1 only one crash is tolerated, so crash only the
        # current primary here and the *next* primary must take over.
        first = crash_primary(deployment)
        simulator.run(until=1.2)
        deployment.stop_clients()
        surviving_primary = config.primary_of_view(
            max(r.view for r in deployment.correct_replicas()), Mode.LION
        )
        assert surviving_primary != first
        assert deployment.metrics.completed > 20
        assert_ledgers_consistent(deployment.correct_ledgers())


class TestNewViewReconciliation:
    """The Section 5.1 rule: conflicting prepared entries for one sequence
    are resolved in favour of the entry prepared in the *highest* view;
    vote count only breaks ties.  (A stale assignment from a deposed
    primary can be reported by more replicas than the assignment a later
    view already superseded it with.)"""

    def _view_change_from(self, deployment, replica_id, target_view, entries):
        replica = deployment.replicas[replica_id]
        view_change = msgs.ViewChange(
            new_view=target_view,
            mode=int(Mode.LION),
            replica_id=replica_id,
            checkpoint_sequence=0,
            checkpoint_digest="",
            prepared=list(entries),
        )
        view_change.sign(replica.signer)
        return view_change

    def test_highest_view_entry_beats_more_votes(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        target_view = 3
        collector_id = config.primary_of_view(target_view, Mode.LION)
        collector = deployment.replicas[collector_id]
        manager = collector.view_changes

        stale_request = noop_request(1001)
        fresh_request = noop_request(1002)
        stale_digest = request_digest(stale_request)
        fresh_digest = request_digest(fresh_request)

        def stale_entry():
            return msgs.PreparedEntry(
                sequence=1, view=0, digest=stale_digest, request=stale_request
            )

        fresh_entry = msgs.PreparedEntry(
            sequence=1, view=2, digest=fresh_digest, request=fresh_request
        )

        senders = [r for r in config.all_replicas if r != collector_id]
        # One replica saw the view-2 assignment; two others still report the
        # view-0 assignment (more votes, staler view).
        manager.on_view_change(
            senders[0], self._view_change_from(deployment, senders[0], target_view, [fresh_entry])
        )
        for sender in senders[1:3]:
            manager.on_view_change(
                sender,
                self._view_change_from(deployment, sender, target_view, [stale_entry()]),
            )

        assert collector.view == target_view, "the new view must have been installed"
        slot = collector.slots.slot(1)
        assert slot.digest == fresh_digest, (
            "the entry prepared in the highest view must win, not the one "
            "with the most votes"
        )

    def test_view_change_state_is_pruned_after_install(self):
        deployment = build(Mode.LION)
        config = deployment.extras["config"]
        target_view = 3
        collector_id = config.primary_of_view(target_view, Mode.LION)
        collector = deployment.replicas[collector_id]
        manager = collector.view_changes

        senders = [r for r in config.all_replicas if r != collector_id]
        for sender in senders[:3]:
            manager.on_view_change(
                sender, self._view_change_from(deployment, sender, target_view, [])
            )

        assert collector.view == target_view
        assert all(key[0] > target_view for key in manager._store), (
            "view-change messages for installed views must be garbage-collected"
        )
        assert all(key[0] > target_view for key in manager._new_views_sent)

    @pytest.mark.slow
    def test_store_does_not_grow_across_repeated_view_changes(self):
        deployment = build(Mode.LION, num_clients=2)
        simulator = deployment.simulator
        deployment.start_clients()
        simulator.run(until=0.15)
        crash_primary(deployment)
        simulator.run(until=1.0)
        deployment.stop_clients()
        for replica in deployment.correct_replicas():
            manager = replica.view_changes
            assert manager.view_changes_completed >= 1
            stale = [key for key in manager._store if key[0] <= replica.view]
            assert stale == [], f"{replica.node_id} kept view-change state for {stale}"


class TestStateTransfer:
    @pytest.mark.slow
    def test_lagging_replica_catches_up_via_state_transfer(self):
        deployment = build(Mode.LION, num_clients=4, checkpoint_period=32)
        config = deployment.extras["config"]
        simulator = deployment.simulator
        lagger_id = config.public_replicas[0]
        lagger = deployment.replicas[lagger_id]

        deployment.start_clients()
        simulator.run(until=0.1)
        # Simulate a long outage: the replica misses a stretch of commits.
        lagger.crash()
        simulator.run(until=0.5)
        lagger.recover()
        simulator.run(until=1.2)
        deployment.stop_clients()

        frontier = max(replica.last_executed for replica in deployment.correct_replicas())
        assert frontier > 0
        assert lagger.last_executed >= frontier - 2 * config.checkpoint_period, (
            "the recovered replica should have caught up via state transfer"
        )
        assert lagger.state_transfers_completed >= 1
        assert_ledgers_consistent(deployment.correct_ledgers())
